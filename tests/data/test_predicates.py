"""Tests for intervals and hyper-rectangle predicates."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.predicates import Interval, Rectangle

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestInterval:
    def test_default_is_unbounded(self):
        interval = Interval()
        assert interval.is_unbounded
        assert not interval.is_empty
        assert not interval.is_point

    def test_point_interval(self):
        interval = Interval.point(3.5)
        assert interval.is_point
        assert interval.width == 0.0
        assert interval.contains_value(3.5)
        assert not interval.contains_value(3.50001)

    def test_empty_interval(self):
        interval = Interval.empty()
        assert interval.is_empty
        assert not interval.contains_value(0.0)

    def test_nan_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)
        with pytest.raises(ValueError):
            Interval(0.0, float("nan"))

    def test_contains_vectorised(self):
        interval = Interval(1.0, 3.0)
        values = np.array([0.5, 1.0, 2.0, 3.0, 3.5])
        mask = interval.contains(values)
        assert mask.tolist() == [False, True, True, True, False]

    def test_bounds_are_inclusive(self):
        interval = Interval(1.0, 2.0)
        assert interval.contains_value(1.0)
        assert interval.contains_value(2.0)

    def test_intersect_overlapping(self):
        assert Interval(0, 5).intersect(Interval(3, 10)) == Interval(3, 5)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_intersect_with_unbounded_is_identity(self):
        interval = Interval(-2.0, 7.0)
        assert interval.intersect(Interval.unbounded()) == interval

    def test_union_hull(self):
        assert Interval(0, 1).union_hull(Interval(5, 6)) == Interval(0, 6)
        assert Interval.empty().union_hull(Interval(1, 2)) == Interval(1, 2)
        assert Interval(1, 2).union_hull(Interval.empty()) == Interval(1, 2)

    def test_expand(self):
        assert Interval(2, 4).expand(1.0, 2.0) == Interval(1, 6)
        with pytest.raises(ValueError):
            Interval(2, 4).expand(-1.0, 0.0)

    def test_clamp(self):
        assert Interval(-10, 10).clamp(0, 5) == Interval(0, 5)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_width_of_empty_is_zero(self):
        assert Interval.empty().width == 0.0

    @given(finite_floats, finite_floats, finite_floats)
    def test_intersection_is_subset(self, a, b, value):
        left = Interval(min(a, b), max(a, b))
        right = Interval(-100.0, 100.0)
        merged = left.intersect(right)
        if merged.contains_value(value):
            assert left.contains_value(value)
            assert right.contains_value(value)

    @given(finite_floats, finite_floats)
    def test_intersection_commutes(self, a, b):
        left = Interval(min(a, b), max(a, b))
        right = Interval(-50.0, 50.0)
        assert left.intersect(right) == right.intersect(left)

    @given(st.lists(finite_floats, min_size=1, max_size=30), finite_floats, finite_floats)
    def test_contains_matches_scalar(self, values, a, b):
        interval = Interval(min(a, b), max(a, b))
        array = np.array(values)
        mask = interval.contains(array)
        for value, flag in zip(values, mask):
            assert flag == interval.contains_value(value)


class TestRectangle:
    def test_unconstrained_matches_everything(self):
        rect = Rectangle.unconstrained()
        columns = {"a": np.arange(5.0)}
        assert rect.matches(columns).all()
        assert len(rect) == 0

    def test_unbounded_intervals_are_dropped(self):
        rect = Rectangle({"a": Interval.unbounded(), "b": Interval(0, 1)})
        assert rect.constrained_dims == ("b",)

    def test_from_bounds_mismatched_keys(self):
        with pytest.raises(ValueError):
            Rectangle.from_bounds({"a": 0.0}, {"b": 1.0})

    def test_non_interval_constraint_rejected(self):
        with pytest.raises(TypeError):
            Rectangle({"a": (0, 1)})  # type: ignore[dict-item]

    def test_point_rectangle(self):
        rect = Rectangle.from_point({"a": 1.0, "b": 2.0})
        assert rect.is_point
        assert rect.matches_row({"a": 1.0, "b": 2.0})
        assert not rect.matches_row({"a": 1.0, "b": 2.5})

    def test_matches_multiple_columns(self):
        rect = Rectangle({"a": Interval(0, 2), "b": Interval(10, 20)})
        columns = {
            "a": np.array([1.0, 1.0, 3.0]),
            "b": np.array([15.0, 25.0, 15.0]),
        }
        assert rect.matches(columns).tolist() == [True, False, False]

    def test_matches_requires_constrained_columns(self):
        rect = Rectangle({"missing": Interval(0, 1)})
        with pytest.raises(KeyError):
            rect.matches({"a": np.array([1.0])})

    def test_is_empty(self):
        rect = Rectangle({"a": Interval(5, 1)})
        assert rect.is_empty

    def test_intersect(self):
        left = Rectangle({"a": Interval(0, 10)})
        right = Rectangle({"a": Interval(5, 20), "b": Interval(1, 2)})
        merged = left.intersect(right)
        assert merged.interval("a") == Interval(5, 10)
        assert merged.interval("b") == Interval(1, 2)

    def test_with_interval_replaces_and_removes(self):
        rect = Rectangle({"a": Interval(0, 1)})
        replaced = rect.with_interval("a", Interval(2, 3))
        assert replaced.interval("a") == Interval(2, 3)
        removed = rect.with_interval("a", Interval.unbounded())
        assert not removed.constrains("a")

    def test_without_dims_and_project(self):
        rect = Rectangle({"a": Interval(0, 1), "b": Interval(2, 3)})
        assert rect.without_dims(["a"]).constrained_dims == ("b",)
        assert rect.project(["a"]).constrained_dims == ("a",)

    def test_overlaps_box(self):
        rect = Rectangle({"a": Interval(0, 1)})
        assert rect.overlaps_box({"a": 0.5}, {"a": 2.0})
        assert not rect.overlaps_box({"a": 1.5}, {"a": 2.0})

    def test_equality_and_hash(self):
        left = Rectangle({"a": Interval(0, 1)})
        right = Rectangle({"a": Interval(0, 1)})
        assert left == right
        assert hash(left) == hash(right)
        assert left != Rectangle({"a": Interval(0, 2)})

    def test_interval_for_unconstrained_dim(self):
        rect = Rectangle({"a": Interval(0, 1)})
        assert rect.interval("other").is_unbounded

    @given(
        st.lists(finite_floats, min_size=4, max_size=4),
        st.lists(finite_floats, min_size=10, max_size=10),
        st.lists(finite_floats, min_size=10, max_size=10),
    )
    def test_intersection_mask_equals_mask_conjunction(self, bounds, col_a, col_b):
        a_low, a_high, b_low, b_high = bounds
        left = Rectangle({"a": Interval(min(a_low, a_high), max(a_low, a_high))})
        right = Rectangle({"b": Interval(min(b_low, b_high), max(b_low, b_high))})
        columns = {"a": np.array(col_a), "b": np.array(col_b)}
        merged_mask = left.intersect(right).matches(columns)
        expected = left.matches(columns) & right.matches(columns)
        assert np.array_equal(merged_mask, expected)

    @given(st.lists(finite_floats, min_size=6, max_size=6))
    def test_matches_row_agrees_with_matches(self, values):
        a, b, lo1, hi1, lo2, hi2 = values
        rect = Rectangle(
            {
                "a": Interval(min(lo1, hi1), max(lo1, hi1)),
                "b": Interval(min(lo2, hi2), max(lo2, hi2)),
            }
        )
        columns = {"a": np.array([a]), "b": np.array([b])}
        assert rect.matches(columns)[0] == rect.matches_row({"a": a, "b": b})
