"""Unit tests of the executor specs and their accumulator algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.executors import (
    AGGREGATE_OPS,
    MATERIALIZE,
    Aggregate,
    AggregatePartial,
    MaterializeIds,
    TopK,
    executor_key,
    merge_topk,
    point_distances,
    select_topk,
)


class TestSpecs:
    def test_aggregate_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op must be one of"):
            Aggregate("median", "x")

    def test_aggregate_requires_column_except_count(self):
        Aggregate("count", None)
        for op in AGGREGATE_OPS:
            if op == "count":
                continue
            with pytest.raises(ValueError, match="needs a value column"):
                Aggregate(op, None)

    def test_topk_requires_exactly_one_mode(self):
        with pytest.raises(ValueError, match="exactly one"):
            TopK(5)
        with pytest.raises(ValueError, match="exactly one"):
            TopK(5, point={"x": 1.0}, column="x")
        assert TopK(5, point={"x": 1.0}).is_knn
        assert not TopK(5, column="x").is_knn

    def test_topk_rejects_bad_k_and_metric(self):
        with pytest.raises(ValueError, match="k must be"):
            TopK(0, column="x")
        with pytest.raises(ValueError, match="metric must be"):
            TopK(3, point={"x": 1.0}, metric="cosine")

    def test_specs_are_frozen(self):
        spec = Aggregate("count", None)
        with pytest.raises(AttributeError):
            spec.op = "sum"


class TestExecutorKey:
    def test_materialize_instances_share_a_key(self):
        assert executor_key(MATERIALIZE) == executor_key(MaterializeIds())

    def test_aggregate_key_separates_op_and_column(self):
        assert executor_key(Aggregate("sum", "x")) == executor_key(Aggregate("sum", "x"))
        assert executor_key(Aggregate("sum", "x")) != executor_key(Aggregate("sum", "y"))
        assert executor_key(Aggregate("sum", "x")) != executor_key(Aggregate("min", "x"))
        assert executor_key(Aggregate("count", None)) != executor_key(MATERIALIZE)

    def test_knn_points_do_not_split_batches(self):
        # Different centres are batch-compatible: the engine loops per
        # point, so the coalescer must not split on them.
        a = TopK(5, point={"x": 1.0})
        b = TopK(5, point={"x": 99.0})
        assert executor_key(a) == executor_key(b)
        assert executor_key(a) != executor_key(TopK(6, point={"x": 1.0}))
        assert executor_key(a) != executor_key(TopK(5, point={"x": 1.0}, metric="linf"))


class TestAggregatePartial:
    def test_identity_folds_and_finalizes(self):
        partial = AggregatePartial.identity(3)
        partial.fold_values(np.array([0, 0, 2]), np.array([1.0, 3.0, -2.0]))
        assert partial.count.tolist() == [2, 0, 1]
        assert partial.finalize(Aggregate("count", None)).tolist() == [2, 0, 1]
        summed = partial.finalize(Aggregate("sum", "v"))
        assert summed.tolist() == [4.0, 0.0, -2.0]
        avg = partial.finalize(Aggregate("avg", "v"))
        assert avg[0] == 2.0 and np.isnan(avg[1]) and avg[2] == -2.0
        low = partial.finalize(Aggregate("min", "v"))
        assert low[0] == 1.0 and np.isnan(low[1]) and low[2] == -2.0

    def test_run_folds_match_value_folds_for_count_and_sum(self):
        values = np.array([2.0, 4.0, 8.0, 16.0])
        by_values = AggregatePartial.identity(2)
        by_values.fold_values(np.array([0, 0, 1, 1]), values)
        by_runs = AggregatePartial.identity(2)
        by_runs.add_run_counts(np.array([0, 1]), np.array([2, 2]))
        by_runs.add_run_totals(np.array([0, 1]), np.array([6.0, 24.0]))
        assert np.array_equal(by_values.count, by_runs.count)
        assert np.array_equal(by_values.total, by_runs.total)

    def test_merge_and_merge_at_agree_with_single_fold(self):
        qids = np.array([0, 1, 1, 2, 2, 2])
        values = np.array([5.0, -1.0, 7.0, 0.0, 2.0, -3.0])
        whole = AggregatePartial.identity(3)
        whole.fold_values(qids, values)
        left = AggregatePartial.identity(3)
        left.fold_values(qids[:3], values[:3])
        right = AggregatePartial.identity(3)
        right.fold_values(qids[3:], values[3:])
        merged = AggregatePartial.identity(3).merge(left).merge(right)
        for spec in (Aggregate("count", None), Aggregate("min", "v"), Aggregate("max", "v")):
            assert np.array_equal(
                merged.finalize(spec), whole.finalize(spec), equal_nan=True
            )
        # merge_at scatters a sub-batch partial into facade slots.
        sub = AggregatePartial.identity(2)
        sub.fold_values(np.array([0, 1, 1]), np.array([1.0, 2.0, 3.0]))
        wide = AggregatePartial.identity(4)
        wide.merge_at(np.array([3, 1]), sub)
        assert wide.count.tolist() == [0, 2, 0, 1]
        assert wide.total.tolist() == [0.0, 5.0, 0.0, 1.0]

    def test_state_round_trip_is_exact(self):
        partial = AggregatePartial.identity(2)
        partial.fold_values(np.array([0, 1]), np.array([np.pi, -np.e]))
        rebuilt = AggregatePartial.from_state(partial.state())
        for spec in (Aggregate("sum", "v"), Aggregate("min", "v"), Aggregate("max", "v")):
            assert np.array_equal(
                rebuilt.finalize(spec), partial.finalize(spec), equal_nan=True
            )


class TestTopKSelection:
    def test_select_topk_breaks_ties_by_row_id(self):
        keys = np.array([1.0, 0.5, 0.5, 0.5, 2.0])
        ids = np.array([10, 30, 20, 40, 5])
        out_keys, out_ids = select_topk(keys, ids, 2)
        assert out_ids.tolist() == [20, 30]
        assert out_keys.tolist() == [0.5, 0.5]
        _, big_ids = select_topk(keys, ids, 2, largest=True)
        assert big_ids.tolist() == [5, 10]

    def test_select_topk_argpartition_path_keeps_tied_winners(self):
        # >4k candidates triggers the argpartition narrowing; a tie at the
        # cut must still resolve toward the smaller id.
        keys = np.full(100, 1.0)
        keys[:10] = 0.0
        ids = np.arange(100)[::-1].copy()
        _, out_ids = select_topk(keys, ids, 3)
        assert out_ids.tolist() == [90, 91, 92]

    def test_merge_topk_is_exact_over_disjoint_parts(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 8, size=200).astype(np.float64)
        ids = rng.permutation(200).astype(np.int64)
        want_keys, want_ids = select_topk(keys, ids, 17)
        parts = [
            (keys[:50], ids[:50]),
            (keys[50:60], ids[50:60]),
            (np.empty(0), np.empty(0, dtype=np.int64)),
            (keys[60:], ids[60:]),
        ]
        got_keys, got_ids = merge_topk(parts, 17)
        assert np.array_equal(got_ids, want_ids)
        assert np.array_equal(got_keys, want_keys)

    def test_point_distances_l2_and_linf(self):
        columns = {"x": np.array([0.0, 3.0]), "y": np.array([0.0, 4.0])}
        l2 = point_distances(columns, None, {"x": 0.0, "y": 0.0}, "l2")
        assert l2.tolist() == [0.0, 25.0]  # squared distance, monotone in L2
        linf = point_distances(columns, None, {"x": 0.0, "y": 0.0}, "linf")
        assert linf.tolist() == [0.0, 4.0]
        subset = point_distances(columns, np.array([1]), {"x": 0.0}, "l2")
        assert subset.tolist() == [9.0]
