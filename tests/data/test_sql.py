"""Tests for the WHERE-clause parser."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.predicates import Interval, Rectangle
from repro.data.sql import WhereClauseError, parse_where
from repro.data.table import Table


class TestBasicComparisons:
    def test_less_than(self):
        rect = parse_where("Distance < 800")
        assert rect.interval("Distance") == Interval(-math.inf, 800.0)

    def test_greater_equal(self):
        rect = parse_where("Distance >= 100")
        assert rect.interval("Distance") == Interval(100.0, math.inf)

    def test_equality(self):
        rect = parse_where("DayOfWeek = 3")
        assert rect.interval("DayOfWeek").is_point

    def test_mirrored_comparison(self):
        rect = parse_where("500 < Distance")
        assert rect.interval("Distance") == Interval(500.0, math.inf)
        rect = parse_where("120 >= AirTime")
        assert rect.interval("AirTime") == Interval(-math.inf, 120.0)

    def test_scientific_and_negative_numbers(self):
        rect = parse_where("x > -1.5e3")
        assert rect.interval("x").low == pytest.approx(-1500.0)

    def test_infinity_literals(self):
        rect = parse_where("x < inf AND x > -inf")
        assert not rect.constrains("x")


class TestCompoundClauses:
    def test_and_combination(self):
        rect = parse_where("500 < Distance AND Distance < 800 AND AirTime <= 120")
        assert rect.interval("Distance") == Interval(500.0, 800.0)
        assert rect.interval("AirTime") == Interval(-math.inf, 120.0)

    def test_chained_comparison(self):
        rect = parse_where("3 < DayOfWeek < 6")
        assert rect.interval("DayOfWeek") == Interval(3.0, 6.0)

    def test_between(self):
        rect = parse_where("Distance BETWEEN 100 AND 900")
        assert rect.interval("Distance") == Interval(100.0, 900.0)

    def test_between_combined_with_and(self):
        rect = parse_where("Distance BETWEEN 100 AND 900 AND AirTime < 60")
        assert rect.interval("Distance") == Interval(100.0, 900.0)
        assert rect.interval("AirTime").high == 60.0

    def test_where_prefix_and_case_insensitivity(self):
        rect = parse_where("WHERE distance between 1 and 2 and airtime > 5")
        assert rect.interval("distance") == Interval(1.0, 2.0)
        assert rect.interval("airtime").low == 5.0

    def test_repeated_column_constraints_intersect(self):
        rect = parse_where("x > 2 AND x > 5 AND x < 10")
        assert rect.interval("x") == Interval(5.0, 10.0)

    def test_contradictory_constraints_yield_empty(self):
        rect = parse_where("x < 1 AND x > 5")
        assert rect.is_empty


class TestEdgeCases:
    def test_empty_clause(self):
        assert parse_where("") == Rectangle.unconstrained()
        assert parse_where("   ") == Rectangle.unconstrained()

    def test_unparseable_term(self):
        with pytest.raises(WhereClauseError):
            parse_where("Distance LIKE 'abc'")

    def test_dangling_between(self):
        with pytest.raises(WhereClauseError):
            parse_where("x BETWEEN 1")

    def test_or_is_not_supported(self):
        with pytest.raises(WhereClauseError):
            parse_where("x < 1 OR x > 5")


class TestAgainstTable:
    @pytest.fixture(scope="class")
    def table(self):
        rng = np.random.default_rng(0)
        return Table(
            {
                "Distance": rng.uniform(0.0, 1000.0, size=2_000),
                "AirTime": rng.uniform(0.0, 300.0, size=2_000),
            }
        )

    def test_parser_matches_manual_rectangle(self, table):
        parsed = parse_where("200 <= Distance AND Distance <= 700 AND AirTime < 100")
        manual = Rectangle(
            {"Distance": Interval(200.0, 700.0), "AirTime": Interval(-math.inf, 100.0)}
        )
        assert np.array_equal(table.select(parsed), table.select(manual))

    @given(
        low=st.floats(0.0, 900.0),
        width=st.floats(0.0, 500.0),
        airtime_cap=st.floats(0.0, 300.0),
    )
    def test_random_clauses_match_manual(self, table, low, width, airtime_cap):
        clause = f"{low} <= Distance AND Distance <= {low + width} AND AirTime <= {airtime_cap}"
        parsed = parse_where(clause)
        manual = Rectangle(
            {
                "Distance": Interval(low, low + width),
                "AirTime": Interval(-math.inf, airtime_cap),
            }
        )
        assert np.array_equal(table.select(parsed), table.select(manual))
