"""Tests for the columnar table substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.predicates import Interval, Rectangle
from repro.data.table import Schema, Table, concat_tables


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Schema(("a", "a"))

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Schema(())

    def test_of_and_index_of(self):
        schema = Schema.of("a", "b", "c")
        assert schema.n_dims == 3
        assert schema.index_of("b") == 1
        assert "c" in schema
        assert list(schema) == ["a", "b", "c"]

    def test_index_of_unknown_column(self):
        with pytest.raises(KeyError):
            Schema.of("a").index_of("zzz")


class TestTableConstruction:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table({})

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            Table({"a": np.arange(3.0), "b": np.arange(4.0)})

    def test_requires_one_dimensional(self):
        with pytest.raises(ValueError):
            Table({"a": np.zeros((2, 2))})

    def test_from_matrix(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        table = Table.from_matrix(matrix, ["x", "y"])
        assert table.n_rows == 2
        assert table.column("y").tolist() == [2.0, 4.0]

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            Table.from_matrix(np.zeros(3), ["x"])
        with pytest.raises(ValueError):
            Table.from_matrix(np.zeros((3, 2)), ["x"])

    def test_empty_table(self):
        table = Table.empty(Schema.of("a", "b"))
        assert table.n_rows == 0
        assert table.nbytes() == 0

    def test_copy_flag_isolates_input(self):
        source = np.arange(4.0)
        table = Table({"a": source}, copy=True)
        source[0] = 99.0
        assert table.column("a")[0] == 0.0

    def test_columns_are_float64(self):
        table = Table({"a": np.array([1, 2, 3], dtype=np.int32)})
        assert table.column("a").dtype == np.float64


class TestTableAccess:
    @pytest.fixture()
    def table(self) -> Table:
        return Table({"a": np.array([3.0, 1.0, 2.0]), "b": np.array([30.0, 10.0, 20.0])})

    def test_row(self, table):
        assert table.row(1) == {"a": 1.0, "b": 10.0}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(3)

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_bounds(self, table):
        lows, highs = table.bounds()
        assert lows == {"a": 1.0, "b": 10.0}
        assert highs == {"a": 3.0, "b": 30.0}

    def test_to_matrix_column_order(self, table):
        matrix = table.to_matrix(["b", "a"])
        assert matrix[0].tolist() == [30.0, 3.0]

    def test_take_reorders(self, table):
        subset = table.take(np.array([2, 0]))
        assert subset.column("a").tolist() == [2.0, 3.0]

    def test_select_matches_numpy_filter(self, table):
        query = Rectangle({"a": Interval(1.5, 3.0)})
        expected = np.flatnonzero((table.column("a") >= 1.5) & (table.column("a") <= 3.0))
        assert np.array_equal(table.select(query), expected)

    def test_mask_and_select_consistent(self, table):
        query = Rectangle({"b": Interval(15.0, 35.0)})
        assert np.array_equal(np.flatnonzero(table.mask(query)), table.select(query))

    def test_iter_rows(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 3
        assert rows[0]["a"] == 3.0

    def test_min_max_empty_table(self):
        table = Table.empty(Schema.of("a"))
        assert table.min("a") == 0.0
        assert table.max("a") == 0.0


class TestTableTransforms:
    def test_sample_without_replacement(self):
        table = Table({"a": np.arange(100.0)})
        sampled = table.sample_rows(10, np.random.default_rng(0))
        assert len(sampled) == 10
        assert len(np.unique(sampled)) == 10

    def test_sample_caps_at_table_size(self):
        table = Table({"a": np.arange(5.0)})
        sampled = table.sample(50, np.random.default_rng(0))
        assert sampled.n_rows == 5

    def test_sample_zero(self):
        table = Table({"a": np.arange(5.0)})
        assert len(table.sample_rows(0, np.random.default_rng(0))) == 0

    def test_concat(self):
        left = Table({"a": np.array([1.0])})
        right = Table({"a": np.array([2.0, 3.0])})
        merged = left.concat(right)
        assert merged.column("a").tolist() == [1.0, 2.0, 3.0]

    def test_concat_schema_mismatch(self):
        left = Table({"a": np.array([1.0])})
        right = Table({"b": np.array([2.0])})
        with pytest.raises(ValueError):
            left.concat(right)

    def test_concat_tables_helper(self):
        parts = [Table({"a": np.array([float(i)])}) for i in range(3)]
        merged = concat_tables(parts)
        assert merged.n_rows == 3
        with pytest.raises(ValueError):
            concat_tables([])

    def test_with_column(self):
        table = Table({"a": np.array([1.0, 2.0])})
        extended = table.with_column("b", np.array([3.0, 4.0]))
        assert "b" in extended.schema
        with pytest.raises(ValueError):
            table.with_column("c", np.array([1.0]))

    def test_rename(self):
        table = Table({"a": np.array([1.0])})
        renamed = table.rename({"a": "z"})
        assert list(renamed.schema) == ["z"]

    def test_nbytes_positive(self):
        table = Table({"a": np.arange(10.0), "b": np.arange(10.0)})
        assert table.nbytes() == 2 * 10 * 8
