"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.airline import AIRLINE_COLUMNS, AirlineConfig, generate_airline_dataset
from repro.data.osm import OSM_COLUMNS, OSMConfig, generate_osm_dataset
from repro.data.synthetic import (
    CorrelatedGroupSpec,
    SyntheticDatasetSpec,
    clustered_coordinates,
    generate_correlated_dataset,
    generate_drifting_batches,
)
from repro.stats.correlation import pearson_correlation


class TestCorrelatedGroupSpec:
    def test_defaults_fill_slopes_and_intercepts(self):
        spec = CorrelatedGroupSpec(attributes=("x", "y", "z"))
        assert spec.slopes == (1.0, 1.0)
        assert spec.intercepts == (0.0, 0.0)
        assert spec.base_attribute == "x"
        assert spec.dependent_attributes == ("y", "z")

    def test_mismatched_slopes_rejected(self):
        with pytest.raises(ValueError):
            CorrelatedGroupSpec(attributes=("x", "y"), slopes=(1.0, 2.0))

    def test_invalid_outlier_fraction(self):
        with pytest.raises(ValueError):
            CorrelatedGroupSpec(attributes=("x", "y"), outlier_fraction=1.5)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            CorrelatedGroupSpec(attributes=("x",), base_low=5.0, base_high=1.0)


class TestSyntheticGenerator:
    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatasetSpec(
                n_rows=10,
                groups=(CorrelatedGroupSpec(attributes=("x", "y")),),
                independent_attributes=(("x", 0.0, 1.0),),
            )

    def test_generated_shape_and_determinism(self):
        spec = SyntheticDatasetSpec(
            n_rows=500,
            groups=(CorrelatedGroupSpec(attributes=("x", "y"), slopes=(2.0,), noise_scale=0.5),),
            independent_attributes=(("u", 0.0, 10.0),),
            seed=3,
        )
        table_a, meta_a = generate_correlated_dataset(spec)
        table_b, _ = generate_correlated_dataset(spec)
        assert table_a.n_rows == 500
        assert set(table_a.schema) == {"x", "y", "u"}
        assert np.array_equal(table_a.column("y"), table_b.column("y"))
        assert meta_a["x"].shape == (500,)

    def test_inliers_follow_linear_model(self):
        spec = SyntheticDatasetSpec(
            n_rows=2_000,
            groups=(
                CorrelatedGroupSpec(
                    attributes=("x", "y"), slopes=(3.0,), intercepts=(1.0,),
                    noise_scale=0.1, outlier_fraction=0.1,
                ),
            ),
            seed=5,
        )
        table, meta = generate_correlated_dataset(spec)
        inliers = ~meta["x"]
        x = table.column("x")[inliers]
        y = table.column("y")[inliers]
        residuals = y - (3.0 * x + 1.0)
        assert np.abs(residuals).max() < 1.0

    def test_outlier_fraction_respected(self):
        spec = SyntheticDatasetSpec(
            n_rows=5_000,
            groups=(CorrelatedGroupSpec(attributes=("x", "y"), outlier_fraction=0.3),),
            seed=6,
        )
        _, meta = generate_correlated_dataset(spec)
        assert abs(meta["x"].mean() - 0.3) < 0.05

    @pytest.mark.parametrize("distribution", ["uniform", "lognormal", "clustered"])
    def test_base_distributions(self, distribution):
        spec = SyntheticDatasetSpec(
            n_rows=300,
            groups=(
                CorrelatedGroupSpec(attributes=("x", "y"), base_distribution=distribution),
            ),
            seed=1,
        )
        table, _ = generate_correlated_dataset(spec)
        base = table.column("x")
        assert base.min() >= 0.0
        assert base.max() <= 1000.0

    def test_unknown_distribution_rejected(self):
        spec = SyntheticDatasetSpec(
            n_rows=10,
            groups=(CorrelatedGroupSpec(attributes=("x", "y"), base_distribution="bogus"),),
        )
        with pytest.raises(ValueError):
            generate_correlated_dataset(spec)


class TestDriftingBatches:
    SPEC = SyntheticDatasetSpec(
        n_rows=100,
        groups=(
            CorrelatedGroupSpec(
                attributes=("x", "y"),
                slopes=(2.0,),
                noise_scale=0.5,
                outlier_fraction=0.0,
            ),
        ),
        independent_attributes=(("z", 0.0, 10.0),),
        seed=3,
    )

    def test_schema_complete_batches(self):
        batches = generate_drifting_batches(
            self.SPEC, n_batches=4, rows_per_batch=50, intercept_drift=10.0
        )
        assert len(batches) == 4
        for batch in batches:
            assert set(batch) == {"x", "y", "z"}
            assert all(len(column) == 50 for column in batch.values())

    def test_intercept_ramps_linearly(self):
        batches = generate_drifting_batches(
            self.SPEC, n_batches=5, rows_per_batch=400, intercept_drift=100.0
        )
        offsets = [
            float(np.mean(batch["y"] - 2.0 * batch["x"])) for batch in batches
        ]
        assert offsets == pytest.approx([20.0, 40.0, 60.0, 80.0, 100.0], abs=1.0)

    def test_hold_fraction_freezes_the_tail(self):
        batches = generate_drifting_batches(
            self.SPEC,
            n_batches=10,
            rows_per_batch=400,
            intercept_drift=100.0,
            hold_fraction=0.5,
        )
        offsets = [
            float(np.mean(batch["y"] - 2.0 * batch["x"])) for batch in batches
        ]
        # Ramp over the first 5 batches, then held at the full shift.
        assert offsets[4] == pytest.approx(100.0, abs=1.0)
        for offset in offsets[5:]:
            assert offset == pytest.approx(100.0, abs=1.0)

    def test_deterministic_and_decoupled_from_build_seed(self):
        kwargs = dict(n_batches=2, rows_per_batch=10, intercept_drift=5.0)
        first = generate_drifting_batches(self.SPEC, **kwargs)
        second = generate_drifting_batches(self.SPEC, **kwargs)
        for left, right in zip(first, second):
            for name in left:
                assert np.array_equal(left[name], right[name])
        build_table, _ = generate_correlated_dataset(self.SPEC)
        assert not np.array_equal(first[0]["x"][:10], build_table.column("x")[:10])

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_drifting_batches(
                self.SPEC, n_batches=0, rows_per_batch=10, intercept_drift=1.0
            )
        with pytest.raises(ValueError):
            generate_drifting_batches(
                self.SPEC, n_batches=1, rows_per_batch=0, intercept_drift=1.0
            )
        with pytest.raises(ValueError):
            generate_drifting_batches(
                self.SPEC,
                n_batches=1,
                rows_per_batch=1,
                intercept_drift=1.0,
                hold_fraction=1.0,
            )


class TestAirlineDataset:
    def test_schema_and_size(self):
        table, meta = generate_airline_dataset(AirlineConfig(n_rows=2_000))
        assert tuple(table.schema) == AIRLINE_COLUMNS
        assert table.n_rows == 2_000
        assert meta["outliers"].shape == (2_000,)

    def test_correlated_groups_present(self):
        table, meta = generate_airline_dataset(AirlineConfig(n_rows=5_000, seed=2))
        inliers = ~meta["outliers"]
        distance = table.column("Distance")[inliers]
        air_time = table.column("AirTime")[inliers]
        dep = table.column("DepTime")[inliers]
        arr = table.column("ArrTime")[inliers]
        assert pearson_correlation(distance, air_time) > 0.95
        assert pearson_correlation(dep, arr) > 0.8

    def test_outlier_fraction_configurable(self):
        _, meta = generate_airline_dataset(AirlineConfig(n_rows=5_000, outlier_fraction=0.25))
        assert abs(meta["outliers"].mean() - 0.25) < 0.04

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AirlineConfig(n_rows=0)
        with pytest.raises(ValueError):
            AirlineConfig(outlier_fraction=1.2)

    def test_value_ranges_are_plausible(self):
        table, _ = generate_airline_dataset(AirlineConfig(n_rows=2_000))
        assert table.min("Distance") >= 80.0
        assert table.max("DepTime") <= 24.0 * 60.0
        assert table.min("DayOfWeek") >= 1.0
        assert table.max("DayOfWeek") <= 7.0


class TestOSMDataset:
    def test_schema_and_size(self):
        table, meta = generate_osm_dataset(OSMConfig(n_rows=2_000))
        assert tuple(table.schema) == OSM_COLUMNS
        assert table.n_rows == 2_000
        assert meta["outliers"].shape == (2_000,)

    def test_ids_strictly_increasing(self):
        table, _ = generate_osm_dataset(OSMConfig(n_rows=2_000))
        ids = table.column("Id")
        assert np.all(np.diff(ids) > 0)

    def test_id_timestamp_correlation_on_inliers(self):
        table, meta = generate_osm_dataset(OSMConfig(n_rows=5_000, seed=3))
        inliers = ~meta["outliers"]
        correlation = pearson_correlation(
            table.column("Id")[inliers], table.column("Timestamp")[inliers]
        )
        assert correlation > 0.99

    def test_coordinates_within_region(self):
        table, _ = generate_osm_dataset(OSMConfig(n_rows=2_000))
        assert table.min("Latitude") >= 40.0
        assert table.max("Latitude") <= 47.5
        assert table.min("Longitude") >= -80.0
        assert table.max("Longitude") <= -66.9

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OSMConfig(n_rows=-1)


class TestClusteredCoordinates:
    def test_shapes_and_ranges(self):
        rng = np.random.default_rng(0)
        lat, lon = clustered_coordinates(1_000, rng, n_clusters=5)
        assert lat.shape == lon.shape == (1_000,)
        assert lat.min() >= 40.0 and lat.max() <= 47.5

    def test_clustering_is_denser_than_uniform(self):
        rng = np.random.default_rng(1)
        lat, _ = clustered_coordinates(5_000, rng, n_clusters=4, background_fraction=0.0)
        counts, _ = np.histogram(lat, bins=30)
        uniform_expectation = len(lat) / 30
        # Clustered data concentrates: the biggest bin far exceeds uniform.
        assert counts.max() > 3 * uniform_expectation
