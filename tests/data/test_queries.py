"""Tests for the query workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.queries import (
    WorkloadConfig,
    generate_knn_queries,
    generate_point_queries,
    generate_selectivity_queries,
)
from repro.data.table import Table


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(4)
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=4_000),
            "b": rng.normal(50.0, 10.0, size=4_000),
            "c": rng.uniform(-1.0, 1.0, size=4_000),
        }
    )


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_queries=0)
        with pytest.raises(ValueError):
            WorkloadConfig(k_neighbours=0)


class TestKNNQueries:
    def test_number_and_kind(self, table):
        workload = generate_knn_queries(table, WorkloadConfig(n_queries=12, k_neighbours=30))
        assert len(workload) == 12
        assert workload.kind == "range"

    def test_queries_constrain_all_requested_dims(self, table):
        workload = generate_knn_queries(
            table, WorkloadConfig(n_queries=5, k_neighbours=30, dimensions=("a", "c"))
        )
        for query in workload:
            assert set(query.constrained_dims) <= {"a", "c"}
            assert query.constrains("a")

    def test_each_query_matches_at_least_k_records(self, table):
        k = 25
        workload = generate_knn_queries(table, WorkloadConfig(n_queries=10, k_neighbours=k, seed=2))
        for query in workload:
            assert len(table.select(query)) >= k

    def test_deterministic_for_seed(self, table):
        config = WorkloadConfig(n_queries=5, k_neighbours=20, seed=9)
        first = generate_knn_queries(table, config)
        second = generate_knn_queries(table, config)
        assert first.queries == second.queries

    def test_larger_k_means_larger_queries(self, table):
        small = generate_knn_queries(table, WorkloadConfig(n_queries=10, k_neighbours=10, seed=1))
        large = generate_knn_queries(table, WorkloadConfig(n_queries=10, k_neighbours=500, seed=1))
        assert large.mean_selectivity(table) > small.mean_selectivity(table)


class TestPointQueries:
    def test_point_queries_match_existing_records(self, table):
        workload = generate_point_queries(table, WorkloadConfig(n_queries=15, seed=3))
        assert workload.kind == "point"
        for query in workload:
            assert query.is_point
            assert len(table.select(query)) >= 1

    def test_cardinalities_cached(self, table):
        workload = generate_point_queries(table, WorkloadConfig(n_queries=5, seed=3))
        first = workload.cardinalities(table)
        second = workload.cardinalities(table)
        assert first is second


class TestSelectivityQueries:
    def test_mean_selectivity_near_target(self, table):
        target = 200
        workload = generate_selectivity_queries(
            table, target, WorkloadConfig(n_queries=10, seed=5)
        )
        measured = workload.mean_selectivity(table)
        assert 0.3 * target <= measured <= 3.0 * target

    def test_targets_are_ordered(self, table):
        low = generate_selectivity_queries(table, 50, WorkloadConfig(n_queries=8, seed=6))
        high = generate_selectivity_queries(table, 1_000, WorkloadConfig(n_queries=8, seed=6))
        assert high.mean_selectivity(table) > low.mean_selectivity(table)

    def test_invalid_target(self, table):
        with pytest.raises(ValueError):
            generate_selectivity_queries(table, 0)

    def test_kind_labels_target(self, table):
        workload = generate_selectivity_queries(table, 100, WorkloadConfig(n_queries=4, seed=7))
        assert workload.kind.startswith("selectivity~")
