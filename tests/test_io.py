"""Tests for persistence and table import/export."""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, EngineConfig, LayoutConfig, MaintenanceConfig
from repro.core.engine import ShardedCOAX
from repro.data.predicates import Interval, Rectangle
from repro.data.queries import WorkloadConfig, generate_knn_queries
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel, SplineFDModel
from repro.io.datasets import encode_categories, load_csv, load_npz, save_csv, save_npz
from repro.io.persistence import (
    FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    MANIFEST_NAME,
    MMAP_MIN_BYTES,
    SUPPORTED_VERSIONS,
    UnsupportedFormatError,
    load_engine,
    load_index,
    save_index,
)


def _manifest(path):
    """Parsed manifest of a columnar (v6) archive directory."""
    return json.loads((path / MANIFEST_NAME).read_text())


def _mmap_backed(array: np.ndarray) -> bool:
    """Whether ``array`` is (a zero-copy view of) a mapped file.

    Arrays below the ``MMAP_MIN_BYTES`` threshold are read eagerly by
    design (an fd is not worth a few hundred bytes) and pass trivially.
    """
    if array.nbytes < MMAP_MIN_BYTES:
        return True
    return isinstance(array, np.memmap) or isinstance(array.base, np.memmap)


class TestIndexPersistence:
    def test_round_trip_preserves_results(self, airline_coax, airline_small, tmp_path):
        path = save_index(airline_coax, tmp_path / "airline.coax.npz")
        loaded = load_index(path)
        assert loaded.n_rows == airline_coax.n_rows
        assert len(loaded.groups) == len(airline_coax.groups)
        assert loaded.primary_ratio == pytest.approx(airline_coax.primary_ratio)
        workload = generate_knn_queries(
            airline_small, WorkloadConfig(n_queries=8, k_neighbours=100, seed=9)
        )
        for query in workload:
            assert np.array_equal(
                np.sort(loaded.range_query(query)), np.sort(airline_coax.range_query(query))
            )

    def test_round_trip_preserves_model_parameters(self, airline_coax, tmp_path):
        path = save_index(airline_coax, tmp_path / "m.npz")
        loaded = load_index(path)
        original = {
            (g.predictor, d): g.model_for(d) for g in airline_coax.groups for d in g.dependents
        }
        restored = {
            (g.predictor, d): g.model_for(d) for g in loaded.groups for d in g.dependents
        }
        assert set(original) == set(restored)
        for key, model in original.items():
            assert restored[key].slope == pytest.approx(model.slope)
            assert restored[key].eps_ub == pytest.approx(model.eps_ub)

    def test_round_trip_preserves_delta_state(self, tmp_path):
        """Pending (not yet compacted) records survive save/load as pending."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 100.0, size=1_000)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=1_000)})
        groups = [
            FDGroup(predictor="x", dependents=("y",), models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)})
        ]
        index = COAXIndex(table, groups=groups)
        inlier_id = index.insert({"x": 50.0, "y": 100.0})
        outlier_id = index.insert({"x": 50.0, "y": 700.0})
        path = save_index(index, tmp_path / "pending.npz")
        loaded = load_index(path)
        assert loaded.n_rows == 1_000
        assert loaded.n_pending == 2
        assert loaded.n_pending_primary == 1
        assert loaded.n_pending_outlier == 1
        # Pending rows stay queryable with their pre-save ids …
        hits = loaded.range_query(Rectangle({"y": Interval(699.0, 701.0)}))
        assert hits.tolist() == [outlier_id]
        # … and new inserts continue from the saved next row id.
        assert loaded.insert({"x": 10.0, "y": 20.0}) == outlier_id + 1
        # Compacting the loaded index folds them in exactly.
        loaded.compact()
        assert loaded.n_pending == 0
        assert loaded.n_rows == 1_003
        assert inlier_id in loaded.range_query(
            Rectangle({"x": Interval(49.9, 50.1), "y": Interval(99.0, 101.0)})
        )

    def test_subset_index_with_pending_saves_consistently(self, tmp_path):
        """A subset-scoped index with pending rows round-trips with its row
        ids preserved (format v3 stores the covered ids; v2 had to fold the
        pending rows into a renumbered table instead)."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0.0, 100.0, size=2_000)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=2_000)})
        groups = [
            FDGroup(predictor="x", dependents=("y",), models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)})
        ]
        subset = np.arange(0, 1_000, dtype=np.int64)
        index = COAXIndex(table, groups=groups, row_ids=subset)
        pending_id = index.insert({"x": 50.0, "y": 700.0})  # outlier, id 2000
        assert pending_id == 2_000
        loaded = load_index(save_index(index, tmp_path / "subset.npz"))
        assert loaded.n_rows == 1_000
        assert loaded.n_pending == 1
        assert loaded.next_row_id == index.next_row_id
        # Query equivalence over the whole round trip, pending included.
        for query in (
            Rectangle({"y": Interval(699.0, 701.0)}),
            Rectangle({"x": Interval(10.0, 60.0)}),
            Rectangle(),
        ):
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(index.range_query(query)),
            )
        hits = loaded.range_query(Rectangle({"y": Interval(699.0, 701.0)}))
        assert hits.tolist() == [pending_id]
        # The loaded index must stay usable through another update cycle.
        assert loaded.insert({"x": 10.0, "y": 20.0}) == pending_id + 1
        loaded.compact()
        assert loaded.n_rows == 1_002
        assert pending_id in loaded.range_query(
            Rectangle({"y": Interval(699.0, 701.0)})
        )

    def test_subset_index_with_tombstones_and_pending_round_trips(self, tmp_path):
        """The full CRUD state of a subset-scoped index survives a save/load:
        tombstones stay deleted, pending rows stay pending, ids are kept."""
        rng = np.random.default_rng(4)
        x = rng.uniform(0.0, 100.0, size=2_000)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=2_000)})
        groups = [
            FDGroup(predictor="x", dependents=("y",), models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)})
        ]
        subset = np.arange(500, 1_500, dtype=np.int64)
        index = COAXIndex(table, groups=groups, row_ids=subset)
        index.delete_batch(np.arange(500, 600, dtype=np.int64))
        index.insert_batch({"x": [50.0, 60.0], "y": [100.2, 700.0]})
        index.update_batch(
            np.array([700], dtype=np.int64), {"x": [42.0], "y": [84.1]}
        )
        loaded = load_index(save_index(index, tmp_path / "crud.npz"))
        assert loaded.n_tombstoned == index.n_tombstoned
        assert loaded.n_pending == index.n_pending
        assert loaded.n_live == index.n_live
        probes = (
            Rectangle({"x": Interval(41.9, 42.1)}),
            Rectangle({"y": Interval(699.0, 701.0)}),
            Rectangle({"x": Interval(10.0, 60.0)}),
            Rectangle(),
        )
        for query in probes:
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(index.range_query(query)),
            )
        # Compaction after the round trip reclaims identically.
        loaded.compact()
        index.compact()
        for query in probes:
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(index.range_query(query)),
            )

    def test_tombstones_round_trip(self, tmp_path):
        """Deleted rows stay deleted across a save/load without compaction."""
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 100.0, size=1_000)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=1_000)})
        groups = [
            FDGroup(predictor="x", dependents=("y",), models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)})
        ]
        index = COAXIndex(table, groups=groups)
        doomed = rng.choice(1_000, size=150, replace=False).astype(np.int64)
        index.delete_batch(doomed)
        path = save_index(index, tmp_path / "tomb.coax")
        manifest = _manifest(path)
        assert "__tombstone__" in manifest["arrays"]
        assert manifest["meta"]["format_version"] == FORMAT_VERSION
        loaded = load_index(path)
        assert loaded.n_tombstoned == 150
        assert loaded.n_live == 850
        everything = Rectangle()
        assert np.array_equal(
            np.sort(loaded.range_query(everything)),
            np.sort(index.range_query(everything)),
        )
        loaded.compact()
        assert loaded.n_tombstoned == 0
        assert loaded.n_live == 850

    def test_clean_index_saves_without_tombstone_section(self, airline_coax, tmp_path):
        path = save_index(airline_coax, tmp_path / "clean_tomb.coax")
        arrays = _manifest(path)["arrays"]
        assert "__tombstone__" not in arrays
        assert "__row_ids__" not in arrays  # aligned index

    def test_restore_does_not_reevaluate_models(self, tmp_path, monkeypatch):
        """A v6 structured restore reattaches the persisted partition and
        grid structures verbatim: loading runs ZERO model evaluations —
        not for the build rows (no re-partition) and not for the pending
        rows (the archive carries the per-model routing masks)."""
        rng = np.random.default_rng(6)
        x = rng.uniform(0.0, 100.0, size=800)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=800)})
        model = LinearFDModel(2.0, 0.0, 1.5, 1.5)
        groups = [FDGroup(predictor="x", dependents=("y",), models={"y": model})]
        index = COAXIndex(table, groups=groups)
        index.insert_batch({"x": rng.uniform(0, 100, 50), "y": rng.uniform(0, 300, 50)})
        path = save_index(index, tmp_path / "masks.coax")
        calls = {"n": 0}
        original = LinearFDModel.within_margin

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(LinearFDModel, "within_margin", counting)
        loaded = load_index(path)
        assert calls["n"] == 0
        assert loaded.n_pending == 50
        # A fresh build over the same table DOES evaluate (the counter
        # works) — and matches the reattached structures.
        fresh = COAXIndex(table, groups=groups)
        assert calls["n"] > 0
        assert fresh.n_rows == loaded.n_rows
        assert loaded.delta.per_model_inlier_counts == index.delta.per_model_inlier_counts

    def test_legacy_v2_archive_loads(self, tmp_path):
        """A format-v2 archive (no tombstones, no per-model masks) loads and
        re-derives the delta routing bookkeeping once."""
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, 100.0, size=600)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=600)})
        groups = [
            FDGroup(predictor="x", dependents=("y",), models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)})
        ]
        index = COAXIndex(table, groups=groups)
        index.insert_batch({"x": [10.0, 20.0], "y": [20.1, 700.0]})
        path = save_index(index, tmp_path / "v3.npz", layout="npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["format_version"] = 2
        meta.pop("n_tombstoned", None)
        meta.pop("n_live", None)
        arrays = {
            key: value
            for key, value in arrays.items()
            if not key.startswith("delta::model::")
            and key not in ("__tombstone__", "__row_ids__")
        }
        arrays["__meta__"] = np.array(json.dumps(meta))
        legacy_path = tmp_path / "v2.npz"
        with legacy_path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = load_index(legacy_path)
        assert loaded.n_pending == 2
        assert loaded.n_tombstoned == 0
        assert loaded.delta.per_model_inlier_counts == index.delta.per_model_inlier_counts
        everything = Rectangle()
        assert np.array_equal(
            np.sort(loaded.range_query(everything)),
            np.sort(index.range_query(everything)),
        )

    def test_compacted_index_saves_without_delta_section(self, tmp_path):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.0, 100.0, size=500)
        table = Table({"x": x, "y": 2.0 * x})
        index = COAXIndex(table, groups=[])
        index.insert({"x": 1.0, "y": 2.0})
        index.compact()
        path = save_index(index, tmp_path / "clean.coax")
        assert not any(
            key.startswith("delta::") for key in _manifest(path)["arrays"]
        )
        assert load_index(path).n_pending == 0

    def test_spline_models_survive_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        x = np.sort(rng.uniform(0.0, 100.0, size=2_000))
        y = np.where(x < 50.0, x, 100.0 - x) * 2.0 + rng.normal(0, 0.2, size=2_000)
        table = Table({"x": x, "y": y})
        spline = SplineFDModel.fit(x, y, epsilon=2.0)
        groups = [FDGroup(predictor="x", dependents=("y",), models={"y": spline})]
        index = COAXIndex(table, groups=groups)
        loaded = load_index(save_index(index, tmp_path / "spline.npz"))
        restored = loaded.groups[0].model_for("y")
        assert isinstance(restored, SplineFDModel)
        assert restored.n_segments == spline.n_segments
        query = Rectangle({"y": Interval(40.0, 60.0)})
        assert np.array_equal(np.sort(loaded.range_query(query)), table.select(query))

    def test_rejects_non_index_archives(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, data=np.arange(5))
        with pytest.raises(ValueError):
            load_index(path)

    def test_format_version_is_checked(self, airline_coax, tmp_path, monkeypatch):
        path = save_index(airline_coax, tmp_path / "v.npz")
        monkeypatch.setattr(
            "repro.io.persistence.SUPPORTED_VERSIONS", (FORMAT_VERSION + 1,)
        )
        with pytest.raises(ValueError):
            load_index(path)

    def test_unsupported_version_error_is_typed(self, airline_coax, tmp_path):
        """A future version raises the typed error naming what IS readable —
        in both the legacy single-file and the v6 directory layout."""
        path = save_index(airline_coax, tmp_path / "future.npz", layout="npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["format_version"] = 99
        arrays["__meta__"] = np.array(json.dumps(meta))
        future_npz = tmp_path / "v99.npz"
        with future_npz.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        future_dir = save_index(airline_coax, tmp_path / "v99.coax")
        manifest = _manifest(future_dir)
        manifest["meta"]["format_version"] = 99
        (future_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        for future_path in (future_npz, future_dir):
            for loader in (load_index, load_engine):
                with pytest.raises(UnsupportedFormatError) as excinfo:
                    loader(future_path)
                assert excinfo.value.version == 99
                assert excinfo.value.supported == tuple(SUPPORTED_VERSIONS)
                for version in SUPPORTED_VERSIONS:
                    assert str(version) in str(excinfo.value)
                assert isinstance(excinfo.value, ValueError)  # back-compat

    def test_unserialisable_model_rejected(self):
        from repro.io.persistence import _model_from_dict, _model_to_dict

        class WeirdModel:
            """Satisfies nothing the serialiser knows about."""

        with pytest.raises(TypeError):
            _model_to_dict(WeirdModel())
        with pytest.raises(ValueError):
            _model_from_dict({"kind": "mystery"})


class TestFormatVersionMatrix:
    """Every supported on-disk version (v1–v7) loads — via ``load_index``
    into its natural type and via ``load_engine`` always into a sharded
    engine (flat archives become a 1-shard engine).

    v7 is what ``save_index`` writes today (columnar directory with
    layout-monitor state); v6 is the same directory minus the layout
    sections, so the fixture derives it by re-stamping the manifest; v5
    is what ``layout="npz"`` still writes; v3 (flat) and v4 (sharded)
    are byte-identical to v5 minus the version stamp and any monitor
    sections, so the fixtures derive them by rewriting the header; v2/v1
    strip the per-model masks resp. the whole delta section, as those
    formats did.
    """

    #: Flat-archive versions (load as COAXIndex / 1-shard engine).
    FLAT_VERSIONS = (1, 2, 3, 5, 6, 7)
    ALL_VERSIONS = (1, 2, 3, 4, 5, 6, 7)

    @staticmethod
    def _rewrite(arrays, meta, path):
        arrays = dict(arrays)
        arrays["__meta__"] = np.array(json.dumps(meta))
        with path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        return path

    @staticmethod
    def _restamp_directory(source, target, version):
        """Derive an older columnar archive: copy + rewrite the manifest.

        Dropping the ``layout::`` sections and the engine's layout config
        alongside the version stamp reproduces what a v6 writer emitted.
        """
        shutil.copytree(source, target)
        manifest = json.loads((target / MANIFEST_NAME).read_text())
        manifest["meta"]["format_version"] = version
        if isinstance(manifest["meta"].get("engine"), dict):
            manifest["meta"]["engine"].pop("layout", None)
        manifest["arrays"] = {
            key: entry
            for key, entry in manifest["arrays"].items()
            if not key.startswith("layout::")
        }
        (target / MANIFEST_NAME).write_text(json.dumps(manifest))
        return target

    @pytest.fixture(scope="class")
    def fixture_state(self, tmp_path_factory):
        """One CRUD-laden index plus one archive per format version."""
        rng = np.random.default_rng(21)
        x = rng.uniform(0.0, 100.0, size=800)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=800)})
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
            )
        ]
        index = COAXIndex(table, groups=groups)
        index.insert_batch({"x": [10.0, 20.0], "y": [20.1, 700.0]})
        base = tmp_path_factory.mktemp("versions")
        paths = {}
        # v7: what save_index writes for a flat index today.
        paths[7] = save_index(index, base / "v7.coax")
        assert _manifest(paths[7])["meta"]["format_version"] == FORMAT_VERSION == 7
        # v6: the same columnar directory minus the layout sections.
        paths[6] = self._restamp_directory(paths[7], base / "v6.coax", 6)
        # v5: the legacy single-file layout, still written on request.
        paths[5] = save_index(index, base / "v5.npz", layout="npz")
        with np.load(paths[5], allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        assert meta["format_version"] == LEGACY_FORMAT_VERSION == 5
        # v3: identical layout, pre-maintenance version stamp.
        paths[3] = self._rewrite(
            arrays, dict(meta, format_version=3), base / "v3.npz"
        )
        # v2: no per-model masks, no tombstones, no row-id section.
        v2_meta = dict(meta, format_version=2)
        v2_meta.pop("n_tombstoned", None)
        v2_meta.pop("n_live", None)
        v2_arrays = {
            key: value
            for key, value in arrays.items()
            if not key.startswith("delta::model::")
            and key not in ("__tombstone__", "__row_ids__", "__meta__")
        }
        paths[2] = self._rewrite(v2_arrays, v2_meta, base / "v2.npz")
        # v1: no delta section at all — the archive of a compacted index.
        v1_meta = dict(v2_meta, format_version=1, n_pending=0)
        v1_meta.pop("next_row_id", None)
        v1_arrays = {
            key: value
            for key, value in v2_arrays.items()
            if not key.startswith("delta::") and key != "__meta__"
        }
        paths[1] = self._rewrite(v1_arrays, v1_meta, base / "v1.npz")
        # Sharded engine over the same data and delta state: saved as v5,
        # re-stamped as v4 (the pre-maintenance sharded format).
        engine = ShardedCOAX(
            table, config=EngineConfig(n_shards=3, workers=1), groups=groups
        )
        engine.insert_batch({"x": [10.0, 20.0], "y": [20.1, 700.0]})
        engine_path = save_index(engine, base / "engine_v5.npz", layout="npz")
        with np.load(engine_path, allow_pickle=False) as archive:
            engine_arrays = {key: archive[key] for key in archive.files}
        engine_meta = json.loads(str(engine_arrays["__meta__"]))
        assert engine_meta["format_version"] == 5
        del engine_arrays["__meta__"]
        paths[4] = self._rewrite(
            engine_arrays, dict(engine_meta, format_version=4), base / "v4.npz"
        )
        return index, engine, paths

    PROBES = (
        Rectangle({"x": Interval(10.0, 60.0)}),
        Rectangle({"y": Interval(699.0, 701.0)}),
        Rectangle(),
    )

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_load_index_returns_natural_type(self, fixture_state, version):
        index, engine, paths = fixture_state
        loaded = load_index(paths[version])
        reference = index if version in self.FLAT_VERSIONS else engine
        if version in self.FLAT_VERSIONS:
            assert isinstance(loaded, COAXIndex)
        else:
            assert isinstance(loaded, ShardedCOAX) and loaded.n_shards == 3
        if version >= 2:
            assert loaded.n_pending == reference.n_pending
        for query in self.PROBES:
            expected = np.sort(reference.range_query(query))
            if version == 1:
                # v1 carries no delta section: only the build rows load.
                expected = expected[expected < 800]
            assert np.array_equal(np.sort(loaded.range_query(query)), expected)

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_load_engine_always_returns_engine(self, fixture_state, version):
        index, engine, paths = fixture_state
        loaded = load_engine(paths[version])
        assert isinstance(loaded, ShardedCOAX)
        assert loaded.n_shards == (1 if version in self.FLAT_VERSIONS else 3)
        reference = index if version in self.FLAT_VERSIONS else engine
        for query in self.PROBES:
            expected = np.sort(reference.range_query(query))
            if version == 1:
                expected = expected[expected < 800]
            assert np.array_equal(np.sort(loaded.range_query(query)), expected)
        # The wrapped engine stays fully usable: CRUD plus compaction.
        new_id = loaded.insert({"x": 5.0, "y": 10.0})
        assert new_id == loaded.next_row_id - 1
        assert loaded.delete(new_id)
        loaded.compact()

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_every_version_converts_to_current_on_save(
        self, fixture_state, version, tmp_path
    ):
        """Loading any old format and saving writes a current (v7)
        directory that re-loads mmap-backed and answers bit-identically."""
        _, _, paths = fixture_state
        loaded = load_index(paths[version])
        converted_path = save_index(loaded, tmp_path / f"from_v{version}.coax")
        assert converted_path.is_dir()
        assert _manifest(converted_path)["meta"]["format_version"] == FORMAT_VERSION
        converted = load_index(converted_path)
        table = (
            converted.table
            if isinstance(converted, COAXIndex)
            else converted.shards[0].table
        )
        assert all(_mmap_backed(table.column(name)) for name in table.schema)
        for query in self.PROBES:
            assert np.array_equal(
                np.sort(converted.range_query(query)),
                np.sort(loaded.range_query(query)),
            )


class TestLayoutStatePersistence:
    """v7 round-trips the workload-adaptive layout monitor; pre-v7
    archives load with an empty monitor (or none, when layout is off)."""

    @pytest.fixture()
    def adaptive_engine(self):
        rng = np.random.default_rng(47)
        n = 4_000
        x = rng.uniform(0.0, 100.0, size=n)
        table = Table(
            {
                "x": x,
                "y": 2.0 * x + rng.uniform(-1, 1, size=n),
                "z": rng.uniform(0.0, 10.0, size=n),
            }
        )
        engine = ShardedCOAX(
            table,
            config=EngineConfig(
                n_shards=3,
                workers=1,
                layout=LayoutConfig(
                    enabled=True, sketch_size=64, min_queries=8, min_gain=1.0
                ),
            ),
        )
        # A hot region much narrower than the build-time shards, so the
        # monitor has something to learn and (at min_gain=1.0) adopt.
        for low in np.linspace(1.0, 6.0, 24):
            engine.range_query(
                Rectangle(
                    {
                        "x": Interval(low, low + 2.0),
                        "y": Interval(2 * low, 2 * low + 4.0),
                    }
                )
            )
        engine.compact()
        return engine

    PROBES = (
        Rectangle({"x": Interval(2.0, 7.0)}),
        Rectangle({"y": Interval(10.0, 30.0)}),
        Rectangle(),
    )

    def test_monitor_state_round_trips(self, adaptive_engine, tmp_path):
        engine = adaptive_engine
        assert engine.layout is not None
        assert engine.layout.epoch >= 1  # the fixture workload adopted
        path = save_index(engine, tmp_path / "adaptive.coax")
        assert _manifest(path)["meta"]["format_version"] == FORMAT_VERSION
        loaded = load_engine(path)
        assert loaded.layout is not None
        assert loaded.layout.epoch == engine.layout.epoch
        assert loaded.layout.observed == engine.layout.observed
        original = engine.layout.state()
        restored = loaded.layout.state()
        assert set(original) == set(restored)
        for name in original:
            assert np.array_equal(np.asarray(original[name]), np.asarray(restored[name]))
        for query in self.PROBES:
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(engine.range_query(query)),
            )

    def test_pre_v7_archive_loads_with_empty_monitor(
        self, adaptive_engine, tmp_path
    ):
        engine = adaptive_engine
        path = save_index(engine, tmp_path / "adaptive.coax")
        legacy = TestFormatVersionMatrix._restamp_directory(
            path, tmp_path / "v6.coax", 6
        )
        loaded = load_engine(legacy)
        # v6 carried no layout section: the engine comes up with the
        # default (disabled) layout config and no monitor, but answers
        # queries over the adopted shard boundaries bit-identically.
        assert loaded.layout is None
        assert loaded.n_shards == engine.n_shards
        for query in self.PROBES:
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(engine.range_query(query)),
            )

    def test_legacy_npz_strips_layout_state(self, adaptive_engine, tmp_path):
        engine = adaptive_engine
        path = save_index(engine, tmp_path / "adaptive.npz", layout="npz")
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["__meta__"]))
            assert not any(key.startswith("layout::") for key in archive.files)
        assert "layout" not in meta.get("engine", {})
        loaded = load_engine(path)
        assert loaded.layout is None
        for query in self.PROBES:
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(engine.range_query(query)),
            )


class TestColumnarZeroCopy:
    """The v6 read path attaches columns instead of materialising them."""

    @pytest.fixture()
    def saved_index(self, tmp_path):
        rng = np.random.default_rng(31)
        n = 20_000
        x = rng.uniform(0.0, 100.0, size=n)
        y = 2.0 * x + rng.uniform(-1, 1, size=n)
        y[::19] += 40.0  # outliers, so the outlier grid is non-trivial
        table = Table({"x": x, "y": y, "z": rng.uniform(0.0, 10.0, size=n)})
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
            )
        ]
        index = COAXIndex(table, groups=groups)
        return save_index(index, tmp_path / "big.coax")

    def test_loaded_columns_are_mapped(self, saved_index):
        loaded = load_index(saved_index)
        for name in loaded.table.schema:
            assert _mmap_backed(loaded.table.column(name))
        # The structured restore also reattaches the sub-index state
        # (gathered column subsets, permutation, offsets) from the map.
        for grid in (loaded._primary, loaded._outlier):
            assert _mmap_backed(grid._row_order)
            assert _mmap_backed(grid._sorted_keys)
            for column in grid._columns.values():
                assert _mmap_backed(column)

    def test_queries_never_materialise_full_columns(
        self, saved_index, monkeypatch
    ):
        """Larger-than-RAM smoke test stand-in: querying a mapped table
        must never funnel a whole column through a materialising call.
        Every full-column array of the loaded index is guarded; a
        wholesale ``np.asarray`` / ``np.ascontiguousarray`` on any of
        them (the call that would pull the file into memory under a
        capped materialisation budget) fails the test."""
        loaded = load_index(saved_index)
        queries = [
            Rectangle({"x": Interval(float(lo), float(lo) + 15.0)})
            for lo in range(0, 90, 9)
        ] + [Rectangle({"y": Interval(0.0, 120.0), "z": Interval(2.0, 8.0)})]
        expected = [loaded.table.select(query) for query in queries]

        guarded = {id(loaded.table.column(name)) for name in loaded.table.schema}
        for grid in (loaded._primary, loaded._outlier):
            guarded |= {id(column) for column in grid._columns.values()}
            guarded |= {id(grid._row_order), id(grid._sorted_keys)}

        real_asarray = np.asarray
        real_ascontiguous = np.ascontiguousarray

        def guarded_asarray(a, *args, **kwargs):
            assert id(a) not in guarded, "full mapped column materialised"
            return real_asarray(a, *args, **kwargs)

        def guarded_ascontiguous(a, *args, **kwargs):
            assert id(a) not in guarded, "full mapped column materialised"
            return real_ascontiguous(a, *args, **kwargs)

        monkeypatch.setattr(np, "asarray", guarded_asarray)
        monkeypatch.setattr(np, "ascontiguousarray", guarded_ascontiguous)
        results = loaded.batch_range_query(queries)
        monkeypatch.undo()
        assert sum(len(r) for r in results) > 0
        for want, result in zip(expected, results):
            assert np.array_equal(np.sort(result), want)


class TestEngineExecutorPersistence:
    """``workers`` / ``executor`` round-trip through the engine header and
    are overridable at load time (deployment knobs — the override wins)."""

    @staticmethod
    def _engine(tmp_path, **config_kwargs):
        rng = np.random.default_rng(41)
        x = rng.uniform(0.0, 100.0, size=600)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=600)})
        engine = ShardedCOAX(
            table, config=EngineConfig(n_shards=3, **config_kwargs)
        )
        return save_index(engine, tmp_path / "engine.coax")

    def test_saved_executor_round_trips(self, tmp_path):
        path = self._engine(tmp_path, workers=4, executor="process")
        loaded = load_engine(path)
        assert loaded.executor == "process"
        assert loaded.workers == 4
        loaded.close()

    def test_load_time_override_always_wins(self, tmp_path):
        path = self._engine(tmp_path, workers=4, executor="process")
        loaded = load_engine(path, workers=2, executor="thread")
        assert loaded.executor == "thread"
        assert loaded.workers == 2
        # And the other direction: a thread-saved archive serves from
        # processes on request.
        path2 = self._engine(tmp_path, workers=1, executor="thread")
        loaded2 = load_engine(path2, workers=3, executor="process")
        assert loaded2.executor == "process"
        assert loaded2.workers == 3
        loaded.close()
        loaded2.close()

    def test_invalid_executor_override_rejected(self, tmp_path):
        path = self._engine(tmp_path, workers=1)
        with pytest.raises(ValueError, match="executor"):
            load_engine(path, executor="fibers")

    def test_flat_archive_wraps_with_requested_executor(self, tmp_path):
        rng = np.random.default_rng(42)
        x = rng.uniform(0.0, 100.0, size=400)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=400)})
        path = save_index(COAXIndex(table), tmp_path / "flat.coax")
        engine = load_engine(path, workers=2, executor="process")
        assert engine.n_shards == 1
        assert engine.executor == "process"
        assert engine.workers == 2
        engine.close()

    def test_pre_v6_archives_default_to_thread_executor(self, tmp_path):
        path = self._engine(tmp_path, workers=2)
        # Strip the executor field, as a v4/v5 writer would have.
        with np.load(
            save_index(load_engine(path), tmp_path / "legacy.npz", layout="npz"),
            allow_pickle=False,
        ) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["engine"].pop("executor", None)
        arrays["__meta__"] = np.array(json.dumps(meta))
        legacy = tmp_path / "pre_v6.npz"
        with legacy.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = load_engine(legacy)
        assert loaded.executor == "thread"
        assert loaded.workers == 2


class TestAdaptiveMonitorPersistence:
    """Format v5: drift-monitor state survives a save/load round trip."""

    GROUPS = [
        FDGroup(
            predictor="x",
            dependents=("y",),
            models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
        )
    ]
    CONFIG = COAXConfig(
        maintenance=MaintenanceConfig(enabled=True, min_observations=100)
    )

    @staticmethod
    def _table(seed=23, n=600):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.0, 100.0, size=n)
        return Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=n)})

    def test_flat_monitor_state_round_trips(self, tmp_path):
        index = COAXIndex(self._table(), config=self.CONFIG, groups=self.GROUPS)
        rng = np.random.default_rng(24)
        bx = rng.uniform(0.0, 100.0, size=150)
        index.insert_batch({"x": bx, "y": 2.0 * bx + 1.0})
        monitor = index.maintenance.monitor("x->y")
        assert monitor.n_streamed == 150
        path = save_index(index, tmp_path / "adaptive.coax")
        assert "monitor::x->y" in _manifest(path)["arrays"]
        loaded = load_index(path)
        assert loaded.maintenance is not None
        restored = loaded.maintenance.monitor("x->y")
        assert restored.n_streamed == 150
        assert np.allclose(restored.state_vector(), monitor.state_vector())
        config = loaded.maintenance.config
        assert restored.decide(config) == monitor.decide(config)

    def test_engine_shared_monitor_state_round_trips(self, tmp_path):
        engine = ShardedCOAX(
            self._table(),
            config=EngineConfig(n_shards=3, workers=1, coax=self.CONFIG),
            groups=self.GROUPS,
        )
        rng = np.random.default_rng(25)
        bx = rng.uniform(0.0, 100.0, size=200)
        engine.insert_batch({"x": bx, "y": 2.0 * bx + 1.0})
        assert engine.maintenance.monitor("x->y").n_streamed == 200
        path = save_index(engine, tmp_path / "adaptive_engine.npz")
        loaded = load_engine(path)
        assert loaded.maintenance is not None
        # Shards never carry their own manager — refresh stays coordinated.
        assert all(shard.maintenance is None for shard in loaded.shards)
        restored = loaded.maintenance.monitor("x->y")
        assert restored.n_streamed == 200
        assert np.allclose(
            restored.state_vector(),
            engine.maintenance.monitor("x->y").state_vector(),
        )

    def test_wrapped_flat_adaptive_archive_promotes_manager_to_engine(
        self, tmp_path
    ):
        """``load_engine`` on a flat adaptive archive must move the
        monitors to the engine: a shard refreshing its own models would
        diverge from the groups the engine translates batch queries with."""
        index = COAXIndex(self._table(), config=self.CONFIG, groups=self.GROUPS)
        rng = np.random.default_rng(27)
        bx = rng.uniform(0.0, 100.0, size=300)
        index.insert_batch({"x": bx, "y": 2.0 * bx + 60.0})
        path = save_index(index, tmp_path / "flat_adaptive.npz")
        engine = load_engine(path)
        assert engine.maintenance is not None
        assert all(shard.maintenance is None for shard in engine.shards)
        # The restored monitor state came along with the promotion.
        assert engine.maintenance.monitor("x->y").n_streamed == 300
        # An engine-coordinated refresh fires and shards follow the
        # engine's groups — batch and scalar stay in lockstep.
        engine.compact()
        assert engine.maintenance.monitor("x->y").epoch >= 1
        for shard in engine.shards:
            assert shard.groups == engine.groups
        everything = Rectangle()
        assert np.array_equal(
            np.sort(engine.range_query(everything)),
            np.sort(engine.batch_range_query([everything])[0]),
        )

    def test_pre_v5_archive_loads_with_fresh_monitors(self, tmp_path):
        """A re-stamped v3 archive of an adaptive index loads: the config
        round-trips, the monitors just start from scratch."""
        index = COAXIndex(self._table(), config=self.CONFIG, groups=self.GROUPS)
        rng = np.random.default_rng(26)
        bx = rng.uniform(0.0, 100.0, size=150)
        index.insert_batch({"x": bx, "y": 2.0 * bx + 1.0})
        path = save_index(index, tmp_path / "v5.npz", layout="npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["format_version"] = 3
        arrays = {
            key: value
            for key, value in arrays.items()
            if not key.startswith("monitor::") and key != "__meta__"
        }
        arrays["__meta__"] = np.array(json.dumps(meta))
        legacy = tmp_path / "v3.npz"
        with legacy.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = load_index(legacy)
        assert loaded.maintenance is not None
        assert loaded.maintenance.monitor("x->y").n_streamed == 0
        assert loaded.n_pending == index.n_pending


class TestCSV:
    def test_round_trip(self, tmp_path):
        table = Table({"a": np.array([1.5, 2.5]), "b": np.array([-1.0, 4.0])})
        path = save_csv(table, tmp_path / "t.csv")
        loaded, encodings = load_csv(path)
        assert list(loaded.schema) == ["a", "b"]
        assert np.allclose(loaded.column("a"), table.column("a"))
        assert encodings == {"a": {}, "b": {}}

    def test_column_subset_and_max_rows(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,2,3\n4,5,6\n7,8,9\n")
        loaded, _ = load_csv(path, columns=["c", "a"], max_rows=2)
        assert list(loaded.schema) == ["c", "a"]
        assert loaded.n_rows == 2

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(KeyError):
            load_csv(path, columns=["zzz"])

    def test_string_columns_skipped_by_default(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("num,label\n1.0,apple\n2.0,pear\n")
        loaded, _ = load_csv(path)
        assert list(loaded.schema) == ["num"]

    def test_string_columns_encoded_on_request(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("num,label\n1.0,apple\n2.0,pear\n3.0,apple\n")
        loaded, encodings = load_csv(path, encode_strings=True)
        assert "label" in loaded.schema
        assert encodings["label"] == {"apple": 0.0, "pear": 1.0}
        assert loaded.column("label").tolist() == [0.0, 1.0, 0.0]

    def test_missing_values_imputed(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1.0\n\n3.0\nNA\n")
        loaded, _ = load_csv(path)
        assert loaded.n_rows == 3  # the fully empty line is skipped
        assert not np.any(np.isnan(loaded.column("a")))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_all_string_file_rejected_without_encoding(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("label\nx\ny\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_encode_categories_is_stable(self):
        assert encode_categories(["b", "a", "b"]) == {"a": 0.0, "b": 1.0}


class TestNPZ:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        table = Table({"x": rng.uniform(size=50), "y": rng.normal(size=50)})
        path = save_npz(table, tmp_path / "t.npz")
        loaded = load_npz(path)
        assert set(loaded.schema) == {"x", "y"}
        assert np.allclose(loaded.column("x"), table.column("x"))
