"""Tests for the benchmark CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, run_experiment


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.rows is None

    def test_options(self):
        args = build_parser().parse_args(["fig6", "--rows", "1000", "--queries", "5", "--seed", "2"])
        assert args.rows == 1000
        assert args.queries == 5
        assert args.seed == 2


class TestRunExperiment:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_table1_text(self):
        text = run_experiment("table1", rows=3_000)
        assert "Airline" in text and "OSM" in text
        assert "primary_ratio" in text

    def test_queries_parameter_forwarded(self):
        text = run_experiment("fig4", rows=3_000)
        assert "page_length_low" in text


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig8" in output

    def test_single_experiment(self, capsys):
        assert main(["table1", "--rows", "3000"]) == 0
        assert "Airline" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["bogus"]) == 2


class TestUpdateBench:
    def test_alias_resolves(self):
        text = run_experiment(
            "update-bench", rows=3_000, queries=4, inserts=4_000, batch_size=2_000
        )
        assert "insert_batch()" in text
        assert "incremental compact()" in text

    def test_insert_options_parsed(self):
        args = build_parser().parse_args(
            ["update-bench", "--inserts", "5000", "--batch-size", "1000"]
        )
        assert args.inserts == 5000
        assert args.batch_size == 1000


class TestQueryBench:
    def test_alias_resolves_in_smoke_mode(self):
        text = run_experiment("query-bench", rows=3_000, queries=32, smoke=True)
        assert "sequential" in text and "batch" in text
        assert "Airline" in text and "OSM" in text

    def test_options_parsed(self):
        args = build_parser().parse_args(
            ["query-bench", "--smoke", "--batch-sizes", "32", "64", "--export", "out.json"]
        )
        assert args.smoke is True
        assert args.batch_sizes == [32, 64]
        assert args.export == "out.json"

    def test_export_writes_json(self, tmp_path, capsys):
        target = tmp_path / "read.json"
        assert main(
            ["query-bench", "--rows", "3000", "--queries", "24", "--smoke",
             "--export", str(target)]
        ) == 0
        assert target.exists()
        import json

        payload = json.loads(target.read_text())
        assert payload["experiment"] == "read_path"
        assert payload["rows"]


class TestScaleBench:
    def test_alias_resolves_in_smoke_mode(self):
        text = run_experiment(
            "scale-bench",
            rows=3_000,
            queries=24,
            shards=[1, 2],
            workers=[1],
            smoke=True,
        )
        assert "ShardedCOAX" in text and "COAX (unsharded)" in text
        assert "crud" in text
        assert "shards_pruned_per_q" in text

    def test_options_parsed(self):
        args = build_parser().parse_args(
            ["scale-bench", "--smoke", "--shards", "1", "4", "--workers", "1", "2"]
        )
        assert args.smoke is True
        assert args.shards == [1, 4]
        assert args.workers == [1, 2]

    def test_export_writes_json(self, tmp_path):
        target = tmp_path / "scale.json"
        assert main(
            ["scale-bench", "--rows", "3000", "--queries", "16", "--smoke",
             "--shards", "1", "2", "--workers", "1", "--export", str(target)]
        ) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["experiment"] == "scale"
        assert payload["rows"]


class TestAggBench:
    def test_alias_registered(self):
        from repro.cli import COMMAND_ALIASES

        assert COMMAND_ALIASES["agg-bench"] == "agg"

    def test_options_parsed(self):
        args = build_parser().parse_args(
            ["agg-bench", "--smoke", "--rows", "8000", "--export", "agg.json"]
        )
        assert args.smoke is True
        assert args.rows == 8_000
        assert args.export == "agg.json"


class TestLayoutBench:
    def test_alias_registered(self):
        from repro.cli import COMMAND_ALIASES

        assert COMMAND_ALIASES["layout-bench"] == "layout"

    def test_options_parsed(self):
        args = build_parser().parse_args(
            ["layout-bench", "--smoke", "--rows", "200000",
             "--n-shards", "8", "--export", "layout.json"]
        )
        assert args.smoke is True
        assert args.rows == 200_000
        assert args.n_shards == 8
        assert args.export == "layout.json"
