"""The analyzer proves itself: every seeded violation is caught, exactly.

The fixture modules under ``fixtures/`` mark each line expected to
produce an UNWAIVED finding with a trailing ``# EXPECT[<pass-id>]``
comment.  The tests below parse those markers and assert the analyzer's
unwaived finding set matches them *exactly* — same pass id, same file,
same line, nothing extra — and that every ``repro-lint: allow`` waiver
with a reason suppresses its finding (reported as waived), while a
reasonless waiver suppresses nothing and is itself reported.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, Project
from repro.analysis.passes import ALL_PASSES

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*EXPECT\[([a-z-]+)\]")

#: The same pass implementations, pointed at the fixture tree.
FIXTURE_CONFIG = AnalysisConfig().with_overrides(
    mutation_methods={
        "BadEngine": (
            "insert",
            "insert_batch",
            "waived_insert",
            "delete_batch",
            "update_batch",
            "compact",
            "delete_rows",
        )
    },
    engine_classes=("BadEngine",),
    async_module_prefixes=("fixtures.serve_bad",),
    materialize_entry_points=(
        "fixtures.readpath_bad:batch_range_query",
        "fixtures.readpath_bad:batch_aggregate",
        "fixtures.readpath_bad:gone",
    ),
    materialize_stop_functions=("fixtures.readpath_bad:stopper",),
    raise_policy_prefixes=("fixtures.errors_bad",),
)


@pytest.fixture(scope="module")
def findings():
    project = Project.load(FIXTURES, package="fixtures", config=FIXTURE_CONFIG)
    return project.run(ALL_PASSES)


def _expected_markers():
    expected = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for pass_id in _EXPECT_RE.findall(line):
                expected.add((str(path), lineno, pass_id))
    return expected


def _line_of(path: Path, needle: str) -> int:
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


def test_unwaived_findings_match_expect_markers_exactly(findings):
    expected = _expected_markers()
    # Findings without an inline marker: the unresolvable entry point is
    # reported against line 1 of its module, and the reasonless waiver is
    # reported by the 'waiver' pseudo-pass at the comment's own line.
    readpath = FIXTURES / "readpath_bad.py"
    errors = FIXTURES / "errors_bad.py"
    expected.add((str(readpath), 1, "materialize"))
    reasonless_line = next(
        lineno
        for lineno, line in enumerate(errors.read_text().splitlines(), start=1)
        if line.strip() == "# repro-lint: allow[typed-errors]"
    )
    expected.add((str(errors), reasonless_line, "waiver"))
    actual = {
        (finding.file, finding.line, finding.pass_id)
        for finding in findings
        if not finding.waived
    }
    assert actual == expected


def test_every_pass_catches_something(findings):
    triggered = {finding.pass_id for finding in findings}
    assert {p.id for p in ALL_PASSES} <= triggered


def test_unresolvable_entry_point_is_reported(findings):
    rot = [
        finding
        for finding in findings
        if finding.pass_id == "materialize"
        and "does not resolve" in finding.message
    ]
    assert len(rot) == 1
    assert rot[0].symbol == "fixtures.readpath_bad:gone"


def test_reasoned_waivers_suppress_and_carry_their_reason(findings):
    engine = FIXTURES / "engine_bad.py"
    serve = FIXTURES / "serve_bad.py"
    readpath = FIXTURES / "readpath_bad.py"
    errors = FIXTURES / "errors_bad.py"
    waiver_note = "proves a reasoned waiver suppresses the finding"
    expected_waived = {
        # Standalone comment above the flagged statement.
        (str(engine), _line_of(engine, waiver_note) + 1, "lock-discipline"),
        # Trailing comments on the flagged line itself.
        (str(serve), _line_of(serve, waiver_note), "event-loop"),
        (str(readpath), _line_of(readpath, waiver_note), "materialize"),
        # Standalone comment above the except clause.
        (str(errors), _line_of(errors, waiver_note) + 1, "typed-errors"),
    }
    waived = {
        (finding.file, finding.line, finding.pass_id)
        for finding in findings
        if finding.waived
    }
    assert waived == expected_waived
    for finding in findings:
        if finding.waived:
            assert finding.waiver_reason


def test_stop_function_and_unreachable_code_are_not_checked(findings):
    readpath = str(FIXTURES / "readpath_bad.py")
    flagged_symbols = {
        finding.symbol
        for finding in findings
        if finding.file == readpath and finding.pass_id == "materialize"
    }
    assert "stopper" not in flagged_symbols
    assert "off_path" not in flagged_symbols


def test_waiver_for_wrong_pass_does_not_suppress():
    source = (
        "import numpy as np\n"
        "def batch_range_query(columns):\n"
        "    return np.ascontiguousarray(columns['x'])"
        "  # repro-lint: allow[event-loop] wrong pass id\n"
    )
    from repro.analysis.core import SourceModule

    module = SourceModule(Path("inline.py"), "fx.inline", source)
    project = Project(
        [module],
        config=AnalysisConfig().with_overrides(
            materialize_entry_points=("fx.inline:batch_range_query",),
            materialize_stop_functions=(),
        ),
    )
    results = project.run(ALL_PASSES)
    materialize = [f for f in results if f.pass_id == "materialize"]
    assert len(materialize) == 1
    assert not materialize[0].waived
