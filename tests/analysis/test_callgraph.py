"""Unit tests of the over-approximating project call graph."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.callgraph import CallGraph
from repro.analysis.core import Project, SourceModule


def _project(*named_sources):
    modules = [
        SourceModule(Path(f"{name.replace('.', '/')}.py"), name, source)
        for name, source in named_sources
    ]
    return Project(modules)


def test_local_and_from_import_calls_resolve():
    project = _project(
        (
            "pkg.a",
            "from pkg.b import helper\n"
            "def entry():\n"
            "    helper()\n"
            "    local()\n"
            "def local():\n"
            "    pass\n",
        ),
        ("pkg.b", "def helper():\n    pass\n"),
    )
    graph = CallGraph.build(project)
    entry = graph.resolve("pkg.a:entry")
    assert entry.callees == {"pkg.b:helper", "pkg.a:local"}


def test_attribute_calls_fan_out_by_simple_name():
    project = _project(
        (
            "pkg.a",
            "def entry(index):\n"
            "    return index.scan(1)\n",
        ),
        ("pkg.b", "class Grid:\n    def scan(self, q):\n        pass\n"),
        ("pkg.c", "class Flat:\n    def scan(self, q):\n        pass\n"),
    )
    graph = CallGraph.build(project)
    assert graph.resolve("pkg.a:entry").callees == {
        "pkg.b:Grid.scan",
        "pkg.c:Flat.scan",
    }


def test_external_module_alias_calls_are_skipped():
    project = _project(
        (
            "pkg.a",
            "import numpy as np\n"
            "import shutil\n"
            "def entry(x):\n"
            "    shutil.copy(x, x)\n"
            "    return np.copy(x)\n",
        ),
        ("pkg.b", "class Box:\n    def copy(self, a, b):\n        pass\n"),
    )
    graph = CallGraph.build(project)
    # np.copy / shutil.copy are external: the same-name method is NOT an edge.
    assert graph.resolve("pkg.a:entry").callees == set()


def test_nested_defs_fold_into_the_enclosing_function():
    project = _project(
        (
            "pkg.a",
            "def entry():\n"
            "    def run():\n"
            "        worker()\n"
            "    return run\n"
            "def worker():\n"
            "    pass\n",
        ),
    )
    graph = CallGraph.build(project)
    assert graph.resolve("pkg.a:entry").callees == {"pkg.a:worker"}


def test_reachability_with_stop_functions():
    project = _project(
        (
            "pkg.a",
            "def root():\n"
            "    mid()\n"
            "    stop()\n"
            "def mid():\n"
            "    leaf()\n"
            "def stop():\n"
            "    hidden()\n"
            "def hidden():\n"
            "    pass\n"
            "def leaf():\n"
            "    pass\n",
        ),
    )
    graph = CallGraph.build(project)
    reachable = graph.reachable_from(["pkg.a:root"])
    assert reachable == {
        "pkg.a:root",
        "pkg.a:mid",
        "pkg.a:stop",
        "pkg.a:hidden",
        "pkg.a:leaf",
    }
    pruned = graph.reachable_from(["pkg.a:root"], stop=["pkg.a:stop"])
    assert pruned == {"pkg.a:root", "pkg.a:mid", "pkg.a:leaf"}
