"""The repository itself lints clean — the acceptance gate, as a test.

Every contract the five passes encode is supposed to hold on the current
tree: any unwaived finding here means either a real violation slipped in
or a pass regressed into a false positive.  Both must fail CI.
"""

from __future__ import annotations

import json

from repro.analysis import run_lint
from repro.analysis.passes import ALL_PASSES
from repro.cli import main


def test_repo_has_zero_unwaived_findings():
    findings, report = run_lint()
    unwaived = [finding for finding in findings if not finding.waived]
    assert unwaived == [], "\n".join(f.render() for f in unwaived)
    assert report["counts"]["unwaived"] == 0


def test_every_waiver_in_the_tree_carries_a_reason():
    findings, _ = run_lint()
    for finding in findings:
        if finding.waived:
            assert finding.waiver_reason, finding.render()


def test_pass_registry_ids_are_unique_and_described():
    ids = [lint_pass.id for lint_pass in ALL_PASSES]
    assert len(ids) == len(set(ids))
    for lint_pass in ALL_PASSES:
        assert lint_pass.description


def test_cli_lint_exits_zero_and_exports_report(tmp_path, capsys):
    target = tmp_path / "repro_lint_findings.json"
    status = main(["lint", "--export", str(target)])
    assert status == 0
    out = capsys.readouterr().out
    assert "repro-lint:" in out
    report = json.loads(target.read_text())
    assert report["tool"] == "repro-lint"
    assert report["counts"]["unwaived"] == 0
    assert {entry["id"] for entry in report["passes"]} == {
        p.id for p in ALL_PASSES
    }
