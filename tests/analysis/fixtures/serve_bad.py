"""Seeded violations for the event-loop pass (see engine_bad.py docstring)."""

import asyncio
import time


async def blocking_handler(engine, lock, payload):
    time.sleep(0.01)  # EXPECT[event-loop]
    engine.insert_batch(payload)  # EXPECT[event-loop]
    lock.acquire()  # EXPECT[event-loop]
    handle = open("results.txt")  # EXPECT[event-loop]
    return handle


async def good_handler(loop, engine, alock, payload):
    # Executor handoff is the sanctioned route for blocking work.
    rows = await loop.run_in_executor(None, engine.batch_range_query, payload)
    await asyncio.sleep(0)
    await alock.acquire()  # awaited: an asyncio primitive, not blocking
    return rows


async def thread_handler(engine, payload):
    return await asyncio.to_thread(engine.batch_range_query, payload)


async def waived_handler(engine, payload):
    return engine.range_query(payload)  # repro-lint: allow[event-loop] fixture: proves a reasoned waiver suppresses the finding


def sync_helper(engine, payload):
    # Not an async def: blocking calls are the engine thread's job.
    time.sleep(0.01)
    return engine.batch_range_query(payload)


async def outer():
    def inner(engine, payload):
        # Nested sync def does not run on the loop by being defined here.
        return engine.batch_range_query(payload)

    return inner
