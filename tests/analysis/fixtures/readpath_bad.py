"""Seeded violations for the materialize pass (see engine_bad.py docstring)."""

import numpy as np


def batch_range_query(columns, ids):
    # The configured entry point: everything reachable from here is on
    # the read path.
    values = helper(columns)
    snapshot = stopper(columns)
    return values, snapshot


def helper(columns):
    col = np.asarray(columns["x"])  # EXPECT[materialize]
    out = col.copy()  # EXPECT[materialize]
    listy = out.tolist()  # EXPECT[materialize]
    contig = np.ascontiguousarray(out)  # EXPECT[materialize]
    bounds = ids_only(out)
    return contig, listy, bounds


def ids_only(out):
    small = out[:2].copy()  # repro-lint: allow[materialize] fixture: proves a reasoned waiver suppresses the finding
    return small


def batch_aggregate(columns, qids):
    # Aggregate-executor entry point: the fold must stay id-free, so a
    # materialization anywhere on this path is a finding too.
    partial = fold_runs(columns)
    return partial


def fold_runs(columns):
    gathered = np.ascontiguousarray(columns["value"])  # EXPECT[materialize]
    return gathered.tolist()  # EXPECT[materialize]


def stopper(columns):
    # Configured stop function: materializes by design, never checked.
    return np.ascontiguousarray(columns["x"])


def off_path(columns):
    # Never called from the entry point: not reachable, not checked.
    return np.ascontiguousarray(columns["x"])
