"""Seeded violations for the typed-errors pass (see engine_bad.py docstring)."""


class CustomError(RuntimeError):
    pass


def parse(data):
    try:
        return int(data)
    except:  # EXPECT[typed-errors]
        return 0


def swallow(fn):
    try:
        fn()
    except Exception:  # EXPECT[typed-errors]
        return None


def translate(fn):
    try:
        fn()
    except Exception as exc:  # re-raises: not a swallow
        raise CustomError("translated") from exc


def waived_swallow(fn):
    try:
        fn()
    # repro-lint: allow[typed-errors] fixture: proves a reasoned waiver suppresses the finding
    except Exception:
        return None


def reasonless(fn):
    try:
        fn()
    # repro-lint: allow[typed-errors]
    except Exception:  # EXPECT[typed-errors] (the reasonless waiver above suppresses nothing)
        return None


def entry(flag):
    if flag:
        raise RuntimeError("untyped")  # EXPECT[typed-errors]
    raise CustomError("typed")


def allowed_builtin(n):
    if n < 0:
        raise ValueError("n must be >= 0")
    raise NotImplementedError


def _private(flag):
    # Private helpers are outside the public raise policy.
    raise RuntimeError("internal")
