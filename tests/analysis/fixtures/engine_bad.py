"""Seeded violations for the lock-discipline and generation-bump passes.

Every line expected to produce an UNWAIVED finding carries a trailing
``# EXPECT[<pass-id>]`` marker; ``tests/analysis/test_fixtures.py``
parses the markers and asserts the finding set matches exactly
(pass id, file and line).  Lines with a ``repro-lint: allow`` waiver
must be reported as waived instead.
"""


class BadEngine:
    """Fixture engine: configured via mutation_methods/engine_classes."""

    def __init__(self):
        import threading

        self._write_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self.shards = []
        self.log = []

    # -- lock-discipline: entry points must lock first ------------------
    def insert_batch(self, rows):
        self.log.append(rows)  # EXPECT[lock-discipline]
        with self._write_lock:
            shard = self.shards[0]
            shard.insert_batch(rows)
            self._note_shard_mutation([0])
            return len(rows)

    def insert(self, row):
        # Delegation to another entry point satisfies the rule.
        return self.insert_batch([row])

    def waived_insert(self, rows):
        # repro-lint: allow[lock-discipline] fixture: proves a reasoned waiver suppresses the finding
        self.log.append(rows)
        return len(rows)

    # -- generation-bump: bump before the lock is released --------------
    def delete_batch(self, ids):
        with self._write_lock:
            shard = self.shards[0]
            shard.delete_batch(ids)  # EXPECT[generation-bump]

    def update_batch(self, ids):
        with self._write_lock:
            shard = self.shards[0]
            shard.update_batch(ids)
            self._note_shard_mutation([0])
            return len(ids)

    def compact(self, flag=True):
        with self._write_lock:
            shard = self.shards[0]
            shard.compact()
            if flag:  # EXPECT[generation-bump]
                self.log.append("compacted")
            else:
                self._note_shard_mutation([0])

    def delete_rows(self, ids):
        with self._write_lock:
            shard = self.shards[0]
            shard.delete_rows(ids)
            if not ids:
                return 0  # EXPECT[generation-bump]
            self._note_shard_mutation([0])
            return len(ids)

    # -- lock ordering --------------------------------------------------
    def inverted_stats(self):
        shard = self.shards[0]
        with self._stats_lock:
            with shard.write_lock:  # EXPECT[lock-discipline]
                return shard.n_rows

    def inverted_engine(self):
        shard = self.shards[0]
        with shard.write_lock:
            with self._write_lock:  # EXPECT[lock-discipline]
                return shard.n_rows

    def mutation_under_stats_lock(self):
        with self._stats_lock:
            return self.insert_batch([])  # EXPECT[lock-discipline]

    def correct_nesting(self):
        shard = self.shards[0]
        with self._write_lock:
            with self._write_lock:  # reentrant: same lock, no finding
                with shard.write_lock:
                    with self._stats_lock:
                        return shard.n_rows

    def _note_shard_mutation(self, shard_nos):
        self.log.append(shard_nos)
