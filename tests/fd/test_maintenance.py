"""Unit tests for drift-aware model maintenance (repro.fd.maintenance)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MaintenanceConfig
from repro.fd.groups import FDGroup
from repro.fd.maintenance import (
    REFIT,
    REMARGIN,
    REUSE,
    MaintenanceManager,
    ModelMonitor,
)
from repro.fd.model import LinearFDModel


MODEL = LinearFDModel(2.0, 0.0, 1.5, 1.5)


def make_monitor(baseline_outside=0.1, model=MODEL):
    return ModelMonitor("x->y", model, baseline_outside)


def make_manager(config=None, baseline=0.9):
    groups = [
        FDGroup(predictor="x", dependents=("y",), models={"y": MODEL})
    ]
    return MaintenanceManager(
        groups,
        config or MaintenanceConfig(enabled=True),
        {"x->y": baseline},
    ), groups


def stationary_batch(rng, n, model=MODEL, noise=0.5):
    x = rng.uniform(0.0, 100.0, size=n)
    y = model.predict(x) + rng.normal(0.0, noise, size=n)
    return x, y, model.within_margin(x, y)


class TestModelMonitor:
    def test_stationary_stream_decides_reuse(self):
        rng = np.random.default_rng(0)
        monitor = make_monitor(baseline_outside=0.0)
        config = MaintenanceConfig(enabled=True, min_observations=100)
        for _ in range(5):
            monitor.observe(*stationary_batch(rng, 200))
        decision = monitor.decide(config)
        assert decision.action == REUSE
        assert decision.n_streamed == 1_000
        assert abs(decision.drift) < 0.01
        assert decision.capacity_ratio > 0.9

    def test_too_few_observations_always_reuse(self):
        rng = np.random.default_rng(1)
        monitor = make_monitor()
        config = MaintenanceConfig(enabled=True, min_observations=500)
        x = rng.uniform(0.0, 100.0, size=100)
        y = np.zeros(100)  # everything outside the band
        monitor.observe(x, y, MODEL.within_margin(x, y))
        assert monitor.decide(config).action == REUSE

    def test_drifting_stream_triggers_remargin(self):
        """A residual walk drifting toward the band edge (but still inside)
        must be caught by the Equation-9 capacity trigger before it
        escapes — outside fraction alone would still look healthy."""
        rng = np.random.default_rng(2)
        monitor = make_monitor(baseline_outside=0.0)
        config = MaintenanceConfig(enabled=True, min_observations=100)
        n = 1_000
        x = rng.uniform(0.0, 100.0, size=n)
        # Residuals ramp from 0 toward +1.2 (band is +/-1.5): inside the
        # margins throughout, but clearly drifting.  The noise is tight so
        # the drift dominates the walk's volatility (Equation 9's
        # ``eps * d / sigma^2`` regime where the capacity collapses).
        residual = np.linspace(0.0, 1.2, n) + rng.normal(0.0, 0.02, size=n)
        y = MODEL.predict(x) + residual
        monitor.observe(x, y, MODEL.within_margin(x, y))
        decision = monitor.decide(config)
        assert decision.outside_fraction < config.remargin_outside_excess
        assert decision.capacity_ratio <= config.remargin_capacity_ratio
        assert decision.action == REMARGIN

    def test_widened_margins_only_grow(self):
        rng = np.random.default_rng(3)
        monitor = make_monitor()
        config = MaintenanceConfig(enabled=True)
        n = 500
        x = rng.uniform(0.0, 100.0, size=n)
        y = MODEL.predict(x) + np.linspace(0.0, 1.2, n)
        monitor.observe(x, y, MODEL.within_margin(x, y))
        widened = monitor.widened_model(config)
        assert widened.slope == MODEL.slope
        assert widened.intercept == MODEL.intercept
        assert widened.eps_ub >= MODEL.eps_ub
        assert widened.eps_lb >= MODEL.eps_lb

    def test_escaped_band_triggers_refit(self):
        rng = np.random.default_rng(4)
        monitor = make_monitor(baseline_outside=0.0)
        config = MaintenanceConfig(enabled=True, min_observations=100)
        shifted = LinearFDModel(2.0, 40.0, 1.5, 1.5)  # the stream's truth
        x = rng.uniform(0.0, 100.0, size=1_000)
        y = shifted.predict(x) + rng.normal(0.0, 0.5, size=1_000)
        monitor.observe(x, y, MODEL.within_margin(x, y))
        decision = monitor.decide(config)
        assert decision.outside_fraction > 0.9
        assert decision.action == REFIT

    def test_refitted_model_tracks_the_new_line(self):
        rng = np.random.default_rng(5)
        monitor = make_monitor(model=LinearFDModel(2.0, 0.0, 30.0, 30.0))
        config = MaintenanceConfig(enabled=True)
        truth = LinearFDModel(2.5, 10.0, 0.0, 0.0)
        x = rng.uniform(0.0, 100.0, size=2_000)
        y = truth.predict(x) + rng.normal(0.0, 1.0, size=2_000)
        monitor.observe(x, y, np.ones(len(x), dtype=bool))
        refitted = monitor.refitted_model(config)
        assert refitted.slope == pytest.approx(2.5, rel=0.05)
        assert refitted.intercept == pytest.approx(10.0, abs=2.0)
        assert refitted.eps_ub == pytest.approx(
            config.margin_sigmas * 1.0, rel=0.2
        )

    def test_mark_refreshed_starts_a_new_epoch(self):
        rng = np.random.default_rng(6)
        monitor = make_monitor()
        monitor.observe(*stationary_batch(rng, 100))
        assert monitor.n_streamed == 100
        monitor.mark_refreshed(MODEL)
        assert monitor.n_streamed == 0
        assert monitor.epoch == 1

    def test_state_round_trip(self):
        rng = np.random.default_rng(7)
        monitor = make_monitor()
        config = MaintenanceConfig(enabled=True, min_observations=10)
        x = rng.uniform(0.0, 100.0, size=300)
        y = MODEL.predict(x) + np.linspace(0.0, 1.0, 300)
        monitor.observe(x, y, MODEL.within_margin(x, y))
        restored = make_monitor()
        restored.load_state_vector(monitor.state_vector())
        assert restored.n_streamed == monitor.n_streamed
        assert restored.decide(config) == monitor.decide(config)
        assert np.allclose(
            restored.state_vector(), monitor.state_vector()
        )

    def test_state_vector_length_is_validated(self):
        monitor = make_monitor()
        with pytest.raises(ValueError):
            monitor.load_state_vector(np.zeros(3))


class TestMaintenanceManager:
    def test_observe_and_reuse(self):
        rng = np.random.default_rng(8)
        manager, groups = make_manager(
            MaintenanceConfig(enabled=True, min_observations=50)
        )
        x, y, mask = stationary_batch(rng, 200)
        manager.observe_batch({"x": x, "y": y}, {"x->y": mask})
        outcome = manager.refresh(groups)
        assert outcome.action == REUSE
        assert outcome.groups[0] is groups[0]  # untouched objects

    def test_refit_produces_new_groups_and_commit_resets_monitors(self):
        rng = np.random.default_rng(9)
        manager, groups = make_manager(
            MaintenanceConfig(enabled=True, min_observations=50)
        )
        shifted = LinearFDModel(2.0, 40.0, 1.5, 1.5)
        x = rng.uniform(0.0, 100.0, size=500)
        y = shifted.predict(x) + rng.normal(0.0, 0.5, size=500)
        manager.observe_batch(
            {"x": x, "y": y}, {"x->y": MODEL.within_margin(x, y)}
        )
        outcome = manager.refresh(groups)
        assert outcome.action == REFIT
        new_model = outcome.groups[0].model_for("y")
        assert new_model.intercept == pytest.approx(40.0, abs=3.0)
        # refresh() is pure: a failed re-partition must leave the monitors
        # (like the index) untouched, so nothing resets until commit().
        assert manager.monitor("x->y").n_streamed == 500
        assert manager.monitor("x->y").epoch == 0
        assert manager.monitor("x->y").model is MODEL
        manager.commit(outcome)
        assert manager.monitor("x->y").n_streamed == 0
        assert manager.monitor("x->y").epoch == 1
        # The refreshed model is what the monitor now watches.
        assert manager.monitor("x->y").model is new_model

    def test_commit_is_a_noop_for_reuse(self):
        rng = np.random.default_rng(19)
        manager, groups = make_manager(
            MaintenanceConfig(enabled=True, min_observations=50)
        )
        x, y, mask = stationary_batch(rng, 200)
        manager.observe_batch({"x": x, "y": y}, {"x->y": mask})
        outcome = manager.refresh(groups)
        assert outcome.action == REUSE
        manager.commit(outcome)
        assert manager.monitor("x->y").n_streamed == 200
        assert manager.monitor("x->y").epoch == 0

    def test_spline_models_are_left_alone(self):
        from repro.fd.model import SplineFDModel, SplineSegment

        spline = SplineFDModel(
            [SplineSegment(0.0, 100.0, 2.0, 0.0)], eps_lb=1.0, eps_ub=1.0
        )
        groups = [
            FDGroup(predictor="x", dependents=("y",), models={"y": spline})
        ]
        manager = MaintenanceManager(
            groups, MaintenanceConfig(enabled=True), {}
        )
        assert manager.model_names == ()
        assert manager.refresh(groups).action == REUSE

    def test_manager_state_round_trip(self):
        rng = np.random.default_rng(10)
        manager, groups = make_manager()
        x, y, mask = stationary_batch(rng, 150)
        manager.observe_batch({"x": x, "y": y}, {"x->y": mask})
        restored, _ = make_manager()
        restored.load_state(manager.state())
        assert restored.monitor("x->y").n_streamed == 150


class TestMaintenanceConfigValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            MaintenanceConfig(min_observations=1)
        with pytest.raises(ValueError):
            MaintenanceConfig(remargin_capacity_ratio=0.0)
        with pytest.raises(ValueError):
            MaintenanceConfig(update_band_factor=-1.0)
        with pytest.raises(ValueError):
            MaintenanceConfig(
                remargin_outside_excess=0.5, refit_outside_excess=0.1
            )
