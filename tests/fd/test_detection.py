"""Tests for soft-FD detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import Table
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig, detect_soft_fds, evaluate_pair


FAST = DetectionConfig(
    bucketing=BucketingConfig(sample_count=4_000, bucket_chunks=32),
    monte_carlo_rounds=4,
)


class TestDetectionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(margin_method="bogus")
        with pytest.raises(ValueError):
            DetectionConfig(margin_sigmas=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(target_coverage=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(min_inlier_fraction=1.5)
        with pytest.raises(ValueError):
            DetectionConfig(monte_carlo_rounds=0)


class TestEvaluatePair:
    def test_accepts_clean_linear_dependency(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 100.0, size=10_000)
        y = 2.5 * x + 10.0 + rng.normal(scale=1.0, size=10_000)
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST)
        assert candidate.accepted
        assert candidate.model.slope == pytest.approx(2.5, rel=0.05)
        assert candidate.inlier_fraction > 0.9
        assert 0.0 <= candidate.score <= 1.0

    def test_accepts_dependency_with_many_outliers(self):
        rng = np.random.default_rng(1)
        n = 10_000
        x = rng.uniform(0.0, 100.0, size=n)
        y = 2.0 * x + rng.normal(scale=0.5, size=n)
        outliers = rng.random(n) < 0.25
        y[outliers] = rng.uniform(y.min(), y.max(), size=int(outliers.sum()))
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST)
        assert candidate.accepted
        # Roughly the non-outlier fraction should sit inside the margins.
        assert 0.6 < candidate.inlier_fraction < 0.9

    def test_rejects_independent_attributes(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.0, 100.0, size=10_000)
        y = rng.uniform(0.0, 100.0, size=10_000)
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST)
        assert not candidate.accepted

    def test_rejects_constant_predictor(self):
        rng = np.random.default_rng(3)
        x = np.full(5_000, 3.0)
        y = rng.uniform(0.0, 100.0, size=5_000)
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST)
        assert not candidate.accepted

    def test_quantile_margin_method(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0.0, 100.0, size=8_000)
        y = 1.5 * x + rng.normal(scale=1.0, size=8_000)
        config = DetectionConfig(
            bucketing=FAST.bucketing, margin_method="quantile", target_coverage=0.9,
            monte_carlo_rounds=4,
        )
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=config)
        assert candidate.accepted
        assert candidate.inlier_fraction == pytest.approx(0.9, abs=0.05)

    def test_metrics_are_recorded_even_when_rejected(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(size=2_000)
        y = rng.uniform(size=2_000)
        candidate = evaluate_pair(x, y, predictor="a", dependent="b", config=FAST)
        assert candidate.predictor == "a"
        assert candidate.dependent == "b"
        assert candidate.relative_band >= 0.0
        assert candidate.slope_variation >= 0.0


class TestDetectSoftFDs:
    def test_finds_the_generating_dependency(self, small_linear_table):
        candidates = detect_soft_fds(small_linear_table, config=FAST)
        assert len(candidates) == 1
        pair = {candidates[0].predictor, candidates[0].dependent}
        assert pair == {"x", "y"}

    def test_detects_dependency_with_outliers(self, outlier_linear_table):
        candidates = detect_soft_fds(outlier_linear_table, config=FAST)
        assert len(candidates) == 1

    def test_no_false_positives_on_independent_data(self):
        rng = np.random.default_rng(6)
        table = Table(
            {
                "a": rng.uniform(size=5_000),
                "b": rng.normal(size=5_000),
                "c": rng.exponential(size=5_000),
            }
        )
        assert detect_soft_fds(table, config=FAST) == []

    def test_airline_groups_match_table1(self, airline_small):
        candidates = detect_soft_fds(airline_small, config=FAST)
        detected_pairs = {frozenset((c.predictor, c.dependent)) for c in candidates}
        # The distance/time group must be found.
        assert frozenset(("Distance", "AirTime")) in detected_pairs
        assert frozenset(("Distance", "TimeElapsed")) in detected_pairs
        # The departure/arrival group must be found.
        assert frozenset(("DepTime", "ArrTime")) in detected_pairs or frozenset(
            ("ArrTime", "ScheduledArrTime")
        ) in detected_pairs
        # Independent attributes must not show up.
        for candidate in candidates:
            assert "DayOfWeek" not in (candidate.predictor, candidate.dependent)
            assert "Carrier" not in (candidate.predictor, candidate.dependent)

    def test_osm_id_timestamp_detected(self, osm_small):
        candidates = detect_soft_fds(osm_small, config=FAST)
        detected_pairs = {frozenset((c.predictor, c.dependent)) for c in candidates}
        assert frozenset(("Id", "Timestamp")) in detected_pairs
        assert frozenset(("Latitude", "Longitude")) not in detected_pairs

    def test_columns_argument_restricts_search(self, airline_small):
        candidates = detect_soft_fds(
            airline_small, config=FAST, columns=("Distance", "DayOfWeek")
        )
        assert candidates == []

    def test_results_sorted_by_score(self, airline_small):
        candidates = detect_soft_fds(airline_small, config=FAST)
        scores = [candidate.score for candidate in candidates]
        assert scores == sorted(scores, reverse=True)
