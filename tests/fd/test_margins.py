"""Tests for margin estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fd.margins import estimate_margins, estimate_margins_robust, fixed_margins


class TestQuantileMargins:
    def test_coverage_target_met(self):
        rng = np.random.default_rng(0)
        residuals = rng.normal(0.0, 2.0, size=20_000)
        estimate = estimate_margins(residuals, target_coverage=0.9)
        assert estimate.coverage >= 0.88
        assert estimate.eps_lb > 0 and estimate.eps_ub > 0

    def test_symmetric_margins(self):
        rng = np.random.default_rng(1)
        residuals = rng.normal(0.0, 1.0, size=5_000)
        estimate = estimate_margins(residuals, target_coverage=0.95, symmetric=True)
        assert estimate.eps_lb == estimate.eps_ub

    def test_asymmetric_residuals_produce_asymmetric_margins(self):
        rng = np.random.default_rng(2)
        residuals = rng.exponential(scale=2.0, size=20_000)  # strictly positive
        estimate = estimate_margins(residuals, target_coverage=0.9)
        assert estimate.eps_ub > estimate.eps_lb

    def test_width(self):
        estimate = estimate_margins(np.array([-1.0, 0.0, 1.0]), target_coverage=1.0)
        assert estimate.width == pytest.approx(estimate.eps_lb + estimate.eps_ub)

    def test_empty_residuals(self):
        estimate = estimate_margins(np.array([]))
        assert estimate.eps_lb == 0.0 and estimate.eps_ub == 0.0

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            estimate_margins(np.arange(5.0), target_coverage=0.0)
        with pytest.raises(ValueError):
            estimate_margins(np.arange(5.0), target_coverage=1.5)


class TestRobustMargins:
    def test_ignores_heavy_outlier_contamination(self):
        rng = np.random.default_rng(3)
        clean = rng.normal(0.0, 1.0, size=8_000)
        outliers = rng.uniform(-500.0, 500.0, size=2_000)
        residuals = np.concatenate([clean, outliers])
        estimate = estimate_margins_robust(residuals, n_sigmas=3.0)
        # The margin should track the clean noise (sigma=1), not the outliers.
        assert estimate.eps_ub < 10.0
        # And it should still cover roughly the clean 80% of the data.
        assert 0.7 < estimate.coverage < 0.9

    def test_quantile_margins_blow_up_where_robust_does_not(self):
        rng = np.random.default_rng(4)
        clean = rng.normal(0.0, 1.0, size=7_000)
        outliers = rng.uniform(-500.0, 500.0, size=3_000)
        residuals = np.concatenate([clean, outliers])
        robust = estimate_margins_robust(residuals, n_sigmas=3.0)
        quantile = estimate_margins(residuals, target_coverage=0.9)
        assert quantile.width > 5.0 * robust.width

    def test_symmetric_flag(self):
        rng = np.random.default_rng(5)
        residuals = rng.normal(1.0, 1.0, size=5_000)  # off-centre residuals
        symmetric = estimate_margins_robust(residuals, symmetric=True)
        asymmetric = estimate_margins_robust(residuals, symmetric=False)
        assert symmetric.eps_lb == symmetric.eps_ub
        assert asymmetric.eps_ub > asymmetric.eps_lb

    def test_constant_residuals(self):
        estimate = estimate_margins_robust(np.zeros(100))
        assert estimate.eps_lb == 0.0 and estimate.eps_ub == 0.0
        assert estimate.coverage == 1.0

    def test_empty_and_invalid(self):
        assert estimate_margins_robust(np.array([])).width == 0.0
        with pytest.raises(ValueError):
            estimate_margins_robust(np.arange(5.0), n_sigmas=0.0)

    def test_larger_sigma_multiplier_widens_band(self):
        rng = np.random.default_rng(6)
        residuals = rng.normal(0.0, 1.0, size=5_000)
        narrow = estimate_margins_robust(residuals, n_sigmas=2.0)
        wide = estimate_margins_robust(residuals, n_sigmas=4.0)
        assert wide.width > narrow.width
        assert wide.coverage >= narrow.coverage


class TestFixedMargins:
    def test_symmetric_fixed(self):
        estimate = fixed_margins(3.5)
        assert estimate.eps_lb == estimate.eps_ub == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fixed_margins(-1.0)
