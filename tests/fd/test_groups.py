"""Tests for FD-group construction and predictor selection."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.fd.detection import FDCandidate
from repro.fd.groups import FDGroup, UnionFind, build_groups
from repro.fd.model import LinearFDModel


def make_candidate(
    predictor: str,
    dependent: str,
    *,
    accepted: bool = True,
    inlier_fraction: float = 0.9,
    relative_band: float = 0.05,
) -> FDCandidate:
    return FDCandidate(
        predictor=predictor,
        dependent=dependent,
        model=LinearFDModel(1.0, 0.0, 1.0, 1.0),
        inlier_fraction=inlier_fraction,
        relative_band=relative_band,
        slope_variation=0.01,
        accepted=accepted,
    )


def fit_any(predictor: str, dependent: str) -> Optional[FDCandidate]:
    """Pair fitter that always succeeds (used where chains must be completed)."""
    return make_candidate(predictor, dependent)


def fit_none(predictor: str, dependent: str) -> Optional[FDCandidate]:
    """Pair fitter that always fails."""
    return None


class TestUnionFind:
    def test_components(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        uf.add("e")
        components = {tuple(sorted(c)) for c in uf.components()}
        assert components == {("a", "b", "c", "d"), ("e",)}

    def test_find_is_idempotent(self):
        uf = UnionFind()
        uf.union("x", "y")
        assert uf.find("x") == uf.find("y")
        assert uf.find("x") == uf.find("x")


class TestFDGroup:
    def test_requires_models_for_all_dependents(self):
        with pytest.raises(ValueError):
            FDGroup(predictor="a", dependents=("b",), models={})

    def test_predictor_cannot_be_dependent(self):
        with pytest.raises(ValueError):
            FDGroup(
                predictor="a",
                dependents=("a",),
                models={"a": LinearFDModel(1.0, 0.0, 0.0, 0.0)},
            )

    def test_attributes_and_model_lookup(self):
        model = LinearFDModel(1.0, 0.0, 0.0, 0.0)
        group = FDGroup(predictor="a", dependents=("b",), models={"b": model})
        assert group.attributes == ("a", "b")
        assert group.n_attributes == 2
        assert group.model_for("b") is model
        with pytest.raises(KeyError):
            group.model_for("zzz")

    def test_memory_bytes(self):
        group = FDGroup(
            predictor="a",
            dependents=("b", "c"),
            models={
                "b": LinearFDModel(1.0, 0.0, 0.0, 0.0),
                "c": LinearFDModel(1.0, 0.0, 0.0, 0.0),
            },
        )
        assert group.memory_bytes() == 64


class TestBuildGroups:
    def test_single_pair(self):
        groups = build_groups([make_candidate("x", "y")], fit_none)
        assert len(groups) == 1
        assert groups[0].predictor == "x"
        assert groups[0].dependents == ("y",)

    def test_rejected_candidates_are_ignored(self):
        groups = build_groups([make_candidate("x", "y", accepted=False)], fit_any)
        assert groups == []

    def test_star_from_shared_predictor(self):
        candidates = [make_candidate("x", "y"), make_candidate("x", "z")]
        groups = build_groups(candidates, fit_none)
        assert len(groups) == 1
        assert groups[0].predictor == "x"
        assert set(groups[0].dependents) == {"y", "z"}

    def test_chain_is_completed_via_fit_pair(self):
        # a -> b and b -> c merge into one component; whichever predictor is
        # chosen, the missing model is requested from fit_pair.
        candidates = [make_candidate("a", "b"), make_candidate("b", "c")]
        groups = build_groups(candidates, fit_any)
        assert len(groups) == 1
        group = groups[0]
        assert group.n_attributes == 3
        assert set(group.attributes) == {"a", "b", "c"}

    def test_chain_without_refit_degrades_gracefully(self):
        # When the transitive model cannot be fitted, the group keeps only the
        # dependents reachable directly from the chosen predictor.
        candidates = [make_candidate("a", "b"), make_candidate("b", "c")]
        groups = build_groups(candidates, fit_none)
        assert len(groups) == 1
        group = groups[0]
        # Only directly-modelled dependents survive; the group never claims an
        # attribute it cannot actually predict.
        assert group.n_attributes == 2
        assert (group.predictor, group.dependents) in (("a", ("b",)), ("b", ("c",)))

    def test_two_independent_groups(self):
        candidates = [make_candidate("a", "b"), make_candidate("c", "d")]
        groups = build_groups(candidates, fit_none)
        assert len(groups) == 2
        predictors = {group.predictor for group in groups}
        assert predictors == {"a", "c"}

    def test_predictor_preference_for_coverage(self):
        # "hub" predicts two attributes directly; "b" predicts only one.
        candidates = [
            make_candidate("hub", "b", inlier_fraction=0.8),
            make_candidate("hub", "c", inlier_fraction=0.8),
            make_candidate("b", "c", inlier_fraction=0.99),
        ]
        groups = build_groups(candidates, fit_none)
        assert len(groups) == 1
        assert groups[0].predictor == "hub"

    def test_empty_input(self):
        assert build_groups([], fit_any) == []

    def test_groups_sorted_by_size(self):
        candidates = [
            make_candidate("a", "b"),
            make_candidate("c", "d"),
            make_candidate("c", "e"),
        ]
        groups = build_groups(candidates, fit_none)
        assert [group.n_attributes for group in groups] == [3, 2]
