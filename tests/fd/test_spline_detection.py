"""Tests for the non-linear (spline) soft-FD detection extension."""

from __future__ import annotations

import numpy as np

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig, evaluate_pair
from repro.fd.model import LinearFDModel, SplineFDModel


def nonlinear_pair(n: int = 8_000, seed: int = 0, noise: float = 2.0):
    """A V-shaped dependency no single line can model within a small margin."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 100.0, size=n)
    y = np.abs(x - 50.0) * 4.0 + rng.normal(0.0, noise, size=n)
    return x, y


FAST_SPLINE = DetectionConfig(
    bucketing=BucketingConfig(sample_count=4_000, bucket_chunks=32),
    monte_carlo_rounds=4,
    allow_spline=True,
)
FAST_LINEAR_ONLY = DetectionConfig(
    bucketing=BucketingConfig(sample_count=4_000, bucket_chunks=32),
    monte_carlo_rounds=4,
    allow_spline=False,
)


class TestSplineDetection:
    def test_linear_only_rejects_v_shape(self):
        x, y = nonlinear_pair()
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST_LINEAR_ONLY)
        assert not candidate.accepted

    def test_spline_accepts_v_shape(self):
        x, y = nonlinear_pair()
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST_SPLINE)
        assert candidate.accepted
        assert isinstance(candidate.model, SplineFDModel)
        assert candidate.model.n_segments >= 2
        assert candidate.inlier_fraction > 0.8
        assert candidate.relative_band < 0.35

    def test_linear_dependency_still_prefers_linear_model(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.0, 100.0, size=6_000)
        y = 3.0 * x + rng.normal(0.0, 1.0, size=6_000)
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST_SPLINE)
        assert candidate.accepted
        assert isinstance(candidate.model, LinearFDModel)

    def test_independent_attributes_still_rejected(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(size=5_000)
        y = rng.uniform(size=5_000)
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=FAST_SPLINE)
        assert not candidate.accepted

    def test_segment_cap_rejects_irregular_dependencies(self):
        x, y = nonlinear_pair(noise=0.5)
        config = DetectionConfig(
            bucketing=FAST_SPLINE.bucketing,
            monte_carlo_rounds=4,
            allow_spline=True,
            max_spline_segments=1,
        )
        candidate = evaluate_pair(x, y, predictor="x", dependent="y", config=config)
        assert not isinstance(candidate.model, SplineFDModel) or not candidate.accepted


class TestCOAXWithSplineGroups:
    def test_end_to_end_exactness_on_nonlinear_fd(self):
        x, y = nonlinear_pair(n=5_000, seed=3)
        rng = np.random.default_rng(4)
        z = rng.uniform(0.0, 10.0, size=5_000)
        table = Table({"x": x, "y": y, "z": z})
        config = COAXConfig(detection=FAST_SPLINE)
        index = COAXIndex(table, config=config)
        assert len(index.groups) == 1
        assert isinstance(index.groups[0].model_for("y"), SplineFDModel)
        # y is predicted, so only x and z are indexed.
        assert set(index.build_report.indexed_dimensions) == {"x", "z"}
        queries = [
            Rectangle({"y": Interval(0.0, 50.0)}),
            Rectangle({"x": Interval(20.0, 80.0), "y": Interval(20.0, 120.0)}),
            Rectangle({"y": Interval(100.0, 160.0), "z": Interval(2.0, 8.0)}),
        ]
        for query in queries:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_spline_group_keeps_most_rows_in_primary(self):
        x, y = nonlinear_pair(n=5_000, seed=5)
        table = Table({"x": x, "y": y})
        index = COAXIndex(table, config=COAXConfig(detection=FAST_SPLINE))
        assert index.primary_ratio > 0.8
