"""Tests for the Algorithm 1 bucketing / training-set construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fd.bucketing import BucketGrid, BucketingConfig, build_training_set


class TestBucketingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BucketingConfig(sample_count=0)
        with pytest.raises(ValueError):
            BucketingConfig(bucket_chunks=1)
        with pytest.raises(ValueError):
            BucketingConfig(cell_threshold=0)


class TestBucketGrid:
    def test_counts_cover_all_inserted_records(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 10.0, size=1_000)
        y = rng.uniform(0.0, 10.0, size=1_000)
        grid = BucketGrid.from_sample(x, y, bucket_chunks=8)
        assert grid.total_count == 1_000
        assert grid.shape == (8, 8)

    def test_incremental_insert(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.0, 10.0, size=500)
        y = rng.uniform(0.0, 10.0, size=500)
        grid = BucketGrid.from_sample(x, y, bucket_chunks=4)
        grid.insert(np.array([5.0]), np.array([5.0]))
        assert grid.total_count == 501

    def test_out_of_range_values_clamp_to_edge_cells(self):
        grid = BucketGrid(np.linspace(0.0, 1.0, 5), np.linspace(0.0, 1.0, 5))
        grid.insert(np.array([-10.0, 10.0]), np.array([-10.0, 10.0]))
        assert grid.counts[0, 0] == 1
        assert grid.counts[-1, -1] == 1

    def test_mismatched_lengths_rejected(self):
        grid = BucketGrid(np.linspace(0.0, 1.0, 3), np.linspace(0.0, 1.0, 3))
        with pytest.raises(ValueError):
            grid.insert(np.arange(3.0), np.arange(4.0))

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            BucketGrid(np.array([0.0]), np.array([0.0, 1.0]))

    def test_dense_cell_centres_for_linear_data(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.0, 100.0, size=20_000)
        y = 2.0 * x + rng.normal(scale=1.0, size=20_000)
        grid = BucketGrid.from_sample(x, y, bucket_chunks=32)
        cx, cy, weights = grid.dense_cell_centres(threshold=5)
        assert len(cx) == len(cy) == len(weights)
        assert len(cx) > 0
        # Dense-cell centres should themselves lie near the generating line.
        assert np.abs(cy - 2.0 * cx).max() < 15.0

    def test_dense_fraction(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0.0, 1.0, size=5_000)
        y = x + rng.normal(scale=0.1, size=5_000)
        grid = BucketGrid.from_sample(x, y, bucket_chunks=16)
        assert 0.0 < grid.dense_fraction(threshold=3) <= 1.0
        assert grid.dense_fraction(threshold=10**9) == 0.0

    def test_no_dense_cells(self):
        grid = BucketGrid(np.linspace(0, 1, 5), np.linspace(0, 1, 5))
        cx, cy, weights = grid.dense_cell_centres(threshold=1)
        assert len(cx) == 0

    def test_memory_bytes_positive(self):
        grid = BucketGrid(np.linspace(0, 1, 9), np.linspace(0, 1, 9))
        assert grid.memory_bytes() > 0

    def test_empty_insert_is_noop(self):
        grid = BucketGrid(np.linspace(0, 1, 5), np.linspace(0, 1, 5))
        grid.insert(np.array([]), np.array([]))
        assert grid.total_count == 0


class TestBuildTrainingSet:
    def test_weights_reflect_cell_counts(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0.0, 50.0, size=30_000)
        y = 3.0 * x + rng.normal(scale=0.5, size=30_000)
        config = BucketingConfig(sample_count=10_000, bucket_chunks=32, cell_threshold=3)
        x_train, y_train, weights, grid = build_training_set(x, y, config, rng)
        assert len(x_train) == len(y_train) == len(weights)
        # Training set is far smaller than the sample but carries its mass.
        assert len(x_train) < config.sample_count / 5
        assert weights.sum() <= config.sample_count

    def test_training_set_falls_back_to_sample_when_sparse(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 1.0, size=50)
        y = rng.uniform(0.0, 1.0, size=50)
        config = BucketingConfig(sample_count=50, bucket_chunks=64, cell_threshold=5)
        x_train, y_train, weights, _ = build_training_set(x, y, config, rng)
        assert len(x_train) == 50
        assert np.all(weights == 1.0)

    def test_empty_input(self):
        rng = np.random.default_rng(6)
        x_train, y_train, weights, _ = build_training_set(
            np.array([]), np.array([]), BucketingConfig(), rng
        )
        assert len(x_train) == 0

    def test_sampling_respects_sample_count(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, 10.0, size=5_000)
        y = x.copy()
        config = BucketingConfig(sample_count=500, bucket_chunks=16, cell_threshold=1)
        _, _, weights, grid = build_training_set(x, y, config, rng)
        assert grid.total_count == 500

    def test_mismatched_input_rejected(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            build_training_set(np.arange(3.0), np.arange(4.0), BucketingConfig(), rng)
