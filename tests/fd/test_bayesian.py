"""Tests for the conjugate Bayesian linear regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fd.bayesian import BayesianLinearRegression


class TestFit:
    def test_recovers_true_parameters(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 100.0, size=5_000)
        y = 3.0 * x + 7.0 + rng.normal(scale=2.0, size=5_000)
        posterior = BayesianLinearRegression().fit(x, y)
        assert posterior.slope == pytest.approx(3.0, abs=0.05)
        assert posterior.intercept == pytest.approx(7.0, abs=1.0)
        assert posterior.noise_std == pytest.approx(2.0, rel=0.2)

    def test_noise_free_data(self):
        x = np.linspace(0.0, 10.0, 200)
        posterior = BayesianLinearRegression().fit(x, -2.0 * x + 1.0)
        assert posterior.slope == pytest.approx(-2.0, abs=1e-6)
        # The weak Inverse-Gamma prior keeps a tiny residual noise estimate.
        assert posterior.noise_std == pytest.approx(0.0, abs=1e-2)

    def test_posterior_uncertainty_shrinks_with_data(self):
        rng = np.random.default_rng(1)
        x_small = rng.uniform(0, 10, size=20)
        x_large = rng.uniform(0, 10, size=20_000)
        noise_small = rng.normal(scale=1.0, size=20)
        noise_large = rng.normal(scale=1.0, size=20_000)
        small = BayesianLinearRegression().fit(x_small, 2 * x_small + noise_small)
        large = BayesianLinearRegression().fit(x_large, 2 * x_large + noise_large)
        assert large.slope_std < small.slope_std

    def test_empty_fit_returns_prior(self):
        posterior = BayesianLinearRegression().fit(np.array([]), np.array([]))
        assert posterior.n_observations == 0
        assert posterior.slope == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.arange(3.0), np.arange(4.0))


class TestWeights:
    def test_weighted_fit_equals_repeated_points(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 3.0, 5.0, 7.0])
        weights = np.array([1.0, 5.0, 1.0, 2.0])
        weighted = BayesianLinearRegression().fit(x, y, weights)
        repeated_x = np.repeat(x, weights.astype(int))
        repeated_y = np.repeat(y, weights.astype(int))
        repeated = BayesianLinearRegression().fit(repeated_x, repeated_y)
        assert weighted.slope == pytest.approx(repeated.slope, abs=1e-9)
        assert weighted.intercept == pytest.approx(repeated.intercept, abs=1e-9)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.arange(3.0), np.arange(3.0), np.array([1.0, -1.0, 1.0]))

    def test_weight_shape_mismatch(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.arange(3.0), np.arange(3.0), np.ones(4))


class TestIncrementalUpdate:
    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 50, size=2_000)
        y = 1.5 * x - 4.0 + rng.normal(scale=1.0, size=2_000)
        batch = BayesianLinearRegression().fit(x, y)
        incremental_model = BayesianLinearRegression()
        for start in range(0, 2_000, 250):
            incremental_model.update(x[start : start + 250], y[start : start + 250])
        incremental = incremental_model.posterior()
        assert incremental.slope == pytest.approx(batch.slope, abs=1e-9)
        assert incremental.intercept == pytest.approx(batch.intercept, abs=1e-9)
        assert incremental.n_observations == batch.n_observations

    def test_update_returns_self_for_chaining(self):
        model = BayesianLinearRegression()
        assert model.update(np.arange(3.0), np.arange(3.0)) is model

    def test_update_with_empty_batch_is_noop(self):
        model = BayesianLinearRegression()
        model.update(np.arange(5.0), 2 * np.arange(5.0))
        before = model.posterior()
        model.update(np.array([]), np.array([]))
        after = model.posterior()
        assert before.slope == after.slope
        assert before.n_observations == after.n_observations

    def test_reset_restores_prior(self):
        model = BayesianLinearRegression()
        model.update(np.arange(10.0), np.arange(10.0) * 2.0)
        model.reset()
        assert model.n_observations == 0


class TestPrediction:
    def test_predict_uses_posterior_mean(self):
        x = np.linspace(0.0, 10.0, 100)
        model = BayesianLinearRegression()
        model.fit(x, 4.0 * x + 1.0)
        predictions = model.predict(np.array([0.0, 1.0]))
        assert predictions[0] == pytest.approx(1.0, abs=1e-3)
        assert predictions[1] == pytest.approx(5.0, abs=1e-3)

    def test_predictive_interval_contains_most_points(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0.0, 100.0, size=5_000)
        y = 2.0 * x + rng.normal(scale=3.0, size=5_000)
        model = BayesianLinearRegression()
        model.fit(x, y)
        low, high = model.predictive_interval(x, n_std=2.0)
        coverage = np.mean((y >= low) & (y <= high))
        assert coverage > 0.9


class TestPriorValidation:
    def test_invalid_prior_parameters(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression(prior_scale=0.0)
        with pytest.raises(ValueError):
            BayesianLinearRegression(prior_shape=0.0)
