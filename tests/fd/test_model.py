"""Tests for the linear and spline soft-FD models, including query translation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.predicates import Interval
from repro.fd.model import FDModel, LinearFDModel, SplineFDModel, SplineSegment

reasonable_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestLinearFDModelBasics:
    def test_prediction(self):
        model = LinearFDModel(slope=2.0, intercept=1.0, eps_lb=0.5, eps_ub=0.5)
        assert np.allclose(model.predict(np.array([0.0, 1.0, 2.0])), [1.0, 3.0, 5.0])

    def test_residuals_and_margin(self):
        model = LinearFDModel(slope=1.0, intercept=0.0, eps_lb=1.0, eps_ub=2.0)
        x = np.array([0.0, 0.0, 0.0, 0.0])
        y = np.array([-1.0, 2.0, -1.01, 2.01])
        assert model.within_margin(x, y).tolist() == [True, True, False, False]

    def test_negative_margins_rejected(self):
        with pytest.raises(ValueError):
            LinearFDModel(1.0, 0.0, -1.0, 0.0)

    def test_nan_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearFDModel(float("nan"), 0.0, 0.0, 0.0)

    def test_with_margins(self):
        model = LinearFDModel(1.0, 0.0, 0.0, 0.0).with_margins(2.0, 3.0)
        assert model.eps_lb == 2.0 and model.eps_ub == 3.0

    def test_memory_bytes(self):
        assert LinearFDModel(1.0, 0.0, 0.0, 0.0).memory_bytes() == 32

    def test_satisfies_protocol(self):
        assert isinstance(LinearFDModel(1.0, 0.0, 0.0, 0.0), FDModel)


class TestLinearTranslation:
    """Query translation must never exclude a record that satisfies the margins."""

    def test_dependent_interval_positive_slope(self):
        model = LinearFDModel(slope=2.0, intercept=0.0, eps_lb=1.0, eps_ub=1.0)
        band = model.dependent_interval(Interval(0.0, 10.0))
        assert band.low == pytest.approx(-1.0)
        assert band.high == pytest.approx(21.0)

    def test_predictor_interval_positive_slope(self):
        model = LinearFDModel(slope=2.0, intercept=0.0, eps_lb=1.0, eps_ub=1.0)
        translated = model.predictor_interval(Interval(10.0, 20.0))
        # Inliers with y in [10, 20] must have 2x in [9, 21] -> x in [4.5, 10.5].
        assert translated.low == pytest.approx(4.5)
        assert translated.high == pytest.approx(10.5)

    def test_predictor_interval_negative_slope_swaps_bounds(self):
        model = LinearFDModel(slope=-1.0, intercept=0.0, eps_lb=0.0, eps_ub=0.0)
        translated = model.predictor_interval(Interval(1.0, 2.0))
        assert translated.low == pytest.approx(-2.0)
        assert translated.high == pytest.approx(-1.0)

    def test_zero_slope_gives_unbounded_predictor_interval(self):
        model = LinearFDModel(slope=0.0, intercept=5.0, eps_lb=1.0, eps_ub=1.0)
        assert model.predictor_interval(Interval(0.0, 1.0)).is_unbounded

    def test_unbounded_query_side_stays_unbounded(self):
        model = LinearFDModel(slope=2.0, intercept=0.0, eps_lb=1.0, eps_ub=1.0)
        translated = model.predictor_interval(Interval(5.0, math.inf))
        assert translated.high == math.inf
        assert translated.low == pytest.approx((5.0 - 1.0) / 2.0)

    def test_empty_query_interval_translates_to_empty(self):
        model = LinearFDModel(slope=1.0, intercept=0.0, eps_lb=0.0, eps_ub=0.0)
        assert model.predictor_interval(Interval.empty()).is_empty
        assert model.dependent_interval(Interval.empty()).is_empty

    @given(
        slope=st.floats(0.1, 50.0) | st.floats(-50.0, -0.1),
        intercept=reasonable_floats,
        eps_lb=st.floats(0.0, 100.0),
        eps_ub=st.floats(0.0, 100.0),
        x=reasonable_floats,
        noise=st.floats(-1.0, 1.0),
        y_low=reasonable_floats,
        y_width=st.floats(0.0, 1e3),
    )
    @settings(max_examples=200, deadline=None)
    def test_translation_never_loses_inliers(
        self, slope, intercept, eps_lb, eps_ub, x, noise, y_low, y_width
    ):
        """Any in-margin record whose y matches the query also matches the
        translated x constraint (the soundness property behind Equation 2)."""
        model = LinearFDModel(slope, intercept, eps_lb, eps_ub)
        # Construct a record inside the margin band.
        residual = noise * (eps_ub if noise >= 0 else eps_lb)
        y = slope * x + intercept + residual
        query = Interval(y_low, y_low + y_width)
        if not query.contains_value(y):
            return
        translated = model.predictor_interval(query)
        # Inverting the linear map divides by the slope, so allow the same
        # order of float tolerance the dependent-interval property uses.
        tolerance = 1e-6 * max(1.0, abs(x), abs(translated.low), abs(translated.high))
        assert translated.low - tolerance <= x <= translated.high + tolerance

    @given(
        slope=st.floats(0.1, 50.0) | st.floats(-50.0, -0.1),
        intercept=reasonable_floats,
        eps=st.floats(0.0, 100.0),
        x_low=reasonable_floats,
        x_width=st.floats(0.0, 1e3),
        position=st.floats(0.0, 1.0),
        noise=st.floats(-1.0, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_dependent_interval_covers_inliers(
        self, slope, intercept, eps, x_low, x_width, position, noise
    ):
        model = LinearFDModel(slope, intercept, eps, eps)
        x = x_low + position * x_width
        y = slope * x + intercept + noise * eps
        band = model.dependent_interval(Interval(x_low, x_low + x_width))
        assert band.low - 1e-6 <= y <= band.high + 1e-6


class TestSplineSegments:
    def test_overlapping_segments_rejected(self):
        segments = [
            SplineSegment(0.0, 10.0, 1.0, 0.0),
            SplineSegment(5.0, 15.0, 1.0, 0.0),
        ]
        with pytest.raises(ValueError):
            SplineFDModel(segments, 1.0, 1.0)

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            SplineFDModel([], 1.0, 1.0)

    def test_negative_margins_rejected(self):
        with pytest.raises(ValueError):
            SplineFDModel([SplineSegment(0, 1, 1, 0)], -1.0, 0.0)


class TestSplineFit:
    def test_single_segment_for_linear_data(self):
        x = np.linspace(0.0, 100.0, 2_000)
        y = 2.0 * x + 3.0
        spline = SplineFDModel.fit(x, y, epsilon=1.0)
        assert spline.n_segments == 1
        assert np.abs(spline.residuals(x, y)).max() < 1.0

    def test_piecewise_data_needs_multiple_segments(self):
        x = np.linspace(0.0, 100.0, 4_000)
        y = np.where(x < 50.0, 2.0 * x, 200.0 - 2.0 * (x - 50.0))
        spline = SplineFDModel.fit(x, y, epsilon=2.0)
        assert spline.n_segments >= 2
        assert float(np.mean(spline.within_margin(x, y))) > 0.95

    def test_smaller_epsilon_means_more_segments(self):
        rng = np.random.default_rng(0)
        x = np.sort(rng.uniform(0.0, 100.0, size=3_000))
        y = 0.05 * x**2 + rng.normal(scale=0.5, size=3_000)
        coarse = SplineFDModel.fit(x, y, epsilon=50.0)
        fine = SplineFDModel.fit(x, y, epsilon=5.0)
        assert fine.n_segments >= coarse.n_segments

    def test_validation(self):
        with pytest.raises(ValueError):
            SplineFDModel.fit(np.array([]), np.array([]), epsilon=1.0)
        with pytest.raises(ValueError):
            SplineFDModel.fit(np.arange(4.0), np.arange(4.0), epsilon=0.0)
        with pytest.raises(ValueError):
            SplineFDModel.fit(np.arange(4.0), np.arange(5.0), epsilon=1.0)

    def test_memory_grows_with_segments(self):
        x = np.linspace(0.0, 100.0, 2_000)
        y_linear = x.copy()
        y_bumpy = np.sin(x / 3.0) * 50.0
        linear = SplineFDModel.fit(x, y_linear, epsilon=1.0)
        bumpy = SplineFDModel.fit(x, y_bumpy, epsilon=1.0)
        assert bumpy.memory_bytes() > linear.memory_bytes()


class TestSplineTranslation:
    @pytest.fixture()
    def vshape(self):
        x = np.linspace(0.0, 100.0, 4_000)
        y = np.where(x < 50.0, x, 100.0 - x) * 2.0
        return x, y, SplineFDModel.fit(x, y, epsilon=1.0)

    def test_within_margin_consistent_with_residuals(self, vshape):
        x, y, spline = vshape
        mask = spline.within_margin(x, y)
        residuals = spline.residuals(x, y)
        expected = (residuals >= -spline.eps_lb) & (residuals <= spline.eps_ub)
        assert np.array_equal(mask, expected)

    def test_predictor_interval_covers_matching_inliers(self, vshape):
        x, y, spline = vshape
        query = Interval(40.0, 60.0)
        translated = spline.predictor_interval(query)
        inliers = spline.within_margin(x, y)
        matching = inliers & (y >= query.low) & (y <= query.high)
        assert np.all(translated.contains(x[matching]))

    def test_dependent_interval_covers_inliers(self, vshape):
        x, y, spline = vshape
        x_query = Interval(20.0, 80.0)
        band = spline.dependent_interval(x_query)
        selected = (x >= x_query.low) & (x <= x_query.high) & spline.within_margin(x, y)
        assert np.all(band.contains(y[selected]))

    def test_extrapolation_outside_trained_span(self, vshape):
        _, _, spline = vshape
        band = spline.dependent_interval(Interval(150.0, 200.0))
        assert not band.is_empty

    def test_empty_intervals(self, vshape):
        _, _, spline = vshape
        assert spline.dependent_interval(Interval.empty()).is_empty
        assert spline.predictor_interval(Interval.empty()).is_empty

    def test_satisfies_protocol(self, vshape):
        _, _, spline = vshape
        assert isinstance(spline, FDModel)
