"""Shared fixtures for the test suite.

Fixtures build small datasets once per session so the several hundred tests
stay fast; tests that need different parameters construct their own data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.osm import OSMConfig, generate_osm_dataset
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.detection import DetectionConfig
from repro.fd.bucketing import BucketingConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_linear_table() -> Table:
    """A 2-column table with a clean linear soft FD y ~= 2x + 5."""
    generator = np.random.default_rng(0)
    x = generator.uniform(0.0, 100.0, size=3_000)
    y = 2.0 * x + 5.0 + generator.normal(0.0, 1.0, size=3_000)
    return Table({"x": x, "y": y})


@pytest.fixture(scope="session")
def outlier_linear_table() -> Table:
    """Linear soft FD with ~20% outliers drawn uniformly over the y range."""
    generator = np.random.default_rng(1)
    n = 4_000
    x = generator.uniform(0.0, 100.0, size=n)
    y = 2.0 * x + 5.0 + generator.normal(0.0, 1.0, size=n)
    outliers = generator.random(n) < 0.2
    y[outliers] = generator.uniform(y.min(), y.max(), size=int(outliers.sum()))
    return Table({"x": x, "y": y})


@pytest.fixture(scope="session")
def airline_small() -> Table:
    """Synthetic airline dataset at test scale."""
    table, _ = generate_airline_dataset(AirlineConfig(n_rows=6_000, seed=7))
    return table


@pytest.fixture(scope="session")
def osm_small() -> Table:
    """Synthetic OSM dataset at test scale."""
    table, _ = generate_osm_dataset(OSMConfig(n_rows=6_000, seed=11))
    return table


@pytest.fixture(scope="session")
def fast_detection_config() -> DetectionConfig:
    """Detection configuration tuned for small test datasets."""
    return DetectionConfig(
        bucketing=BucketingConfig(sample_count=3_000, bucket_chunks=32),
        monte_carlo_rounds=4,
    )


@pytest.fixture(scope="session")
def fast_coax_config(fast_detection_config: DetectionConfig) -> COAXConfig:
    """COAX configuration tuned for small test datasets."""
    return COAXConfig(detection=fast_detection_config, primary_cells_per_dim=4)


@pytest.fixture(scope="session")
def airline_coax(airline_small: Table, fast_coax_config: COAXConfig) -> COAXIndex:
    """A COAX index built once over the small airline dataset."""
    return COAXIndex(airline_small, config=fast_coax_config)


@pytest.fixture(scope="session")
def osm_coax(osm_small: Table, fast_coax_config: COAXConfig) -> COAXIndex:
    """A COAX index built once over the small OSM dataset."""
    return COAXIndex(osm_small, config=fast_coax_config)


def make_query(**bounds: tuple) -> Rectangle:
    """Helper used across tests: ``make_query(x=(0, 10), y=(5, 7))``."""
    return Rectangle({name: Interval(low, high) for name, (low, high) in bounds.items()})
