"""End-to-end integration tests across the whole pipeline.

These exercise the public API exactly the way the examples and benchmarks
do: generate a dataset, build COAX and the baselines, run a mixed workload,
and check exactness, the dimensionality reduction, and the memory story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    COAXIndex,
    FullScanIndex,
    Interval,
    Rectangle,
    RTreeIndex,
    UniformGridIndex,
    WorkloadConfig,
    generate_airline_dataset,
    generate_knn_queries,
    generate_osm_dataset,
    generate_point_queries,
)
from repro.data.airline import AirlineConfig
from repro.data.osm import OSMConfig


class TestPublicAPIEndToEnd:
    def test_airline_pipeline(self, fast_coax_config):
        table, _ = generate_airline_dataset(AirlineConfig(n_rows=8_000, seed=17))
        coax = COAXIndex(table, config=fast_coax_config)
        baselines = [
            FullScanIndex(table),
            UniformGridIndex(table, cells_per_dim=4),
            RTreeIndex(table, node_capacity=10),
        ]
        range_queries = generate_knn_queries(
            table, WorkloadConfig(n_queries=12, k_neighbours=150, seed=2)
        )
        point_queries = generate_point_queries(table, WorkloadConfig(n_queries=12, seed=3))
        for query in list(range_queries) + list(point_queries):
            expected = table.select(query)
            assert np.array_equal(np.sort(coax.range_query(query)), expected)
            for baseline in baselines:
                assert np.array_equal(np.sort(baseline.range_query(query)), expected)
        # The dimensionality-reduction and memory claims hold end to end.
        assert len(coax.build_report.indexed_dimensions) < table.n_dims
        assert coax.directory_bytes() < RTreeIndex(table, node_capacity=10).directory_bytes()

    def test_osm_pipeline(self, fast_coax_config):
        table, _ = generate_osm_dataset(OSMConfig(n_rows=8_000, seed=19))
        coax = COAXIndex(table, config=fast_coax_config)
        assert any(set(group.attributes) == {"Id", "Timestamp"} for group in coax.groups)
        queries = generate_knn_queries(table, WorkloadConfig(n_queries=12, k_neighbours=150, seed=4))
        for query in queries:
            assert np.array_equal(np.sort(coax.range_query(query)), table.select(query))

    def test_mixed_query_shapes(self, airline_coax, airline_small):
        """Partial constraints, one-sided ranges and predicted-only queries."""
        queries = [
            Rectangle({"Distance": Interval(1_000.0, float("inf"))}),
            Rectangle({"AirTime": Interval(float("-inf"), 90.0)}),
            Rectangle({"TimeElapsed": Interval(100.0, 200.0), "DayOfWeek": Interval(2.0, 4.0)}),
            Rectangle({"ArrTime": Interval(600.0, 660.0), "Distance": Interval(200.0, 900.0)}),
            Rectangle.unconstrained(),
        ]
        for query in queries:
            assert np.array_equal(
                np.sort(airline_coax.range_query(query)), airline_small.select(query)
            )

    def test_insert_then_compact_end_to_end(self, fast_coax_config):
        table, _ = generate_airline_dataset(AirlineConfig(n_rows=4_000, seed=23))
        index = COAXIndex(table, config=fast_coax_config)
        new_flight = {name: float(table.column(name)[0]) for name in table.schema}
        new_flight["Distance"] = 750.0
        new_flight["AirTime"] = 120.0
        row_id = index.insert(new_flight)
        hits = index.range_query(
            Rectangle({"Distance": Interval(749.0, 751.0), "AirTime": Interval(119.0, 121.0)})
        )
        assert row_id in hits
        compacted = index.compact()
        hits_after = compacted.range_query(
            Rectangle({"Distance": Interval(749.0, 751.0), "AirTime": Interval(119.0, 121.0)})
        )
        assert len(hits_after) >= 1


class TestCrossIndexAgreementOnWorkloads:
    @pytest.mark.parametrize("seed", [101, 202])
    def test_all_structures_agree(self, seed, fast_coax_config):
        table, _ = generate_osm_dataset(OSMConfig(n_rows=5_000, seed=seed))
        indexes = {
            "coax": COAXIndex(table, config=fast_coax_config),
            "grid": UniformGridIndex(table, cells_per_dim=6),
            "rtree": RTreeIndex(table, node_capacity=12),
            "scan": FullScanIndex(table),
        }
        workload = generate_knn_queries(table, WorkloadConfig(n_queries=10, k_neighbours=80, seed=seed))
        for query in workload:
            results = {
                name: np.sort(index.range_query(query)) for name, index in indexes.items()
            }
            reference = results.pop("scan")
            for name, result in results.items():
                assert np.array_equal(result, reference), name
