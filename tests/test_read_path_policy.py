"""Lint-level guard on the batch read path (format-v6 satellite).

Mapped columns must *stream* through the batch kernels: a wholesale
``np.ascontiguousarray`` or ``.copy()`` on a column-sized array anywhere in
the batch read path would silently materialise the backing file and defeat
the larger-than-RAM story that the v6 columnar layout exists to provide.

This is a source-level check over the exact functions that make up that
path -- the grid scatter kernels, the COAX batch entry points, the sharded
dispatch (thread and process flavours), and the v6 restore path that wires
mapped columns into live indexes.  The behavioural twin of this test (a
monkeypatched ``np.asarray`` guard over a live mmap-backed index) lives in
``tests/test_io.py::TestColumnarZeroCopy``.

Copies on *small derived* arrays (per-cell run bounds in
``kernels.segment_bisect``, compaction buffers, build-time id maps) are
fine and deliberately out of scope: the banned tokens are checked only in
the functions below, all of which handle column-sized data directly.
"""

from __future__ import annotations

import inspect

import pytest

from repro.core import engine as engine_mod
from repro.core.coax import COAXIndex
from repro.core.engine import ShardedCOAX
from repro.indexes.grid_file import SortedCellGridIndex
from repro.io import persistence


READ_PATH_FUNCTIONS = [
    SortedCellGridIndex.batch_range_query_flat,
    SortedCellGridIndex.batch_flat_from_bounds,
    SortedCellGridIndex._batch_positions_from_bounds,
    COAXIndex.batch_range_query,
    COAXIndex.batch_scatter_flat,
    ShardedCOAX.batch_range_query,
    ShardedCOAX._batch_range_query_locked,
    ShardedCOAX._scatter_processes,
    engine_mod._scatter_worker,
    persistence._read_columnar,
    persistence._restore_grid,
    persistence._restore_structured_index,
]

BANNED_TOKENS = ("ascontiguousarray", ".copy()")


@pytest.mark.parametrize(
    "func", READ_PATH_FUNCTIONS, ids=lambda f: f.__qualname__
)
def test_batch_read_path_never_materialises_columns(func):
    source = inspect.getsource(func)
    for token in BANNED_TOKENS:
        assert token not in source, (
            f"{func.__qualname__} contains '{token}': the batch read path "
            "must not materialise whole mapped columns -- slice or index "
            "into the mapped array instead"
        )


def test_read_path_functions_still_exist():
    # Guard against silent renames hollowing out the parametrised check.
    names = {f.__qualname__ for f in READ_PATH_FUNCTIONS}
    assert len(names) == len(READ_PATH_FUNCTIONS)
