"""Regression tests for the cached row-id -> position lookup.

``MultidimensionalIndex.positions_of`` caches a sorted ordering of the
covered row ids; every path that changes the covered row set
(``_append_rows``, and any future absorb/merge path) must invalidate it
through ``_invalidate_row_lookup``.  The hazard these tests pin down:
query first (building the cache), then absorb new rows, then query again —
a stale cache would silently map row ids to positions of the *old* row
set and return wrong (or missing) rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig
from repro.indexes.grid_file import SortedCellGridIndex


def make_table(n: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=n),
            "b": rng.normal(0.0, 10.0, size=n),
        }
    )


class TestGridAbsorbInvalidatesLookup:
    def test_query_absorb_query(self):
        table = make_table(300)
        index = SortedCellGridIndex(table, cells_per_dim=4)
        query = Rectangle({"a": Interval(10.0, 90.0)})

        # 1. Query and map ids to positions: both build the cached lookup.
        before = index.range_query(query)
        positions = index.positions_of(before)
        assert np.array_equal(np.sort(index.row_ids[positions]), np.sort(before))

        # 2. Absorb new rows (the PR 1 incremental-compaction path).
        extra = make_table(80, seed=1)
        combined = table.concat(extra)
        new_ids = np.arange(300, 380, dtype=np.int64)
        index.absorb_rows(combined, new_ids)

        # 3. Query again: the lookup must have been rebuilt over the grown
        # row set — new ids resolve, and resolved positions round-trip.
        after = index.range_query(query)
        assert np.array_equal(np.sort(after), combined.select(query))
        positions = index.positions_of(new_ids)
        assert len(positions) == len(new_ids)
        assert np.array_equal(np.sort(index.row_ids[positions]), new_ids)

    def test_invalidation_happens_before_mutation(self):
        """A failing absorb must not leave a stale cache behind."""
        table = make_table(100)
        index = SortedCellGridIndex(table, cells_per_dim=4)
        index.positions_of(np.array([3, 7], dtype=np.int64))  # warm the cache
        bad_table = Table({"a": table.column("a"), "b": table.column("b")})
        with pytest.raises(IndexError):
            # Row ids beyond the new table's length blow up mid-append.
            index._append_rows(bad_table, np.arange(500, 520, dtype=np.int64))
        assert index._row_id_order is None
        assert index._sorted_row_ids is None


class TestCOAXCompactInvalidatesLookup:
    def test_query_insert_compact_query(self):
        rng = np.random.default_rng(5)
        n = 1_500
        x = rng.uniform(0.0, 200.0, size=n)
        y = 1.3 * x + rng.normal(scale=1.0, size=n)
        table = Table({"x": x, "y": y})
        config = COAXConfig(
            detection=DetectionConfig(
                bucketing=BucketingConfig(sample_count=n), monte_carlo_rounds=2
            )
        )
        index = COAXIndex(table, config=config)
        query = Rectangle({"x": Interval(20.0, 150.0)})

        # Warm the cached lookup through the positions-contract path.
        positions = index._range_query_positions(query)
        assert np.array_equal(
            np.sort(index.row_ids[positions]), table.select(query)
        )

        # Insert and compact: the covered row set grows in place.
        k = 200
        nx = rng.uniform(0.0, 200.0, size=k)
        index.insert_batch({"x": nx, "y": 1.3 * nx + rng.normal(scale=1.0, size=k)})
        index.compact()

        combined = Table(
            {"x": np.concatenate([x, nx]), "y": index.table.column("y")}
        )
        positions = index._range_query_positions(query)
        assert np.array_equal(
            np.sort(index.row_ids[positions]), combined.select(query)
        )
