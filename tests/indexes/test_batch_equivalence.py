"""Batch-vs-sequential equivalence of the read path.

The batch execution kernels must be a pure optimisation: for every
registered index, ``batch_range_query(queries)`` has to return exactly
``[range_query(q) for q in queries]`` — same row ids, same order, query by
query — and leave the same work statistics behind.  Hypothesis drives the
property over random tables and workloads; dedicated tests pin the edge
cases (empty query, empty batch, empty index) and COAX with pending delta
rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig
from repro.indexes.base import available_indexes, create_index


def build_registered_indexes(table: Table):
    """One instance of every registered index type over ``table``.

    COAX is built with a detection configuration cheap enough for
    property-test scale; every other index uses light default parameters.
    """
    kwargs_by_name = {
        "coax": {
            "config": COAXConfig(
                detection=DetectionConfig(
                    bucketing=BucketingConfig(sample_count=min(table.n_rows, 500)),
                    monte_carlo_rounds=2,
                )
            )
        },
        "uniform_grid": {"cells_per_dim": 4},
        "sorted_cell_grid": {"cells_per_dim": 4},
        "column_files": {"cells_per_dim": 4},
        "rtree": {"node_capacity": 6},
    }
    return [
        create_index(name, table, **kwargs_by_name.get(name, {}))
        for name in available_indexes()
    ]


def assert_batch_matches_sequential(index, queries):
    """The core property, including statistics parity."""
    index.stats.reset()
    sequential = [index.range_query(query) for query in queries]
    seq_stats = (
        index.stats.queries,
        index.stats.rows_examined,
        index.stats.rows_matched,
        index.stats.cells_visited,
    )
    index.stats.reset()
    batch = index.batch_range_query(queries)
    batch_stats = (
        index.stats.queries,
        index.stats.rows_examined,
        index.stats.rows_matched,
        index.stats.cells_visited,
    )
    assert len(batch) == len(sequential), type(index).__name__
    for position, (left, right) in enumerate(zip(sequential, batch)):
        assert np.array_equal(left, right), (type(index).__name__, position)
    assert seq_stats == batch_stats, type(index).__name__


@st.composite
def tables_and_workloads(draw):
    """A random 2-3 column table plus a random mixed workload."""
    n_rows = draw(st.integers(min_value=1, max_value=250))
    n_cols = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    names = [f"c{i}" for i in range(n_cols)]
    columns = {}
    for i, name in enumerate(names):
        kind = (seed + i) % 3
        if kind == 0:
            columns[name] = rng.uniform(-50.0, 50.0, size=n_rows)
        elif kind == 1:
            columns[name] = rng.normal(0.0, 10.0, size=n_rows)
        else:
            # Heavy ties stress the per-cell bisection boundaries.
            columns[name] = rng.integers(0, 4, size=n_rows).astype(float)
    table = Table(columns)
    n_queries = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(n_queries):
        intervals = {}
        for name in names:
            if draw(st.booleans()):
                low = draw(st.floats(-60.0, 60.0))
                width = draw(st.floats(-5.0, 60.0))  # negative width = empty
                intervals[name] = Interval(low, low + width)
        queries.append(Rectangle(intervals))
    return table, queries


class TestBatchEquivalenceProperty:
    @given(tables_and_workloads())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_registered_index(self, table_and_workload):
        table, queries = table_and_workload
        for index in build_registered_indexes(table):
            assert_batch_matches_sequential(index, queries)


class TestBatchEdgeCases:
    @pytest.fixture(scope="class")
    def table(self) -> Table:
        rng = np.random.default_rng(3)
        return Table(
            {
                "a": rng.uniform(0.0, 100.0, size=400),
                "b": rng.normal(0.0, 5.0, size=400),
                "c": rng.integers(0, 6, size=400).astype(float),
            }
        )

    def test_empty_batch(self, table):
        for index in build_registered_indexes(table):
            assert index.batch_range_query([]) == []

    def test_empty_and_unconstrained_queries(self, table):
        queries = [
            Rectangle({"a": Interval(5.0, 1.0)}),  # empty interval
            Rectangle(),  # matches everything
            Rectangle({"a": Interval(10.0, 60.0), "b": Interval(3.0, -3.0)}),
        ]
        for index in build_registered_indexes(table):
            assert_batch_matches_sequential(index, queries)

    def test_nan_polluted_column(self):
        """NaN data must keep the exact post-filter on both paths.

        A NaN in a grid column makes the quantile boundaries (and tracked
        axis spans) NaN; the vectorized pruning check must stay
        conservative under NaN — like the scalar path — or the batch path
        silently skips the post-filter and returns non-matching rows.
        """
        rng = np.random.default_rng(9)
        values = rng.uniform(0.0, 100.0, size=500)
        values[7] = np.nan
        table = Table({"a": values, "b": rng.uniform(0.0, 100.0, size=500)})
        queries = [
            Rectangle({"a": Interval(10.0, 20.0)}),
            Rectangle({"a": Interval(10.0, 20.0), "b": Interval(0.0, 50.0)}),
            Rectangle({"b": Interval(30.0, 60.0)}),
        ]
        for name in available_indexes():
            if name == "coax":
                continue  # COAX refuses to fit FD models over NaN data
            index = create_index(name, table)
            assert_batch_matches_sequential(index, queries)

    def test_empty_index(self, table):
        queries = [Rectangle({"a": Interval(0.0, 50.0)}), Rectangle()]
        no_rows = np.empty(0, dtype=np.int64)
        for name in available_indexes():
            if name == "coax":
                continue  # COAX needs build data for FD detection
            index = create_index(name, table, row_ids=no_rows)
            assert_batch_matches_sequential(index, queries)
            assert all(len(result) == 0 for result in index.batch_range_query(queries))


class TestCOAXWithPendingRows:
    """COAX equivalence with a populated delta store (scan_batch path)."""

    @pytest.fixture(scope="class")
    def coax(self) -> COAXIndex:
        rng = np.random.default_rng(11)
        n = 2_000
        x = rng.uniform(0.0, 300.0, size=n)
        y = 2.1 * x + rng.normal(scale=1.5, size=n)
        drift = rng.random(n) < 0.12
        y[drift] = rng.uniform(y.min(), y.max(), size=int(drift.sum()))
        z = rng.uniform(0.0, 8.0, size=n)
        config = COAXConfig(
            detection=DetectionConfig(
                bucketing=BucketingConfig(sample_count=2_000, bucket_chunks=32),
                monte_carlo_rounds=4,
            )
        )
        index = COAXIndex(Table({"x": x, "y": y, "z": z}), config=config)
        k = 300
        nx = rng.uniform(0.0, 300.0, size=k)
        ny = 2.1 * nx + rng.normal(scale=1.5, size=k)
        flip = rng.random(k) < 0.3
        ny[flip] = rng.uniform(y.min(), y.max(), size=int(flip.sum()))
        index.insert_batch({"x": nx, "y": ny, "z": rng.uniform(0.0, 8.0, size=k)})
        assert index.n_pending == k
        return index

    @given(
        x_low=st.floats(-30.0, 330.0),
        x_width=st.floats(-10.0, 200.0),
        y_low=st.floats(-50.0, 700.0),
        y_width=st.floats(0.0, 400.0),
        constrain_z=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_pending_rows_visible_on_both_paths(
        self, coax, x_low, x_width, y_low, y_width, constrain_z
    ):
        intervals = {
            "x": Interval(x_low, x_low + x_width),
            "y": Interval(y_low, y_low + y_width),
        }
        if constrain_z:
            intervals["z"] = Interval(1.0, 6.0)
        queries = [
            Rectangle(intervals),
            Rectangle({"x": Interval(x_low, x_low + x_width)}),
            Rectangle(),
        ]
        assert_batch_matches_sequential(coax, queries)
