"""Batch-vs-sequential equivalence of the read path — including CRUD.

The batch execution kernels must be a pure optimisation: for every
registered index, ``batch_range_query(queries)`` has to return exactly
``[range_query(q) for q in queries]`` — same row ids, same order, query by
query — and leave the same work statistics behind.  Hypothesis drives the
property over random tables and workloads; dedicated tests pin the edge
cases (empty query, empty batch, empty index) and COAX with pending delta
rows.

The CRUD property extends this to mutations: interleaved
insert/delete/update/query/compact sequences must stay bit-identical to a
delete-aware full scan for every registered index (tombstone deletes) and
for COAX with pending rows (full CRUD), before and after compaction and
across a format-v3 save/load round trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, MaintenanceConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel
from repro.indexes.base import available_indexes, create_index
from repro.io.persistence import load_index, save_index


def build_registered_indexes(table: Table):
    """One instance of every registered index type over ``table``.

    COAX is built with a detection configuration cheap enough for
    property-test scale; every other index uses light default parameters.
    """
    kwargs_by_name = {
        "coax": {
            "config": COAXConfig(
                detection=DetectionConfig(
                    bucketing=BucketingConfig(sample_count=min(table.n_rows, 500)),
                    monte_carlo_rounds=2,
                )
            )
        },
        "uniform_grid": {"cells_per_dim": 4},
        "sorted_cell_grid": {"cells_per_dim": 4},
        "column_files": {"cells_per_dim": 4},
        "rtree": {"node_capacity": 6},
    }
    return [
        create_index(name, table, **kwargs_by_name.get(name, {}))
        for name in available_indexes()
    ]


def assert_batch_matches_sequential(index, queries):
    """The core property, including statistics parity."""
    index.stats.reset()
    sequential = [index.range_query(query) for query in queries]
    seq_stats = (
        index.stats.queries,
        index.stats.rows_examined,
        index.stats.rows_matched,
        index.stats.cells_visited,
    )
    index.stats.reset()
    batch = index.batch_range_query(queries)
    batch_stats = (
        index.stats.queries,
        index.stats.rows_examined,
        index.stats.rows_matched,
        index.stats.cells_visited,
    )
    assert len(batch) == len(sequential), type(index).__name__
    for position, (left, right) in enumerate(zip(sequential, batch)):
        assert np.array_equal(left, right), (type(index).__name__, position)
    assert seq_stats == batch_stats, type(index).__name__


@st.composite
def tables_and_workloads(draw):
    """A random 2-3 column table plus a random mixed workload."""
    n_rows = draw(st.integers(min_value=1, max_value=250))
    n_cols = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    names = [f"c{i}" for i in range(n_cols)]
    columns = {}
    for i, name in enumerate(names):
        kind = (seed + i) % 3
        if kind == 0:
            columns[name] = rng.uniform(-50.0, 50.0, size=n_rows)
        elif kind == 1:
            columns[name] = rng.normal(0.0, 10.0, size=n_rows)
        else:
            # Heavy ties stress the per-cell bisection boundaries.
            columns[name] = rng.integers(0, 4, size=n_rows).astype(float)
    table = Table(columns)
    n_queries = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(n_queries):
        intervals = {}
        for name in names:
            if draw(st.booleans()):
                low = draw(st.floats(-60.0, 60.0))
                width = draw(st.floats(-5.0, 60.0))  # negative width = empty
                intervals[name] = Interval(low, low + width)
        queries.append(Rectangle(intervals))
    return table, queries


class TestBatchEquivalenceProperty:
    @given(tables_and_workloads())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_registered_index(self, table_and_workload):
        table, queries = table_and_workload
        for index in build_registered_indexes(table):
            assert_batch_matches_sequential(index, queries)


class TestBatchEdgeCases:
    @pytest.fixture(scope="class")
    def table(self) -> Table:
        rng = np.random.default_rng(3)
        return Table(
            {
                "a": rng.uniform(0.0, 100.0, size=400),
                "b": rng.normal(0.0, 5.0, size=400),
                "c": rng.integers(0, 6, size=400).astype(float),
            }
        )

    def test_empty_batch(self, table):
        for index in build_registered_indexes(table):
            assert index.batch_range_query([]) == []

    def test_empty_and_unconstrained_queries(self, table):
        queries = [
            Rectangle({"a": Interval(5.0, 1.0)}),  # empty interval
            Rectangle(),  # matches everything
            Rectangle({"a": Interval(10.0, 60.0), "b": Interval(3.0, -3.0)}),
        ]
        for index in build_registered_indexes(table):
            assert_batch_matches_sequential(index, queries)

    def test_nan_polluted_column(self):
        """NaN data must keep the exact post-filter on both paths.

        A NaN in a grid column makes the quantile boundaries (and tracked
        axis spans) NaN; the vectorized pruning check must stay
        conservative under NaN — like the scalar path — or the batch path
        silently skips the post-filter and returns non-matching rows.
        """
        rng = np.random.default_rng(9)
        values = rng.uniform(0.0, 100.0, size=500)
        values[7] = np.nan
        table = Table({"a": values, "b": rng.uniform(0.0, 100.0, size=500)})
        queries = [
            Rectangle({"a": Interval(10.0, 20.0)}),
            Rectangle({"a": Interval(10.0, 20.0), "b": Interval(0.0, 50.0)}),
            Rectangle({"b": Interval(30.0, 60.0)}),
        ]
        for name in available_indexes():
            if name == "coax":
                continue  # COAX refuses to fit FD models over NaN data
            index = create_index(name, table)
            assert_batch_matches_sequential(index, queries)

    def test_empty_index(self, table):
        queries = [Rectangle({"a": Interval(0.0, 50.0)}), Rectangle()]
        no_rows = np.empty(0, dtype=np.int64)
        for name in available_indexes():
            if name == "coax":
                continue  # COAX needs build data for FD detection
            index = create_index(name, table, row_ids=no_rows)
            assert_batch_matches_sequential(index, queries)
            assert all(len(result) == 0 for result in index.batch_range_query(queries))


class TestInterleavedDeletes:
    """Tombstone deletes on every registered index vs a delete-aware scan."""

    @given(tables_and_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_registered_index(self, table_and_workload, delete_seed):
        table, queries = table_and_workload
        rng = np.random.default_rng(delete_seed)
        indexes = build_registered_indexes(table)
        deleted: set = set()
        for _ in range(2):
            doomed = rng.choice(
                table.n_rows, size=max(1, table.n_rows // 4), replace=False
            ).astype(np.int64)
            deleted.update(int(i) for i in doomed)
            for index in indexes:
                index.delete_rows(doomed)
            for index in indexes:
                for query in queries:
                    expected = np.array(
                        sorted(set(table.select(query).tolist()) - deleted),
                        dtype=np.int64,
                    )
                    got = np.sort(index.range_query(query))
                    assert np.array_equal(got, expected), type(index).__name__
                # Batch execution must stay bit-identical (results and
                # stats) with tombstones in place.
                assert_batch_matches_sequential(index, queries)


def crud_reference_results(reference, query):
    """Row ids of the logical record store matching ``query`` (sorted)."""
    return np.array(
        sorted(
            row_id
            for row_id, record in reference.items()
            if all(
                query.interval(name).contains_value(value)
                for name, value in record.items()
            )
        ),
        dtype=np.int64,
    )


class TestInterleavedCRUDOnCOAX:
    """Full insert/delete/update/query/compact sequences on COAX.

    A logical record store (id -> values) is the ground truth; after every
    mutation round COAX must agree with it exactly — with pending rows,
    with tombstones, after compaction reclaims, and across a format-v3
    save/load round trip of the un-compacted CRUD state.
    """

    PROBES = [
        Rectangle({"x": Interval(10.0, 60.0)}),
        Rectangle({"y": Interval(30.0, 130.0)}),
        Rectangle({"x": Interval(0.0, 100.0), "y": Interval(-1e6, 1e6)}),
        Rectangle({"x": Interval(5.0, 1.0)}),
        Rectangle(),
    ]

    def check(self, index, reference):
        for query in self.PROBES:
            expected = crud_reference_results(reference, query)
            assert np.array_equal(np.sort(index.range_query(query)), expected)
        assert_batch_matches_sequential(index, self.PROBES)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        compact_rounds=st.sets(st.integers(min_value=0, max_value=2)),
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_interleaved_crud(self, seed, compact_rounds, tmp_path_factory):
        rng = np.random.default_rng(seed)
        n = 400
        x = rng.uniform(0.0, 100.0, size=n)
        y = 2.0 * x + rng.uniform(-1.0, 1.0, size=n)
        flip = rng.random(n) < 0.15
        y[flip] = rng.uniform(0.0, 250.0, size=int(flip.sum()))
        table = Table({"x": x, "y": y})
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
            )
        ]
        index = COAXIndex(table, groups=groups)
        reference = {
            i: {"x": float(x[i]), "y": float(y[i])} for i in range(n)
        }
        for round_no in range(3):
            # Insert a batch (some rows pending until the next compact).
            k = int(rng.integers(5, 60))
            bx = rng.uniform(0.0, 100.0, size=k)
            by = 2.0 * bx + rng.uniform(-10.0, 10.0, size=k)
            ids = index.insert_batch({"x": bx, "y": by})
            for j, row_id in enumerate(ids):
                reference[int(row_id)] = {"x": float(bx[j]), "y": float(by[j])}
            # Delete a random live subset (mixes main and pending rows).
            live = np.array(sorted(reference), dtype=np.int64)
            doomed = rng.choice(live, size=min(len(live), int(rng.integers(1, 50))), replace=False)
            assert index.delete_batch(doomed) == len(set(doomed.tolist()))
            for row_id in doomed:
                reference.pop(int(row_id))
            # Update a random live subset in place.
            live = np.array(sorted(reference), dtype=np.int64)
            targets = rng.choice(live, size=min(len(live), int(rng.integers(1, 30))), replace=False)
            targets = np.unique(targets)
            ux = rng.uniform(0.0, 100.0, size=len(targets))
            uy = 2.0 * ux + rng.uniform(-10.0, 10.0, size=len(targets))
            index.update_batch(targets, {"x": ux, "y": uy})
            for j, row_id in enumerate(targets):
                reference[int(row_id)] = {"x": float(ux[j]), "y": float(uy[j])}
            self.check(index, reference)
            if round_no in compact_rounds:
                index.compact()
                assert index.n_pending == 0 and index.n_tombstoned == 0
                self.check(index, reference)
        # Save/load round trip of the final (possibly un-compacted) state.
        path = tmp_path_factory.mktemp("crud") / "crud.coax.npz"
        loaded = load_index(save_index(index, path))
        self.check(loaded, reference)
        assert loaded.next_row_id == index.next_row_id
        loaded.compact()
        self.check(loaded, reference)
        index.compact()
        self.check(index, reference)


class TestDriftingStreamWithAdaptiveModels:
    """Interleaved CRUD under a drifting insert stream with model refresh.

    The adaptive-maintenance extension of the CRUD property: the insert
    stream's soft-FD intercept drifts every round, compaction refreshes
    the models (re-margin or refit + re-partition), and the results must
    stay bit-identical to the delete-aware logical store before and after
    every refresh — adaptivity changes routing and performance, never
    results.  A format-v5 round trip of the adapted state must restore
    both the refreshed models and the monitor state.
    """

    PROBES = [
        Rectangle({"x": Interval(10.0, 60.0)}),
        Rectangle({"y": Interval(30.0, 130.0)}),
        Rectangle({"y": Interval(150.0, 320.0)}),  # the drifted band
        Rectangle({"x": Interval(5.0, 1.0)}),
        Rectangle(),
    ]

    def check(self, index, reference):
        for query in self.PROBES:
            expected = crud_reference_results(reference, query)
            assert np.array_equal(np.sort(index.range_query(query)), expected)
        assert_batch_matches_sequential(index, self.PROBES)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_drifting_crud_with_refresh(self, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        n = 400
        x = rng.uniform(0.0, 100.0, size=n)
        y = 2.0 * x + rng.uniform(-1.0, 1.0, size=n)
        table = Table({"x": x, "y": y})
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
            )
        ]
        config = COAXConfig(
            maintenance=MaintenanceConfig(enabled=True, min_observations=50)
        )
        index = COAXIndex(table, config=config, groups=groups)
        assert index.maintenance is not None
        reference = {i: {"x": float(x[i]), "y": float(y[i])} for i in range(n)}
        for round_no in range(3):
            # Drifting insert batch: the intercept walks upward each round.
            shift = 40.0 * (round_no + 1)
            k = int(rng.integers(60, 120))
            bx = rng.uniform(0.0, 100.0, size=k)
            by = 2.0 * bx + shift + rng.uniform(-1.0, 1.0, size=k)
            ids = index.insert_batch({"x": bx, "y": by})
            for j, row_id in enumerate(ids):
                reference[int(row_id)] = {"x": float(bx[j]), "y": float(by[j])}
            # Delete and update random live subsets (delete-aware scan).
            live = np.array(sorted(reference), dtype=np.int64)
            doomed = rng.choice(
                live, size=min(len(live), int(rng.integers(1, 40))), replace=False
            )
            index.delete_batch(doomed)
            for row_id in doomed:
                reference.pop(int(row_id))
            live = np.array(sorted(reference), dtype=np.int64)
            targets = np.unique(
                rng.choice(
                    live, size=min(len(live), int(rng.integers(1, 20))), replace=False
                )
            )
            ux = rng.uniform(0.0, 100.0, size=len(targets))
            uy = 2.0 * ux + shift + rng.uniform(-1.0, 1.0, size=len(targets))
            index.update_batch(targets, {"x": ux, "y": uy})
            for j, row_id in enumerate(targets):
                reference[int(row_id)] = {"x": float(ux[j]), "y": float(uy[j])}
            # Identical results before the refresh ...
            self.check(index, reference)
            epoch_before = index.maintenance.monitor("x->y").epoch
            index.compact()  # maintenance decides (and usually refreshes) here
            # ... and after it.
            self.check(index, reference)
        # The drift was far beyond the margins: a refresh must have fired.
        monitor = index.maintenance.monitor("x->y")
        assert monitor.epoch >= 1
        assert epoch_before <= monitor.epoch
        # Format v5 round trip of the adapted state: refreshed models and
        # monitor statistics both survive.
        path = tmp_path_factory.mktemp("drift") / "adaptive.coax.npz"
        loaded = load_index(save_index(index, path))
        assert loaded.maintenance is not None
        restored = loaded.maintenance.monitor("x->y")
        assert restored.epoch == monitor.epoch
        assert np.allclose(restored.state_vector(), monitor.state_vector())
        assert loaded.groups[0].model_for("y") == index.groups[0].model_for("y")
        self.check(loaded, reference)
        loaded.compact()
        self.check(loaded, reference)


class TestCOAXWithPendingRows:
    """COAX equivalence with a populated delta store (scan_batch path)."""

    @pytest.fixture(scope="class")
    def coax(self) -> COAXIndex:
        rng = np.random.default_rng(11)
        n = 2_000
        x = rng.uniform(0.0, 300.0, size=n)
        y = 2.1 * x + rng.normal(scale=1.5, size=n)
        drift = rng.random(n) < 0.12
        y[drift] = rng.uniform(y.min(), y.max(), size=int(drift.sum()))
        z = rng.uniform(0.0, 8.0, size=n)
        config = COAXConfig(
            detection=DetectionConfig(
                bucketing=BucketingConfig(sample_count=2_000, bucket_chunks=32),
                monte_carlo_rounds=4,
            )
        )
        index = COAXIndex(Table({"x": x, "y": y, "z": z}), config=config)
        k = 300
        nx = rng.uniform(0.0, 300.0, size=k)
        ny = 2.1 * nx + rng.normal(scale=1.5, size=k)
        flip = rng.random(k) < 0.3
        ny[flip] = rng.uniform(y.min(), y.max(), size=int(flip.sum()))
        index.insert_batch({"x": nx, "y": ny, "z": rng.uniform(0.0, 8.0, size=k)})
        assert index.n_pending == k
        return index

    @given(
        x_low=st.floats(-30.0, 330.0),
        x_width=st.floats(-10.0, 200.0),
        y_low=st.floats(-50.0, 700.0),
        y_width=st.floats(0.0, 400.0),
        constrain_z=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_pending_rows_visible_on_both_paths(
        self, coax, x_low, x_width, y_low, y_width, constrain_z
    ):
        intervals = {
            "x": Interval(x_low, x_low + x_width),
            "y": Interval(y_low, y_low + y_width),
        }
        if constrain_z:
            intervals["z"] = Interval(1.0, 6.0)
        queries = [
            Rectangle(intervals),
            Rectangle({"x": Interval(x_low, x_low + x_width)}),
            Rectangle(),
        ]
        assert_batch_matches_sequential(coax, queries)
