"""Tests for the index base class contract, registry and the full-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.indexes.base import (
    IndexBuildError,
    QueryStats,
    available_indexes,
    create_index,
    register_index,
)
from repro.indexes.full_scan import FullScanIndex


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=2_000),
            "b": rng.uniform(0.0, 100.0, size=2_000),
        }
    )


class TestQueryStats:
    def test_record_and_reset(self):
        stats = QueryStats()
        stats.record(rows_examined=10, rows_matched=3, cells_visited=2)
        stats.record(rows_examined=20, rows_matched=5)
        assert stats.queries == 2
        assert stats.rows_examined == 30
        assert stats.mean_rows_examined == 15.0
        stats.reset()
        assert stats.queries == 0
        assert stats.mean_rows_examined == 0.0

    def test_merge_sums_every_counter(self):
        left = QueryStats(
            queries=2,
            rows_examined=10,
            rows_matched=3,
            cells_visited=4,
            nodes_visited=1,
            shards_pruned=2,
        )
        right = QueryStats(
            queries=1,
            rows_examined=5,
            rows_matched=2,
            cells_visited=6,
            nodes_visited=0,
            shards_pruned=3,
        )
        merged = left.merge(right)
        assert merged is left  # accumulates in place, returns self
        assert (left.queries, left.rows_examined, left.rows_matched) == (3, 15, 5)
        assert (left.cells_visited, left.nodes_visited, left.shards_pruned) == (10, 1, 5)
        # The other operand is untouched.
        assert right.queries == 1 and right.rows_examined == 5

    def test_merge_then_reset_clears_shards_pruned(self):
        stats = QueryStats()
        stats.merge(QueryStats(shards_pruned=7))
        stats.record(shards_pruned=1)
        assert stats.shards_pruned == 8
        stats.reset()
        assert stats.shards_pruned == 0

    def test_snapshot_is_an_independent_copy(self):
        stats = QueryStats()
        stats.record(rows_examined=10, rows_matched=3, shards_pruned=2)
        frozen = stats.snapshot()
        stats.record(rows_examined=20, rows_matched=5)
        # The snapshot keeps the values at capture time...
        assert frozen.queries == 1
        assert frozen.rows_examined == 10
        assert frozen.shards_pruned == 2
        # ...while the live counters kept accumulating.
        assert stats.queries == 2
        assert stats.rows_examined == 30

    def test_delta_windows_the_counters(self):
        stats = QueryStats()
        stats.record(rows_examined=10, rows_matched=3, cells_visited=4)
        before = stats.snapshot()
        stats.record(rows_examined=20, rows_matched=5, shards_pruned=6)
        stats.record(rows_examined=5, nodes_visited=2)
        window = stats.delta(before)
        assert window.queries == 2
        assert window.rows_examined == 25
        assert window.rows_matched == 5
        assert window.cells_visited == 0
        assert window.nodes_visited == 2
        assert window.shards_pruned == 6
        # Neither operand is mutated: cumulative semantics are preserved.
        assert stats.queries == 3 and stats.rows_examined == 35
        assert before.queries == 1 and before.rows_examined == 10

    def test_delta_of_fresh_snapshot_is_zero(self):
        stats = QueryStats()
        stats.record(rows_examined=7)
        window = stats.delta(stats.snapshot())
        assert window.queries == 0
        assert window.rows_examined == 0
        assert window.mean_rows_examined == 0.0


class TestRegistry:
    def test_known_indexes_registered(self):
        names = available_indexes()
        for expected in ("full_scan", "sorted_column", "uniform_grid",
                         "sorted_cell_grid", "column_files", "rtree", "coax"):
            assert expected in names

    def test_create_index_by_name(self, table):
        index = create_index("full_scan", table)
        assert isinstance(index, FullScanIndex)

    def test_unknown_name(self, table):
        with pytest.raises(KeyError):
            create_index("nope", table)

    def test_register_requires_name(self):
        class Nameless(FullScanIndex):
            name = "abstract"

        with pytest.raises(ValueError):
            register_index(Nameless)


class TestBaseContract:
    def test_unknown_dimension_rejected(self, table):
        with pytest.raises(IndexBuildError):
            FullScanIndex(table, dimensions=("nope",))

    def test_row_ids_subset(self, table):
        row_ids = np.arange(0, 100, dtype=np.int64)
        index = FullScanIndex(table, row_ids=row_ids)
        assert index.n_rows == 100
        result = index.range_query(Rectangle.unconstrained())
        assert np.array_equal(np.sort(result), row_ids)

    def test_results_are_original_row_ids(self, table):
        row_ids = np.array([5, 10, 20], dtype=np.int64)
        index = FullScanIndex(table, row_ids=row_ids)
        point = table.row(10)
        result = index.point_query(point)
        assert 10 in result

    def test_empty_query_returns_nothing(self, table):
        index = FullScanIndex(table)
        assert len(index.range_query(Rectangle({"a": Interval(5.0, 1.0)}))) == 0

    def test_empty_index(self, table):
        index = FullScanIndex(table, row_ids=np.empty(0, dtype=np.int64))
        assert index.count(Rectangle.unconstrained()) == 0

    def test_data_and_total_bytes(self, table):
        index = FullScanIndex(table)
        assert index.data_bytes() == table.nbytes()
        assert index.total_bytes() == index.data_bytes() + index.directory_bytes()


class TestFullScan:
    def test_matches_table_select(self, table):
        index = FullScanIndex(table)
        query = Rectangle({"a": Interval(10.0, 50.0), "b": Interval(0.0, 30.0)})
        assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_zero_directory_overhead(self, table):
        assert FullScanIndex(table).directory_bytes() == 0

    def test_stats_count_every_row(self, table):
        index = FullScanIndex(table)
        index.range_query(Rectangle({"a": Interval(0.0, 1.0)}))
        assert index.stats.rows_examined == table.n_rows

    def test_count_helper(self, table):
        index = FullScanIndex(table)
        query = Rectangle({"a": Interval(0.0, 50.0)})
        assert index.count(query) == len(table.select(query))


class TestPositionLookupCache:
    def test_positions_of_round_trip(self, table):
        index = FullScanIndex(table, row_ids=np.array([5, 1, 9, 3], dtype=np.int64))
        positions = index.positions_of(np.array([9, 5], dtype=np.int64))
        assert sorted(positions.tolist()) == [0, 2]

    def test_uncovered_ids_dropped(self, table):
        index = FullScanIndex(table, row_ids=np.array([5, 1], dtype=np.int64))
        positions = index.positions_of(np.array([1, 777], dtype=np.int64))
        assert positions.tolist() == [1]

    def test_lookup_is_cached(self, table, monkeypatch):
        index = FullScanIndex(table)
        calls = {"n": 0}
        original = np.argsort

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(np, "argsort", counting)
        for _ in range(5):
            index.positions_of(np.array([0, 1], dtype=np.int64))
        assert calls["n"] == 1

    def test_empty_inputs(self, table):
        index = FullScanIndex(table)
        assert len(index.positions_of(np.empty(0, dtype=np.int64))) == 0


class TestBatchRangeQuery:
    def test_results_align_with_single_queries(self, table):
        index = FullScanIndex(table)
        queries = [
            Rectangle({"a": Interval(0.0, 30.0)}),
            Rectangle({"b": Interval(50.0, 80.0)}),
            Rectangle({"a": Interval(90.0, 100.0), "b": Interval(0.0, 10.0)}),
        ]
        results = index.batch_range_query(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert np.array_equal(result, index.range_query(query))
