"""Executor property tests: every optimised path vs the full-scan oracle.

The oracle (:class:`FullScanIndex`) re-implements aggregates, kNN and
top-k from first principles; these tests hold the grid fold kernels and
the COAX facade to it element-for-element — bit-for-bit for COUNT/MIN/MAX
(integer run arithmetic, order-free extremes), 1e-9 for SUM/AVG whose
fold order legitimately differs — including under interleaved CRUD, and
prove the aggregate path never materialises candidate row ids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.data.executors import AGGREGATE_OPS, Aggregate, TopK
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.grid_file import SortedCellGridIndex


def random_rectangles(table: Table, n: int, rng: np.random.Generator):
    """Random rectangles over random dimension subsets, empties included."""
    dims = list(table.schema)
    queries = []
    for _ in range(n):
        chosen = rng.choice(dims, size=rng.integers(1, len(dims) + 1), replace=False)
        intervals = {}
        for dim in chosen:
            column = np.asarray(table.column(dim), dtype=np.float64)
            a, b = rng.uniform(column.min(), column.max(), size=2)
            lo, hi = (a, b) if a <= b else (b, a)
            if rng.random() < 0.1:
                lo, hi = hi + 1.0, hi + 2.0  # deliberately empty
            intervals[dim] = Interval(float(lo), float(hi))
        queries.append(Rectangle(intervals))
    return queries


def assert_aggregates_match_oracle(index, oracle, queries, column: str) -> None:
    for op in AGGREGATE_OPS:
        spec = Aggregate(op, None if op == "count" else column)
        got = index.batch_aggregate(queries, spec)
        want = oracle.batch_aggregate(queries, spec)
        if op in ("count", "min", "max"):
            assert np.array_equal(got, want, equal_nan=True), op
        else:
            assert np.allclose(got, want, rtol=1e-9, atol=1e-9, equal_nan=True), op


@pytest.fixture(scope="module")
def corr_table() -> Table:
    """Correlated 3-column table with duplicated values to force ties."""
    rng = np.random.default_rng(42)
    n = 5_000
    x = np.round(rng.uniform(0.0, 60.0, size=n), 0)  # coarse: many exact ties
    y = 2.0 * x + 5.0 + rng.normal(0.0, 1.0, size=n)
    v = rng.normal(0.0, 10.0, size=n)
    return Table({"x": x, "y": y, "v": v})


class TestGridAggregates:
    def test_grid_matches_oracle(self, corr_table, rng):
        index = SortedCellGridIndex(corr_table, cells_per_dim=5)
        oracle = FullScanIndex(corr_table)
        queries = random_rectangles(corr_table, 40, np.random.default_rng(0))
        assert_aggregates_match_oracle(index, oracle, queries, "v")

    def test_grid_matches_oracle_after_deletes(self, corr_table):
        index = SortedCellGridIndex(corr_table, cells_per_dim=5)
        oracle = FullScanIndex(corr_table)
        doomed = np.arange(0, corr_table.n_rows, 7, dtype=np.int64)
        index.delete_rows(doomed)
        oracle.delete_rows(doomed)
        queries = random_rectangles(corr_table, 25, np.random.default_rng(1))
        assert_aggregates_match_oracle(index, oracle, queries, "v")

    def test_empty_match_semantics(self, corr_table):
        index = SortedCellGridIndex(corr_table, cells_per_dim=5)
        nothing = [Rectangle({"x": Interval(1e9, 2e9)})]
        assert index.batch_aggregate(nothing, Aggregate("count", None))[0] == 0
        assert index.batch_aggregate(nothing, Aggregate("sum", "v"))[0] == 0.0
        for op in ("min", "max", "avg"):
            assert np.isnan(index.batch_aggregate(nothing, Aggregate(op, "v"))[0])


class TestCOAXAggregates:
    def test_coax_matches_oracle(self, corr_table, fast_coax_config):
        index = COAXIndex(corr_table, config=fast_coax_config)
        oracle = FullScanIndex(corr_table)
        queries = random_rectangles(corr_table, 40, np.random.default_rng(2))
        assert_aggregates_match_oracle(index, oracle, queries, "v")

    def test_coax_matches_oracle_under_interleaved_crud(
        self, corr_table, fast_coax_config
    ):
        index = COAXIndex(corr_table, config=fast_coax_config)
        rng = np.random.default_rng(3)
        n_new = 600
        fresh = {
            "x": np.round(rng.uniform(0.0, 60.0, size=n_new), 0),
            "y": rng.uniform(0.0, 130.0, size=n_new),
            "v": rng.normal(0.0, 10.0, size=n_new),
        }
        new_ids = index.insert_batch(fresh)
        assert len(new_ids) == n_new
        doomed = np.concatenate(
            [
                np.arange(0, corr_table.n_rows, 9, dtype=np.int64),
                new_ids[::5],
            ]
        )
        index.delete_batch(doomed)

        combined = Table(
            {
                name: np.concatenate(
                    [np.asarray(corr_table.column(name), dtype=np.float64), fresh[name]]
                )
                for name in corr_table.schema
            }
        )
        oracle = FullScanIndex(combined)
        oracle.delete_rows(doomed)

        queries = random_rectangles(corr_table, 30, np.random.default_rng(4))
        # Pending (un-compacted) deltas first, then the compacted layout.
        assert_aggregates_match_oracle(index, oracle, queries, "v")
        index.compact()
        assert_aggregates_match_oracle(index, oracle, queries, "v")

    def test_airline_coax_matches_oracle(self, airline_coax, airline_small):
        oracle = FullScanIndex(airline_small)
        queries = random_rectangles(airline_small, 25, np.random.default_rng(5))
        assert_aggregates_match_oracle(airline_coax, oracle, queries, "AirTime")


class _TrapArray(np.ndarray):
    """Row-id array that refuses to be gathered from."""

    def __getitem__(self, item):  # noqa: D105
        raise AssertionError("aggregate path materialised candidate row ids")


class TestNoIdMaterialization:
    def test_aggregates_never_touch_row_id_arrays(self, corr_table, fast_coax_config):
        # The enforcement teeth behind the repro-lint materialize pass:
        # every row-id array on the read path is replaced by a trap that
        # raises on any indexing, and the aggregate answers must still
        # come out — folded from runs and column values, never from ids.
        index = COAXIndex(corr_table, config=fast_coax_config)
        queries = random_rectangles(corr_table, 15, np.random.default_rng(6))
        expected = {
            op: index.batch_aggregate(
                queries, Aggregate(op, None if op == "count" else "v")
            )
            for op in AGGREGATE_OPS
        }
        traps = []
        for sub in (index.primary_index, index.outlier_index, index):
            traps.append((sub, sub._row_ids))
            sub._row_ids = sub._row_ids.view(_TrapArray)
        try:
            for op, want in expected.items():
                spec = Aggregate(op, None if op == "count" else "v")
                got = index.batch_aggregate(queries, spec)
                assert np.array_equal(got, want, equal_nan=True)
        finally:
            for sub, original in traps:
                sub._row_ids = original


class TestTopKAndKNN:
    def test_knn_matches_oracle_with_ties(self, corr_table, fast_coax_config):
        index = COAXIndex(corr_table, config=fast_coax_config)
        oracle = FullScanIndex(corr_table)
        rng = np.random.default_rng(7)
        for _ in range(12):
            # Integer-grid centres over the rounded x column force exact
            # distance ties, so only the row-id tie-break makes the
            # result well-defined.
            point = {"x": float(rng.integers(0, 60))}
            if rng.random() < 0.5:
                point["y"] = float(rng.uniform(0.0, 130.0))
            for metric in ("l2", "linf"):
                k = int(rng.integers(1, 40))
                got = index.knn(point, k, metric=metric)
                want = oracle.knn(point, k, metric=metric)
                assert np.array_equal(got, want), (point, metric, k)

    def test_knn_k_larger_than_live_rows(self):
        table = Table({"x": np.arange(5.0), "v": np.arange(5.0)})
        index = SortedCellGridIndex(table, cells_per_dim=2)
        ids = index.knn({"x": 2.2}, 50)
        assert sorted(ids.tolist()) == [0, 1, 2, 3, 4]
        assert ids.tolist()[0] == 2

    def test_topk_by_column_matches_oracle(self, corr_table, fast_coax_config):
        index = COAXIndex(corr_table, config=fast_coax_config)
        oracle = FullScanIndex(corr_table)
        queries = random_rectangles(corr_table, 10, np.random.default_rng(8))
        for query in queries:
            for largest in (False, True):
                spec = TopK(7, column="v", largest=largest)
                assert np.array_equal(
                    index.topk(query, spec), oracle.topk(query, spec)
                ), (query, largest)

    def test_topk_sees_pending_and_deleted_rows(self, corr_table, fast_coax_config):
        index = COAXIndex(corr_table, config=fast_coax_config)
        oracle = FullScanIndex(corr_table)
        spec = TopK(5, column="v", largest=True)
        query = Rectangle({"x": Interval(10.0, 50.0)})
        top = index.topk(query, spec)
        index.delete_batch(top[:2])
        oracle.delete_rows(top[:2])
        assert np.array_equal(index.topk(query, spec), oracle.topk(query, spec))
