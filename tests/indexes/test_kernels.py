"""Unit tests for the vectorized read-path kernels.

Each kernel is checked against the straightforward reference it replaces
(`itertools.product`, per-segment ``np.searchsorted``, per-range
``np.arange`` concatenation), over randomized inputs including the edge
shapes (empty segments, empty ranges, single cells, empty batches).
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.indexes.kernels import (
    axis_cell_ranges,
    enumerate_cells,
    enumerate_cells_batch,
    gather_ranges,
    segment_bisect,
)


class TestEnumerateCells:
    @given(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_matches_product_order(self, lo0, span0, lo1, span1):
        shape = (6, 6)
        lo_cells = [lo0, lo1]
        hi_cells = [min(lo0 + span0, 5), min(lo1 + span1, 5)]
        expected = [
            int(np.ravel_multi_index(combo, shape))
            for combo in itertools.product(
                range(lo_cells[0], hi_cells[0] + 1), range(lo_cells[1], hi_cells[1] + 1)
            )
        ]
        got = enumerate_cells(lo_cells, hi_cells, shape)
        assert got.tolist() == expected

    def test_no_grid_dimensions(self):
        assert enumerate_cells([], [], ()).tolist() == [0]

    def test_one_axis_passthrough(self):
        assert enumerate_cells([2], [4], (8,)).tolist() == [2, 3, 4]


class TestEnumerateCellsBatch:
    @given(st.integers(0, 6000))
    @settings(max_examples=30, deadline=None)
    def test_matches_per_query_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        shape = (5, 4, 3)
        n_queries = int(rng.integers(1, 8))
        lo = np.stack([rng.integers(0, s, size=n_queries) for s in shape])
        hi = np.stack(
            [np.minimum(lo[a] + rng.integers(-1, s, size=n_queries), s - 1)
             for a, s in enumerate(shape)]
        )
        cells, counts = enumerate_cells_batch(lo, hi, shape)
        assert int(counts.sum()) == len(cells)
        split = np.split(cells, np.cumsum(counts)[:-1])
        for i in range(n_queries):
            expected = enumerate_cells(lo[:, i], hi[:, i], shape)
            if (hi[:, i] < lo[:, i]).any():
                assert counts[i] == 0
            else:
                assert split[i].tolist() == expected.tolist()

    def test_empty_batch_of_cells(self):
        lo = np.array([[1], [2]])
        hi = np.array([[0], [3]])  # axis 0 empty -> no cells
        cells, counts = enumerate_cells_batch(lo, hi, (4, 4))
        assert len(cells) == 0 and counts.tolist() == [0]


class TestSegmentBisect:
    @given(st.integers(0, 6000), st.sampled_from(["left", "right"]))
    @settings(max_examples=40, deadline=None)
    def test_matches_searchsorted_per_segment(self, seed, side):
        rng = np.random.default_rng(seed)
        n_segments = int(rng.integers(1, 12))
        runs = [np.sort(rng.integers(-5, 5, size=rng.integers(0, 20)).astype(float))
                for _ in range(n_segments)]
        keys = np.concatenate(runs) if runs else np.empty(0)
        lengths = np.array([len(run) for run in runs], dtype=np.int64)
        stops = np.cumsum(lengths)
        starts = stops - lengths
        values = rng.integers(-6, 6, size=n_segments).astype(float)
        got = segment_bisect(keys, starts, stops, values, side=side)
        for i, run in enumerate(runs):
            expected = starts[i] + np.searchsorted(run, values[i], side=side)
            assert got[i] == expected, (i, side)

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        assert len(segment_bisect(np.empty(0), empty, empty, np.empty(0))) == 0


class TestGatherRanges:
    @given(st.integers(0, 6000))
    @settings(max_examples=40, deadline=None)
    def test_matches_arange_concatenation(self, seed):
        rng = np.random.default_rng(seed)
        n_ranges = int(rng.integers(0, 10))
        starts = rng.integers(0, 50, size=n_ranges)
        stops = starts + rng.integers(-3, 8, size=n_ranges)  # some empty
        expected = (
            np.concatenate([np.arange(a, max(a, b)) for a, b in zip(starts, stops)])
            if n_ranges
            else np.empty(0)
        )
        indices, lengths = gather_ranges(starts, stops)
        assert indices.tolist() == expected.tolist()
        assert lengths.tolist() == np.maximum(stops - starts, 0).tolist()


class TestAxisCellRanges:
    def test_matches_scalar_bisection(self):
        boundaries = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        lows = np.array([-1.0, 0.5, 2.0, 3.9, 10.0])
        highs = np.array([0.2, 1.5, 2.0, 10.0, 11.0])
        lo_cells, hi_cells = axis_cell_ranges(boundaries, lows, highs, 4)
        for i in range(len(lows)):
            expected_lo = int(np.clip(np.searchsorted(boundaries, lows[i], side="right") - 1, 0, 3))
            expected_hi = int(np.clip(np.searchsorted(boundaries, highs[i], side="right") - 1, 0, 3))
            assert lo_cells[i] == expected_lo and hi_cells[i] == expected_hi

    def test_empty_interval_yields_no_cells(self):
        boundaries = np.array([0.0, 1.0, 2.0])
        lo_cells, hi_cells = axis_cell_ranges(
            boundaries, np.array([1.5]), np.array([0.5]), 2
        )
        assert hi_cells[0] < lo_cells[0]
