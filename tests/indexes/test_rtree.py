"""Tests for the R-Tree baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError
from repro.indexes.rtree import RTreeIndex


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(3)
    n = 3_000
    return Table(
        {
            "x": rng.uniform(0.0, 100.0, size=n),
            "y": rng.normal(0.0, 25.0, size=n),
            "z": rng.exponential(scale=5.0, size=n),
        }
    )


@pytest.fixture(scope="module")
def queries(table):
    rng = np.random.default_rng(4)
    result = []
    for _ in range(15):
        anchor = table.row(int(rng.integers(0, table.n_rows)))
        result.append(
            Rectangle(
                {
                    "x": Interval(anchor["x"] - 10, anchor["x"] + 10),
                    "y": Interval(anchor["y"] - 10, anchor["y"] + 10),
                }
            )
        )
    return result


class TestBulkLoad:
    def test_exactness(self, table, queries):
        index = RTreeIndex(table, node_capacity=10)
        for query in queries:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_point_queries(self, table):
        index = RTreeIndex(table, node_capacity=8)
        for row_id in (0, 500, 2999):
            assert row_id in index.point_query(table.row(row_id))

    def test_capacity_validation(self, table):
        with pytest.raises(IndexBuildError):
            RTreeIndex(table, node_capacity=1)

    def test_height_and_node_count_scale_with_capacity(self, table):
        small_cap = RTreeIndex(table, node_capacity=4)
        large_cap = RTreeIndex(table, node_capacity=32)
        assert small_cap.height() >= large_cap.height()
        assert small_cap.node_count() > large_cap.node_count()

    def test_leaf_occupancy_respects_capacity(self, table):
        index = RTreeIndex(table, node_capacity=10)
        stack = [index._root]
        while stack:
            node = stack.pop()
            assert node.n_entries <= 10
            if not node.is_leaf:
                stack.extend(node.children)

    def test_empty_index(self, table):
        index = RTreeIndex(table, row_ids=np.empty(0, dtype=np.int64))
        assert index.count(Rectangle.unconstrained()) == 0
        assert index.height() == 1

    def test_single_row(self, table):
        index = RTreeIndex(table, row_ids=np.array([42], dtype=np.int64))
        assert index.count(Rectangle.unconstrained()) == 1

    def test_directory_bytes_grow_with_smaller_capacity(self, table):
        small_cap = RTreeIndex(table, node_capacity=4)
        large_cap = RTreeIndex(table, node_capacity=32)
        assert small_cap.directory_bytes() > large_cap.directory_bytes()

    def test_pruning_avoids_full_scan(self, table):
        index = RTreeIndex(table, node_capacity=10)
        index.stats.reset()
        index.range_query(Rectangle({"x": Interval(0.0, 1.0), "y": Interval(0.0, 1.0)}))
        assert index.stats.rows_examined < table.n_rows / 5
        assert index.stats.nodes_visited < index.node_count()

    def test_query_on_non_indexed_dimension_is_still_exact(self, table):
        index = RTreeIndex(table, dimensions=("x", "y"))
        query = Rectangle({"z": Interval(0.0, 2.0)})
        assert np.array_equal(np.sort(index.range_query(query)), table.select(query))


class TestInsertion:
    def test_insert_point_becomes_visible(self, table):
        index = RTreeIndex(table, node_capacity=8)
        # Re-insert an existing position: it should now appear twice.
        target = table.row(7)
        before = len(index.point_query(target))
        index.insert_point(7)
        after = len(index.point_query(target))
        assert after == before + 1

    def test_insert_many_points_keeps_exactness(self, table, queries):
        row_ids = np.arange(0, 500, dtype=np.int64)
        index = RTreeIndex(table, row_ids=row_ids, node_capacity=6)
        for position in range(500):
            index.insert_point(position)
        # Each record is now present twice; counts double relative to a scan.
        subset = table.take(row_ids)
        for query in queries:
            expected = 2 * len(subset.select(query))
            assert len(index.range_query(query)) == expected

    def test_insert_out_of_range_position(self, table):
        index = RTreeIndex(table)
        with pytest.raises(IndexError):
            index.insert_point(table.n_rows + 5)

    def test_insert_respects_capacity(self, table):
        index = RTreeIndex(table, row_ids=np.arange(50, dtype=np.int64), node_capacity=4)
        for position in range(50):
            index.insert_point(position)
        stack = [index._root]
        while stack:
            node = stack.pop()
            assert node.n_entries <= 4
            if not node.is_leaf:
                stack.extend(node.children)
