"""Tests for memory accounting and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import Table
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.memory import compare_reports, format_bytes, memory_report
from repro.indexes.rtree import RTreeIndex
from repro.indexes.uniform_grid import UniformGridIndex


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(5)
    return Table({"a": rng.uniform(size=2_000), "b": rng.uniform(size=2_000)})


class TestMemoryReport:
    def test_report_fields(self, table):
        index = UniformGridIndex(table, cells_per_dim=8)
        report = memory_report(index)
        assert report.name == "uniform_grid"
        assert report.directory_bytes == index.directory_bytes()
        assert report.data_bytes == table.nbytes()
        assert report.total_bytes == report.directory_bytes + report.data_bytes
        assert report.bytes_per_row == pytest.approx(report.directory_bytes / 2_000)

    def test_overhead_ratio(self, table):
        report = memory_report(FullScanIndex(table))
        assert report.overhead_ratio == 0.0

    def test_empty_index_ratios(self, table):
        index = FullScanIndex(table, row_ids=np.empty(0, dtype=np.int64))
        report = memory_report(index)
        assert report.overhead_ratio == 0.0
        assert report.bytes_per_row == 0.0

    def test_custom_name(self, table):
        report = memory_report(FullScanIndex(table), name="baseline")
        assert report.name == "baseline"


class TestCompareReports:
    def test_relative_factors(self, table):
        reports = {
            "grid": memory_report(UniformGridIndex(table, cells_per_dim=8)),
            "rtree": memory_report(RTreeIndex(table, node_capacity=8)),
        }
        factors = compare_reports(reports)
        assert min(factors.values()) == pytest.approx(1.0)
        assert factors["rtree"] > factors["grid"]

    def test_empty(self):
        assert compare_reports({}) == {}


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (512, "512.0 B"),
            (2048, "2.0 KB"),
            (3 * 1024**2, "3.0 MB"),
            (5 * 1024**3, "5.0 GB"),
        ],
    )
    def test_units(self, value, expected):
        assert format_bytes(value) == expected


class TestDirectoryOrdering:
    def test_rtree_is_heavier_than_grid(self, table):
        grid = UniformGridIndex(table, cells_per_dim=8)
        rtree = RTreeIndex(table, node_capacity=8)
        assert rtree.directory_bytes() > grid.directory_bytes()
