"""Tests for the uniform grid, the quantile grid file and Column Files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.grid_file import SortedCellGridIndex
from repro.indexes.sorted_array import SortedColumnIndex
from repro.indexes.uniform_grid import UniformGridIndex, _capped_cells_per_dim


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(1)
    n = 4_000
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=n),
            "b": rng.exponential(scale=20.0, size=n),
            "c": rng.normal(50.0, 15.0, size=n),
        }
    )


@pytest.fixture(scope="module")
def queries(table):
    rng = np.random.default_rng(2)
    result = []
    for _ in range(15):
        anchor = table.row(int(rng.integers(0, table.n_rows)))
        result.append(
            Rectangle(
                {
                    "a": Interval(anchor["a"] - 20, anchor["a"] + 20),
                    "b": Interval(anchor["b"] - 15, anchor["b"] + 15),
                    "c": Interval(anchor["c"] - 10, anchor["c"] + 10),
                }
            )
        )
    return result


class TestCellCap:
    def test_capped_cells_per_dim(self):
        assert _capped_cells_per_dim(8, 2, 100) == 8  # 64 <= 100
        assert _capped_cells_per_dim(8, 3, 100) == 4  # 4^3=64 <= 100 < 5^3
        assert _capped_cells_per_dim(100, 1, 10) == 10
        assert _capped_cells_per_dim(8, 0, 10) == 8
        assert _capped_cells_per_dim(8, 4, 1) == 1

    def test_directory_never_exceeds_budget(self, table):
        index = UniformGridIndex(table, cells_per_dim=64)
        assert index.n_cells <= table.n_rows

    def test_explicit_max_cells(self, table):
        index = UniformGridIndex(table, cells_per_dim=10, max_cells=30)
        assert index.n_cells <= 30


class TestUniformGrid:
    def test_exactness(self, table, queries):
        index = UniformGridIndex(table, cells_per_dim=8)
        for query in queries:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_point_queries(self, table):
        index = UniformGridIndex(table, cells_per_dim=8)
        for row_id in (0, 17, 1999):
            result = index.point_query(table.row(row_id))
            assert row_id in result

    def test_invalid_cells(self, table):
        with pytest.raises(IndexBuildError):
            UniformGridIndex(table, cells_per_dim=0)

    def test_cell_sizes_sum_to_rows(self, table):
        index = UniformGridIndex(table, cells_per_dim=6)
        assert int(index.cell_sizes().sum()) == table.n_rows

    def test_empty_table_subset(self, table):
        index = UniformGridIndex(table, row_ids=np.empty(0, dtype=np.int64))
        assert index.count(Rectangle.unconstrained()) == 0

    def test_prunes_rows_relative_to_full_scan(self, table, queries):
        index = UniformGridIndex(table, cells_per_dim=8)
        index.stats.reset()
        for query in queries:
            index.range_query(query)
        assert index.stats.rows_examined < len(queries) * table.n_rows * 0.8

    def test_skewed_cell_distribution(self, table):
        index = UniformGridIndex(table, cells_per_dim=10, dimensions=("b",))
        sizes = index.cell_sizes()
        # The exponential column concentrates mass in the first cells.
        assert sizes[0] > sizes[-1]


class TestSortedCellGrid:
    def test_exactness(self, table, queries):
        index = SortedCellGridIndex(table, cells_per_dim=8, sort_dimension="a")
        for query in queries:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_sort_dimension_has_no_grid_lines(self, table):
        index = SortedCellGridIndex(table, cells_per_dim=8, sort_dimension="b")
        assert "b" not in index.grid_dimensions
        assert index.sort_dimension == "b"
        assert len(index.grid_dimensions) == table.n_dims - 1

    def test_unknown_sort_dimension(self, table):
        with pytest.raises(IndexBuildError):
            SortedCellGridIndex(table, sort_dimension="zzz")

    def test_quantile_cells_are_balanced(self, table):
        index = SortedCellGridIndex(table, cells_per_dim=4, sort_dimension="a")
        sizes = index.cell_sizes()
        non_empty = sizes[sizes > 0]
        # Quantile boundaries keep the per-cell load within a reasonable factor.
        assert non_empty.max() < 10 * max(non_empty.mean(), 1.0)

    def test_query_on_sort_dimension_only(self, table):
        index = SortedCellGridIndex(table, cells_per_dim=4, sort_dimension="a")
        query = Rectangle({"a": Interval(10.0, 30.0)})
        assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_examines_fewer_rows_than_uniform_grid_on_sorted_dim(self, table):
        sorted_grid = SortedCellGridIndex(table, cells_per_dim=6, sort_dimension="a")
        uniform = UniformGridIndex(table, cells_per_dim=6)
        query = Rectangle({"a": Interval(40.0, 42.0)})
        sorted_grid.stats.reset()
        uniform.stats.reset()
        sorted_grid.range_query(query)
        uniform.range_query(query)
        assert sorted_grid.stats.rows_examined <= uniform.stats.rows_examined

    def test_directory_bytes_positive(self, table):
        index = SortedCellGridIndex(table, cells_per_dim=4)
        assert index.directory_bytes() > 0

    def test_single_dimension_degenerates_to_sorted_column(self, table):
        grid = SortedCellGridIndex(table, dimensions=("a",), sort_dimension="a")
        sorted_column = SortedColumnIndex(table, sort_dimension="a", dimensions=("a",))
        query = Rectangle({"a": Interval(5.0, 10.0)})
        assert np.array_equal(
            np.sort(grid.range_query(query)), np.sort(sorted_column.range_query(query))
        )


class TestSortedColumn:
    def test_exactness(self, table, queries):
        index = SortedColumnIndex(table, sort_dimension="a")
        for query in queries:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_zero_directory(self, table):
        assert SortedColumnIndex(table, sort_dimension="a").directory_bytes() == 0

    def test_unknown_sort_dimension(self, table):
        with pytest.raises(IndexBuildError):
            SortedColumnIndex(table, sort_dimension="zzz")

    def test_scan_is_bounded_by_sorted_range(self, table):
        index = SortedColumnIndex(table, sort_dimension="a")
        index.stats.reset()
        index.range_query(Rectangle({"a": Interval(0.0, 1.0)}))
        assert index.stats.rows_examined < table.n_rows / 10


class TestColumnFiles:
    def test_exactness(self, table, queries):
        index = ColumnFilesIndex(table, cells_per_dim=6, sort_dimension="a")
        for query in queries:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_defaults_to_full_schema(self, table):
        index = ColumnFilesIndex(table)
        assert index.dimensions == tuple(table.schema)
        assert index.sort_dimension == tuple(table.schema)[0]

    def test_registered_name(self, table):
        assert ColumnFilesIndex.name == "column_files"


class TestAbsorbRows:
    """Incremental merge of new rows into an existing sorted-cell grid."""

    def _combined(self, table: Table, seed: int, k: int):
        rng = np.random.default_rng(seed)
        extra = Table(
            {
                "a": rng.uniform(0.0, 120.0, size=k),
                "b": rng.exponential(scale=25.0, size=k),
                "c": rng.normal(40.0, 20.0, size=k),
            }
        )
        combined = table.concat(extra)
        new_ids = np.arange(table.n_rows, combined.n_rows, dtype=np.int64)
        return combined, new_ids

    def test_absorb_matches_rebuild(self, table, queries):
        combined, new_ids = self._combined(table, seed=5, k=1_500)
        incremental = SortedCellGridIndex(table, cells_per_dim=5, sort_dimension="a")
        incremental.absorb_rows(combined, new_ids)
        rebuilt = SortedCellGridIndex(combined, cells_per_dim=5, sort_dimension="a")
        assert incremental.n_rows == combined.n_rows
        for query in queries:
            assert np.array_equal(
                np.sort(incremental.range_query(query)),
                np.sort(rebuilt.range_query(query)),
            )
            assert np.array_equal(
                np.sort(incremental.range_query(query)), combined.select(query)
            )

    def test_absorb_keeps_cells_sorted(self, table):
        combined, new_ids = self._combined(table, seed=6, k=800)
        index = SortedCellGridIndex(table, cells_per_dim=4, sort_dimension="b")
        index.absorb_rows(combined, new_ids)
        keys = index._sorted_keys
        offsets = index._offsets
        for cell in range(index.n_cells):
            cell_keys = keys[offsets[cell]:offsets[cell + 1]]
            assert np.all(np.diff(cell_keys) >= 0.0)
        assert offsets[-1] == combined.n_rows

    def test_absorb_empty_batch(self, table):
        index = SortedCellGridIndex(table, cells_per_dim=4)
        index.absorb_rows(table, np.empty(0, dtype=np.int64))
        assert index.n_rows == table.n_rows

    def test_absorb_into_empty_index(self, table):
        empty = SortedCellGridIndex(
            table, cells_per_dim=4, row_ids=np.empty(0, dtype=np.int64)
        )
        all_ids = np.arange(table.n_rows, dtype=np.int64)
        empty.absorb_rows(table, all_ids)
        assert empty.n_rows == table.n_rows
        query = Rectangle({"a": Interval(10.0, 60.0)})
        assert np.array_equal(np.sort(empty.range_query(query)), table.select(query))

    def test_repeated_absorption(self, table, queries):
        index = SortedCellGridIndex(table, cells_per_dim=5, sort_dimension="a")
        current = table
        for seed in (7, 8, 9):
            combined, new_ids = self._combined(current, seed=seed, k=400)
            index.absorb_rows(combined, new_ids)
            current = combined
        rebuilt = SortedCellGridIndex(current, cells_per_dim=5, sort_dimension="a")
        for query in queries:
            assert np.array_equal(
                np.sort(index.range_query(query)),
                np.sort(rebuilt.range_query(query)),
            )
