"""Cross-index equivalence: every structure must return exactly the full-scan result.

This is the central correctness property of the library — an index is a
performance structure, never an approximation.  Hypothesis generates random
tables and random query rectangles and checks every registered index against
the brute-force scan.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.grid_file import SortedCellGridIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.sorted_array import SortedColumnIndex
from repro.indexes.uniform_grid import UniformGridIndex


def build_all_indexes(table: Table):
    """One instance of every non-COAX index over the full table."""
    return [
        FullScanIndex(table),
        SortedColumnIndex(table, sort_dimension=list(table.schema)[0]),
        UniformGridIndex(table, cells_per_dim=5),
        SortedCellGridIndex(table, cells_per_dim=5),
        ColumnFilesIndex(table, cells_per_dim=5),
        RTreeIndex(table, node_capacity=6),
    ]


@st.composite
def tables_and_queries(draw):
    """A random 2-3 column table plus a list of random rectangle queries."""
    n_rows = draw(st.integers(min_value=1, max_value=300))
    n_cols = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    names = [f"c{i}" for i in range(n_cols)]
    # Mix of distributions, including heavy ties to stress boundary handling.
    columns = {}
    for i, name in enumerate(names):
        kind = (seed + i) % 3
        if kind == 0:
            columns[name] = rng.uniform(-100.0, 100.0, size=n_rows)
        elif kind == 1:
            columns[name] = rng.normal(0.0, 10.0, size=n_rows)
        else:
            columns[name] = rng.integers(0, 5, size=n_rows).astype(float)
    table = Table(columns)
    n_queries = draw(st.integers(min_value=1, max_value=4))
    queries = []
    for _ in range(n_queries):
        intervals = {}
        for name in names:
            if draw(st.booleans()):
                low = draw(st.floats(-120.0, 120.0))
                width = draw(st.floats(0.0, 100.0))
                intervals[name] = Interval(low, low + width)
        queries.append(Rectangle(intervals))
    return table, queries


class TestAllIndexesMatchFullScan:
    @given(tables_and_queries())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_tables_and_queries(self, table_and_queries):
        table, queries = table_and_queries
        indexes = build_all_indexes(table)
        for query in queries:
            expected = table.select(query)
            for index in indexes:
                got = np.sort(index.range_query(query))
                assert np.array_equal(got, expected), type(index).__name__

    @given(tables_and_queries())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_point_queries_find_existing_rows(self, table_and_queries):
        table, _ = table_and_queries
        indexes = build_all_indexes(table)
        rng = np.random.default_rng(0)
        for row_id in rng.integers(0, table.n_rows, size=min(3, table.n_rows)):
            point = table.row(int(row_id))
            for index in indexes:
                assert int(row_id) in index.point_query(point), type(index).__name__


class TestCOAXMatchesFullScan:
    """COAX equivalence on data that actually carries a soft FD."""

    @pytest.fixture(scope="class")
    def fd_table(self) -> Table:
        rng = np.random.default_rng(7)
        n = 3_000
        x = rng.uniform(0.0, 500.0, size=n)
        y = 1.7 * x + rng.normal(scale=2.0, size=n)
        outliers = rng.random(n) < 0.15
        y[outliers] = rng.uniform(y.min(), y.max(), size=int(outliers.sum()))
        z = rng.uniform(0.0, 10.0, size=n)
        return Table({"x": x, "y": y, "z": z})

    @pytest.fixture(scope="class")
    def coax(self, fd_table) -> COAXIndex:
        config = COAXConfig(
            detection=DetectionConfig(
                bucketing=BucketingConfig(sample_count=3_000, bucket_chunks=32),
                monte_carlo_rounds=4,
            )
        )
        return COAXIndex(fd_table, config=config)

    def test_learned_a_group(self, coax):
        assert len(coax.groups) == 1

    @given(
        x_low=st.floats(-50.0, 550.0),
        x_width=st.floats(0.0, 300.0),
        y_low=st.floats(-100.0, 900.0),
        y_width=st.floats(0.0, 500.0),
        constrain_z=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_queries_match_scan(self, coax, fd_table, x_low, x_width, y_low, y_width, constrain_z):
        intervals = {
            "x": Interval(x_low, x_low + x_width),
            "y": Interval(y_low, y_low + y_width),
        }
        if constrain_z:
            intervals["z"] = Interval(2.0, 7.0)
        query = Rectangle(intervals)
        expected = fd_table.select(query)
        got = np.sort(coax.range_query(query))
        assert np.array_equal(got, expected)

    @given(st.integers(0, 2_999))
    @settings(max_examples=40, deadline=None)
    def test_point_queries_match_scan(self, coax, fd_table, row_id):
        query = Rectangle.from_point(fd_table.row(row_id))
        expected = fd_table.select(query)
        got = np.sort(coax.range_query(query))
        assert np.array_equal(got, expected)
