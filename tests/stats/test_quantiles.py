"""Tests for quantile/CDF helpers used by the grid indexes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.quantiles import empirical_cdf, quantile_boundaries, uniform_boundaries


class TestQuantileBoundaries:
    def test_equal_depth_partition(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(scale=10.0, size=10_000)
        boundaries = quantile_boundaries(values, 8)
        assert len(boundaries) == 9
        counts, _ = np.histogram(values, bins=boundaries)
        # Equal-depth cells: every cell holds roughly 1/8 of the data.
        assert counts.min() > 0.7 * len(values) / 8
        assert counts.max() < 1.3 * len(values) / 8

    def test_strictly_increasing_even_with_ties(self):
        values = np.array([1.0] * 500 + [2.0] * 500)
        boundaries = quantile_boundaries(values, 10)
        assert np.all(np.diff(boundaries) > 0)

    def test_constant_column(self):
        boundaries = quantile_boundaries(np.full(100, 5.0), 4)
        assert np.all(np.diff(boundaries) > 0)
        assert boundaries[0] == 5.0

    def test_empty_input(self):
        boundaries = quantile_boundaries(np.array([]), 4)
        assert len(boundaries) == 5

    def test_invalid_cell_count(self):
        with pytest.raises(ValueError):
            quantile_boundaries(np.arange(10.0), 0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200), st.integers(1, 16))
    def test_boundaries_cover_data(self, values, n_cells):
        array = np.array(values)
        boundaries = quantile_boundaries(array, n_cells)
        assert len(boundaries) == n_cells + 1
        assert boundaries[0] <= array.min()
        assert boundaries[-1] >= array.max()
        assert np.all(np.diff(boundaries) > 0)


class TestUniformBoundaries:
    def test_equal_width(self):
        boundaries = uniform_boundaries(np.array([0.0, 10.0]), 5)
        assert np.allclose(np.diff(boundaries), 2.0)

    def test_constant_column(self):
        boundaries = uniform_boundaries(np.full(10, 3.0), 4)
        assert np.all(np.diff(boundaries) > 0)

    def test_invalid_cell_count(self):
        with pytest.raises(ValueError):
            uniform_boundaries(np.arange(4.0), 0)


class TestEmpiricalCDF:
    def test_positions_are_monotone_in_unit_interval(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        ordered, positions = empirical_cdf(values)
        assert np.all(np.diff(ordered) >= 0)
        assert positions[0] == pytest.approx(1.0 / 500)
        assert positions[-1] == pytest.approx(1.0)

    def test_empty(self):
        ordered, positions = empirical_cdf(np.array([]))
        assert len(ordered) == 0 and len(positions) == 0
