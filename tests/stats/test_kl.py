"""Tests for the KL-divergence uniformity measure (Appendix B.3)."""

from __future__ import annotations

import math

import numpy as np

from repro.stats.kl import kl_divergence_from_uniform, uniformity_score


class TestKLDivergence:
    def test_uniform_data_has_small_divergence(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 1.0, size=50_000)
        assert kl_divergence_from_uniform(values, n_bins=32) < 0.01

    def test_skewed_data_has_larger_divergence(self):
        rng = np.random.default_rng(1)
        uniform = rng.uniform(0.0, 1.0, size=20_000)
        skewed = rng.exponential(scale=0.05, size=20_000)
        assert kl_divergence_from_uniform(skewed) > kl_divergence_from_uniform(uniform)

    def test_constant_data_is_maximally_divergent(self):
        values = np.full(100, 3.0)
        assert kl_divergence_from_uniform(values, n_bins=16) == math.log(16)

    def test_empty_input(self):
        assert kl_divergence_from_uniform(np.array([])) == 0.0

    def test_divergence_is_non_negative(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            values = rng.normal(size=1_000)
            assert kl_divergence_from_uniform(values) >= 0.0


class TestUniformityScore:
    def test_score_in_unit_interval(self):
        rng = np.random.default_rng(3)
        for scale in (0.01, 0.1, 1.0):
            values = rng.exponential(scale=scale, size=5_000)
            assert 0.0 <= uniformity_score(values) <= 1.0

    def test_uniform_scores_near_one(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(size=50_000)
        assert uniformity_score(values) > 0.99

    def test_constant_scores_zero(self):
        assert uniformity_score(np.full(50, 1.0)) == 0.0

    def test_ordering_matches_skew(self):
        rng = np.random.default_rng(5)
        mild = rng.normal(0.0, 1.0, size=20_000)
        extreme = rng.lognormal(0.0, 2.0, size=20_000)
        assert uniformity_score(mild) > uniformity_score(extreme)
