"""Tests for the dataset profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.profile import profile_table


class TestColumnProfiles:
    def test_basic_statistics(self, airline_small, fast_detection_config):
        profile = profile_table(airline_small, detection=fast_detection_config)
        distance = profile.column("Distance")
        assert distance.minimum >= 80.0
        assert distance.maximum <= 5000.0
        assert distance.n_distinct > 1000
        assert 0.0 <= distance.uniformity <= 1.0
        assert not distance.is_nearly_constant

    def test_nearly_constant_detection(self, fast_detection_config):
        from repro.data.table import Table

        table = Table(
            {"flat": np.full(500, 3.0), "varying": np.random.default_rng(0).normal(size=500)}
        )
        profile = profile_table(table, detection=fast_detection_config)
        assert profile.column("flat").is_nearly_constant
        assert not profile.column("varying").is_nearly_constant

    def test_unknown_column_lookup(self, airline_small, fast_detection_config):
        profile = profile_table(airline_small, detection=fast_detection_config)
        with pytest.raises(KeyError):
            profile.column("nope")


class TestCorrelationsAndGroups:
    def test_airline_profile_matches_table1(self, airline_small, fast_detection_config):
        profile = profile_table(airline_small, detection=fast_detection_config)
        assert profile.n_dims == 8
        # The distance/airtime correlation is reported; the ~8% uniform
        # outliers depress plain Pearson well below the inlier correlation,
        # which is exactly why detection uses margins rather than r alone.
        key = ("Distance", "AirTime")
        assert key in profile.correlations
        assert profile.correlations[key] > 0.35
        # The groups mirror what COAXIndex would learn: 2 groups, 4 predicted.
        assert len(profile.groups) == 2
        assert len(profile.predicted_attributes) == 4
        assert profile.indexed_dimensions == 4

    def test_independent_data_has_no_groups(self, fast_detection_config):
        from repro.data.table import Table

        rng = np.random.default_rng(1)
        table = Table({"a": rng.uniform(size=3000), "b": rng.normal(size=3000)})
        profile = profile_table(table, detection=fast_detection_config)
        assert profile.groups == []
        assert profile.indexed_dimensions == 2

    def test_column_restriction(self, airline_small, fast_detection_config):
        profile = profile_table(
            airline_small,
            columns=("Distance", "DayOfWeek"),
            detection=fast_detection_config,
        )
        assert profile.n_dims == 2
        assert profile.groups == []

    def test_sampling_cap(self, airline_small, fast_detection_config):
        profile = profile_table(
            airline_small, detection=fast_detection_config, sample_rows=500
        )
        # Profiling is over a sample, but the report still cites the full size.
        assert profile.n_rows == airline_small.n_rows


class TestDescribe:
    def test_describe_mentions_groups_and_reduction(self, airline_small, fast_detection_config):
        text = profile_table(airline_small, detection=fast_detection_config).describe()
        assert "soft functional dependencies" in text
        assert "dimensionality: 8 ->" in text

    def test_describe_without_groups(self, fast_detection_config):
        from repro.data.table import Table

        rng = np.random.default_rng(2)
        table = Table({"a": rng.uniform(size=1000), "b": rng.uniform(size=1000)})
        text = profile_table(table, detection=fast_detection_config).describe()
        assert "none detected" in text
