"""Tests for correlation measures and soft-FD strength scoring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.correlation import (
    fit_line,
    pearson_correlation,
    soft_fd_strength,
    spearman_correlation,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(100.0)
        assert pearson_correlation(x, 3.0 * x + 1.0) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(100.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5_000)
        y = rng.normal(size=5_000)
        assert abs(pearson_correlation(x, y)) < 0.1

    def test_degenerate_inputs(self):
        assert pearson_correlation(np.array([]), np.array([])) == 0.0
        assert pearson_correlation(np.array([1.0]), np.array([2.0])) == 0.0
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=50))
    def test_bounded_in_unit_interval(self, values):
        x = np.array(values)
        y = np.sin(x)  # arbitrary deterministic transform
        r = pearson_correlation(x, y)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestSpearman:
    def test_monotone_nonlinear_is_perfect(self):
        x = np.linspace(0.1, 10.0, 200)
        y = np.exp(x)
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        y = x + rng.normal(scale=0.5, size=200)
        assert spearman_correlation(x, y) == pytest.approx(spearman_correlation(y, x), abs=1e-9)


class TestFitLine:
    def test_recovers_slope_and_intercept(self):
        x = np.linspace(0.0, 10.0, 500)
        slope, intercept = fit_line(x, 4.0 * x - 2.0)
        assert slope == pytest.approx(4.0, abs=1e-9)
        assert intercept == pytest.approx(-2.0, abs=1e-9)

    def test_constant_x_falls_back_to_mean(self):
        slope, intercept = fit_line(np.ones(10), np.arange(10.0))
        assert slope == 0.0
        assert intercept == pytest.approx(4.5)

    def test_empty_input(self):
        assert fit_line(np.array([]), np.array([])) == (0.0, 0.0)


class TestSoftFDStrength:
    def test_strong_linear_dependency_scores_high(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.0, 100.0, size=3_000)
        y = 2.0 * x + rng.normal(scale=0.5, size=3_000)
        assert soft_fd_strength(x, y) > 0.8

    def test_independent_attributes_score_low(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0.0, 100.0, size=3_000)
        y = rng.uniform(0.0, 100.0, size=3_000)
        assert soft_fd_strength(x, y) < 0.4

    def test_constant_dependent_scores_one(self):
        x = np.arange(100.0)
        assert soft_fd_strength(x, np.full(100, 7.0)) == 1.0

    def test_too_few_points(self):
        assert soft_fd_strength(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_score_is_bounded(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=500)
        y = 0.3 * x + rng.normal(size=500)
        assert 0.0 <= soft_fd_strength(x, y) <= 1.0
