"""Tests for the closed-form results of Section 7 / Appendix G."""

from __future__ import annotations


import numpy as np
import pytest

from repro.stats.csm import segment_stream, simulate_gap_stream
from repro.stats.theory import (
    box_aspect_ratio,
    effectiveness_ratio,
    expected_keys_per_segment,
    expected_segment_count,
    grid_cells_scanned,
    keys_per_segment_variance,
    mean_first_exit_time_with_drift,
    result_area,
    scanned_area,
)


class TestAreas:
    def test_equation_3_and_4(self):
        assert result_area(10.0, 2.0, 1.0) == pytest.approx(40.0)
        assert scanned_area(10.0, 2.0, 1.0) == pytest.approx(2 * 2 * (4 + 10) / 1.0)

    def test_scanned_area_always_at_least_result_area(self):
        for q in (0.0, 1.0, 5.0, 100.0):
            for eps in (0.5, 2.0, 10.0):
                assert scanned_area(q, eps, 2.0) >= result_area(q, eps, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            result_area(1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            scanned_area(-1.0, 1.0, 1.0)


class TestEffectiveness:
    def test_equation_5_values(self):
        assert effectiveness_ratio(10.0, 5.0) == pytest.approx(10.0 / 20.0)
        assert effectiveness_ratio(0.0, 5.0) == 0.0

    def test_tends_to_one_as_margin_shrinks(self):
        values = [effectiveness_ratio(10.0, eps) for eps in (10.0, 1.0, 0.1, 0.001)]
        assert values == sorted(values)
        assert values[-1] > 0.999

    def test_matches_area_ratio(self):
        q, eps, a = 7.0, 3.0, 2.0
        assert effectiveness_ratio(q, eps) == pytest.approx(
            result_area(q, eps, a) / scanned_area(q, eps, a)
        )

    def test_bounded_in_unit_interval(self):
        for q in (0.0, 1.0, 100.0):
            for eps in (0.1, 5.0):
                assert 0.0 <= effectiveness_ratio(q, eps) <= 1.0


class TestSegmentTheorems:
    def test_theorem_71_formula(self):
        assert expected_keys_per_segment(10.0, 2.0) == pytest.approx(25.0)

    def test_theorem_73_formula(self):
        assert keys_per_segment_variance(10.0, 2.0) == pytest.approx(2 * 10**4 / (3 * 2**4))

    def test_theorem_74_formula(self):
        assert expected_segment_count(1_000, 10.0, 2.0) == pytest.approx(40.0)

    def test_driftless_limit_of_theorem_72(self):
        assert mean_first_exit_time_with_drift(10.0, 2.0, 0.0) == pytest.approx(25.0)

    def test_theorem_72_maximum_at_zero_drift(self):
        base = mean_first_exit_time_with_drift(10.0, 1.0, 0.0)
        for drift in (-0.5, -0.1, 0.1, 0.5):
            assert mean_first_exit_time_with_drift(10.0, 1.0, drift) < base

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_keys_per_segment(0.0, 1.0)
        with pytest.raises(ValueError):
            expected_segment_count(-1, 1.0, 1.0)

    def test_theorem_71_matches_simulation(self):
        """Empirical mean segment capacity approaches eps^2/sigma^2 when sigma << eps."""
        rng = np.random.default_rng(0)
        epsilon, sigma = 15.0, 1.0
        gaps = simulate_gap_stream(300_000, mean=2.0, std=sigma, rng=rng)
        lengths = np.array(segment_stream(gaps, epsilon, slope=2.0)[:-1], dtype=float)
        predicted = expected_keys_per_segment(epsilon, sigma)
        assert lengths.mean() == pytest.approx(predicted, rel=0.25)

    def test_theorem_74_matches_simulation(self):
        rng = np.random.default_rng(1)
        epsilon, sigma, n = 12.0, 1.0, 200_000
        gaps = simulate_gap_stream(n, mean=3.0, std=sigma, rng=rng)
        measured = len(segment_stream(gaps, epsilon, slope=3.0))
        predicted = expected_segment_count(n, epsilon, sigma)
        assert measured == pytest.approx(predicted, rel=0.3)


class TestGridComparison:
    def test_grid_cells_grow_as_margin_shrinks(self):
        counts = [
            grid_cells_scanned(1_000.0, 2_000.0, eps, 2.0, 10.0) for eps in (32.0, 8.0, 2.0)
        ]
        assert counts == sorted(counts)

    def test_scan_factor_scales_inversely(self):
        base = grid_cells_scanned(100.0, 100.0, 1.0, 1.0, 5.0, scan_factor=1.0)
        halved = grid_cells_scanned(100.0, 100.0, 1.0, 1.0, 5.0, scan_factor=2.0)
        assert halved == pytest.approx(base / 2.0)

    def test_box_aspect_ratio_increases_with_narrow_margin(self):
        wide = box_aspect_ratio(100.0, 100.0, 10.0, 1.0)
        narrow = box_aspect_ratio(100.0, 100.0, 1.0, 1.0)
        assert narrow > wide

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_cells_scanned(0.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            box_aspect_ratio(-1.0, 1.0, 1.0, 1.0)
