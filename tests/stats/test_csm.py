"""Tests for the Centre-Sequence Model and the gap-stream segmentation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.csm import (
    CentreSequence,
    build_centre_sequence,
    segment_lengths,
    segment_stream,
    simulate_gap_stream,
)


class TestCentreSequence:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CentreSequence(np.arange(3.0), np.arange(2.0), np.arange(3))

    def test_gap_statistics(self):
        sequence = CentreSequence(
            positions=np.arange(4.0),
            centres=np.array([0.0, 2.0, 4.0, 6.0]),
            counts=np.ones(4, dtype=np.int64),
        )
        mean, std = sequence.gap_statistics()
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.0)

    def test_empty_gaps(self):
        sequence = CentreSequence(np.array([1.0]), np.array([2.0]), np.array([1]))
        assert len(sequence.gaps) == 0
        assert sequence.gap_statistics() == (0.0, 0.0)


class TestBuildCentreSequence:
    def test_centres_approximate_linear_data(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 100.0, size=20_000)
        y = 3.0 * x + rng.normal(scale=0.5, size=20_000)
        sequence = build_centre_sequence(x, y, 50)
        predicted = 3.0 * sequence.positions
        assert np.abs(sequence.centres - predicted).max() < 2.0

    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(size=5_000)
        y = rng.uniform(size=5_000)
        sequence = build_centre_sequence(x, y, 32)
        assert int(sequence.counts.sum()) == 5_000

    def test_empty_intervals_dropped(self):
        # Data in two tight clusters: most intervals between them are empty.
        x = np.concatenate([np.full(100, 0.0), np.full(100, 100.0)])
        y = np.concatenate([np.zeros(100), np.full(100, 10.0)])
        sequence = build_centre_sequence(x, y, 50)
        assert sequence.n_intervals == 2
        assert sequence.empty_fraction(50) == pytest.approx(0.96)

    def test_degenerate_inputs(self):
        empty = build_centre_sequence(np.array([]), np.array([]), 10)
        assert empty.n_intervals == 0
        constant = build_centre_sequence(np.ones(10), np.arange(10.0), 5)
        assert constant.n_intervals == 1
        assert constant.centres[0] == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_centre_sequence(np.arange(3.0), np.arange(4.0), 4)
        with pytest.raises(ValueError):
            build_centre_sequence(np.arange(3.0), np.arange(3.0), 0)


class TestSimulateGapStream:
    @pytest.mark.parametrize("distribution", ["normal", "uniform", "exponential"])
    def test_moments_match_request(self, distribution):
        rng = np.random.default_rng(2)
        gaps = simulate_gap_stream(100_000, mean=4.0, std=0.5, rng=rng, distribution=distribution)
        assert gaps.mean() == pytest.approx(4.0, abs=0.05)
        assert gaps.std() == pytest.approx(0.5, abs=0.05)

    def test_invalid_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_gap_stream(0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            simulate_gap_stream(10, 1.0, 1.0, rng, distribution="bogus")


class TestSegmentStream:
    def test_zero_variance_stream_needs_one_segment(self):
        gaps = np.full(1_000, 2.0)
        lengths = segment_stream(gaps, epsilon=1.0)
        assert lengths == [1_000]

    def test_lengths_sum_to_stream_length(self):
        rng = np.random.default_rng(3)
        gaps = simulate_gap_stream(5_000, mean=1.0, std=0.8, rng=rng)
        lengths = segment_stream(gaps, epsilon=2.0)
        assert sum(lengths) == 5_000

    def test_larger_epsilon_needs_fewer_segments(self):
        rng = np.random.default_rng(4)
        gaps = simulate_gap_stream(20_000, mean=1.0, std=1.0, rng=rng)
        few = len(segment_stream(gaps, epsilon=20.0))
        many = len(segment_stream(gaps, epsilon=5.0))
        assert few < many

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            segment_stream(np.ones(10), epsilon=0.0)

    def test_empty_stream(self):
        assert segment_stream(np.array([]), epsilon=1.0) == []

    @given(st.integers(10, 500), st.floats(0.5, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_segments_partition_the_stream(self, n, epsilon):
        rng = np.random.default_rng(n)
        gaps = rng.normal(1.0, 1.0, size=n)
        lengths = segment_stream(gaps, epsilon=epsilon)
        assert sum(lengths) == n
        assert all(length > 0 for length in lengths)


class TestSegmentLengths:
    def test_on_real_linear_data(self):
        rng = np.random.default_rng(5)
        x = np.sort(rng.uniform(0.0, 1000.0, size=10_000))
        y = 2.0 * x + rng.normal(scale=1.0, size=10_000)
        lengths = segment_lengths(x, y, epsilon=50.0, n_intervals=500)
        assert sum(lengths) > 0
        assert len(lengths) >= 1
