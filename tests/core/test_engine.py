"""Tests for the sharded scatter-gather engine (``ShardedCOAX``).

The engine is a pure execution-layer refactor: for any shard count,
worker count and partitioning scheme, every query — scalar or batch,
before or after arbitrary interleaved CRUD, across a format-v4 save/load
round trip — must return exactly what one unsharded ``COAXIndex`` over
the same data returns.  The property tests drive that oracle equivalence;
dedicated tests pin the mapping invariants, the pruning counters, the
concurrency contract and the persistence surface.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, EngineConfig, LayoutConfig, MaintenanceConfig
from repro.core.engine import EngineClosedError, ShardedCOAX
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel
from repro.io.persistence import load_engine, load_index, save_index

#: Shard/worker grid the satellite property test runs (7 shards is prime
#: on purpose: uneven partitions, some possibly empty after deletes).
ENGINE_GRID = [(1, 1), (1, 4), (2, 1), (2, 4), (7, 1), (7, 4)]

PROBES = [
    Rectangle({"x": Interval(10.0, 60.0)}),
    Rectangle({"y": Interval(30.0, 130.0)}),
    Rectangle({"x": Interval(0.0, 100.0), "y": Interval(-1e6, 1e6)}),
    Rectangle({"y": Interval(150.0, 220.0)}),  # dependent-only: translated
    Rectangle({"x": Interval(5.0, 1.0)}),  # empty
    Rectangle({"x": Interval(1e6, 2e6)}),  # misses every shard box
    Rectangle(),
]


def linear_groups():
    return [
        FDGroup(
            predictor="x",
            dependents=("y",),
            models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
        )
    ]


def linear_table(seed: int, n: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 100.0, size=n)
    y = 2.0 * x + rng.uniform(-1.0, 1.0, size=n)
    flip = rng.random(n) < 0.15
    y[flip] = rng.uniform(0.0, 250.0, size=int(flip.sum()))
    return Table({"x": x, "y": y})


def build_engine(table: Table, n_shards: int, workers: int, **kwargs) -> ShardedCOAX:
    return ShardedCOAX(
        table,
        config=EngineConfig(n_shards=n_shards, workers=workers, **kwargs),
        groups=linear_groups(),
    )


def stats_tuple(stats):
    return (
        stats.queries,
        stats.rows_examined,
        stats.rows_matched,
        stats.cells_visited,
        stats.nodes_visited,
        stats.shards_pruned,
    )


def assert_engine_matches_oracle(engine: ShardedCOAX, oracle: COAXIndex, queries):
    """Results bit-identical to the oracle; engine batch == engine scalar
    including every ``QueryStats`` counter."""
    expected = [oracle.range_query(query) for query in queries]
    engine.stats.reset()
    scalar = [engine.range_query(query) for query in queries]
    scalar_stats = stats_tuple(engine.stats)
    engine.stats.reset()
    batch = engine.batch_range_query(queries)
    batch_stats = stats_tuple(engine.stats)
    for position, (want, got_scalar, got_batch) in enumerate(
        zip(expected, scalar, batch)
    ):
        assert np.array_equal(want, got_scalar), ("scalar", position)
        assert np.array_equal(want, got_batch), ("batch", position)
    assert scalar_stats == batch_stats
    return batch_stats


class TestConstruction:
    def test_range_partitioning_covers_every_row_once(self):
        table = linear_table(0)
        engine = build_engine(table, 4, 1)
        assert engine.n_shards == 4
        assert engine.partition_dimension == "x"
        assert len(engine.shard_boundaries) == 3
        assert np.all(np.diff(engine.shard_boundaries) >= 0)
        covered = np.sort(np.concatenate([s.row_ids for s in engine.shards]))
        assert len(covered) == table.n_rows  # locally, every shard is dense
        assert np.array_equal(np.sort(engine.row_ids), np.arange(table.n_rows))
        # Quantile boundaries give near-even shard sizes.
        sizes = [shard.n_rows for shard in engine.shards]
        assert max(sizes) - min(sizes) <= 2

    def test_hash_partitioning_spreads_by_row_id(self):
        table = linear_table(1)
        engine = build_engine(table, 3, 1, partitioning="hash")
        assert engine.partition_dimension is None
        for global_id in (0, 1, 2, 5, 399):
            shard_no = int(engine._shard_of[global_id])
            assert shard_no == global_id % 3

    def test_mapping_round_trips_every_global_id(self):
        table = linear_table(2)
        engine = build_engine(table, 7, 1)
        for shard_no, shard in enumerate(engine.shards):
            locals_ = np.arange(shard.n_rows, dtype=np.int64)
            globals_ = engine._global_of[shard_no][locals_]
            assert np.all(engine._shard_of[globals_] == shard_no)
            assert np.array_equal(engine._local_of[globals_], locals_)

    def test_more_shards_than_rows_tolerated(self):
        table = linear_table(3, n=5)
        engine = build_engine(table, 7, 1)
        assert engine.n_rows == 5
        assert np.array_equal(
            np.sort(engine.range_query(Rectangle())), np.arange(5, dtype=np.int64)
        )

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(n_shards=0)
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            EngineConfig(partitioning="modulo")

    def test_shared_groups_across_shards(self):
        engine = build_engine(linear_table(4), 3, 1)
        for shard in engine.shards:
            assert [g.predictor for g in shard.groups] == ["x"]


class TestPruning:
    def test_missed_boxes_are_pruned_and_counted(self):
        table = linear_table(5)
        engine = build_engine(table, 4, 1)
        engine.stats.reset()
        # x in [0, 10] lives entirely in the first range shard.
        hits = engine.range_query(Rectangle({"x": Interval(0.0, 10.0)}))
        expected = table.select(Rectangle({"x": Interval(0.0, 10.0)}))
        assert np.array_equal(np.sort(hits), expected)
        assert engine.stats.shards_pruned >= 2
        assert engine.stats.queries == 1

    def test_unsharded_indexes_never_touch_the_counter(self):
        oracle = COAXIndex(linear_table(6), groups=linear_groups())
        oracle.range_query(Rectangle({"x": Interval(0.0, 10.0)}))
        assert oracle.stats.shards_pruned == 0

    def test_pruning_cannot_hide_pending_rows(self):
        table = linear_table(7)
        engine = build_engine(table, 4, 1)
        # Insert far outside every build-time bounding box.
        row_id = engine.insert({"x": 1_000.0, "y": 5_000.0})
        hits = engine.range_query(Rectangle({"x": Interval(900.0, 1_100.0)}))
        assert hits.tolist() == [row_id]
        # After compaction the row lives in a main structure; still found.
        engine.compact()
        hits = engine.range_query(Rectangle({"x": Interval(900.0, 1_100.0)}))
        assert hits.tolist() == [row_id]

    def test_pruning_recovers_after_drain_and_refill(self):
        """Regression: a drained delta buffer must stop inflating the hull.

        Far-away inserts grow a shard's delta box; once they are all
        deleted the box must reset, so later nearby inserts leave a tight
        hull and far-away queries prune the shard again instead of
        visiting it forever.
        """
        table = linear_table(19)
        engine = build_engine(table, 4, 1)
        # A region between the two far inserts below: always empty, but
        # inside the hull their union spans.
        probe = Rectangle({"x": Interval(600.0, 800.0)})

        def pruned_on_probe() -> int:
            engine.stats.reset()
            assert len(engine.range_query(probe)) == 0
            return engine.stats.shards_pruned

        baseline = pruned_on_probe()
        assert baseline == 4  # every shard misses the probe rectangle
        # Inflate the last shard's delta hull (both rows route above the
        # last range boundary), then drain it completely.
        ids = engine.insert_batch({"x": [500.0, 1_000.0], "y": [10.0, 20.0]})
        assert pruned_on_probe() < baseline
        assert engine.delete_batch(ids) == 2
        # Refill the same shard's buffer with nearby rows only.
        engine.insert_batch({"x": [99.0], "y": [198.0]})
        assert pruned_on_probe() == baseline

    def test_nan_batches_rejected_before_reaching_any_shard(self):
        """Engine-level pruning can never be poisoned through the insert
        path: non-finite batches are rejected up front with the typed
        error and no shard state changes."""
        from repro.core.delta import NonFiniteBatchError

        table = linear_table(20)
        engine = build_engine(table, 2, 1)
        before = engine.next_row_id
        with pytest.raises(NonFiniteBatchError):
            engine.insert_batch({"x": [1.0, np.nan], "y": [2.0, 4.0]})
        assert engine.next_row_id == before
        assert engine.n_pending == 0

    def test_nan_delta_rows_are_never_hidden_by_pruning(self):
        """Even if NaN data reaches a delta buffer directly (bypassing
        coerce_batch, as a hand-built restore could), the hull falls back
        to conservative bounds and queries still find the live rows."""
        table = linear_table(21)
        engine = build_engine(table, 4, 1)
        shard = engine.shards[3]
        local_id = shard.next_row_id
        shard.delta.append_batch(
            {"x": np.array([1_000.0]), "y": np.array([np.nan])},
            np.array([local_id], dtype=np.int64),
        )
        shard._next_row_id = local_id + 1
        engine._shard_of = np.concatenate([engine._shard_of, [3]])
        engine._local_of = np.concatenate([engine._local_of, [local_id]])
        engine._global_of[3] = np.concatenate(
            [engine._global_of[3], [engine.next_row_id]]
        )
        global_id = engine._next_global_id
        engine._next_global_id += 1
        hits = engine.range_query(Rectangle({"x": Interval(900.0, 1_100.0)}))
        assert hits.tolist() == [global_id]


class TestSingleShardParity:
    def test_one_shard_engine_equals_flat_coax(self):
        table = linear_table(8)
        oracle = COAXIndex(table, groups=linear_groups())
        engine = build_engine(table, 1, 1)
        batch = {"x": [10.0, 20.0], "y": [20.1, 700.0]}
        assert np.array_equal(oracle.insert_batch(batch), engine.insert_batch(batch))
        assert_engine_matches_oracle(engine, oracle, PROBES)
        assert engine.n_pending == oracle.n_pending
        assert engine.n_live == oracle.n_live


class TestEquivalenceProperty:
    """Satellite: 1/2/7 shards x 1/4 workers, interleaved CRUD, stats
    parity, and a v4 save/load round trip — all bit-identical to the
    unsharded COAX oracle.

    ``QueryStats`` parity here means: (a) engine batch and engine scalar
    execution leave identical counters, (b) counters are invariant to the
    worker count (parallel scatter is deterministic), and (c) ``queries``
    and ``rows_matched`` equal the oracle's.  ``rows_examined`` /
    ``cells_visited`` legitimately differ from the oracle's in either
    direction: per-shard quantile grids draw different cell boundaries
    (usually fewer candidates), while engine-level pruning skips whole
    shards including their pending scans.
    """

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_interleaved_crud_matches_oracle(self, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        table = linear_table(seed)
        oracle = COAXIndex(table, groups=linear_groups())
        engines = {
            (shards, workers): build_engine(table, shards, workers)
            for shards, workers in ENGINE_GRID
        }
        reference_ids = set(range(table.n_rows))
        try:
            for round_no in range(3):
                k = int(rng.integers(5, 60))
                bx = rng.uniform(0.0, 100.0, size=k)
                by = 2.0 * bx + rng.uniform(-10.0, 10.0, size=k)
                expected_ids = oracle.insert_batch({"x": bx, "y": by})
                reference_ids.update(int(i) for i in expected_ids)
                live = np.array(sorted(reference_ids), dtype=np.int64)
                doomed = rng.choice(
                    live, size=min(len(live), int(rng.integers(1, 50))), replace=False
                )
                reference_ids.difference_update(int(i) for i in doomed)
                survivors = np.array(sorted(reference_ids), dtype=np.int64)
                targets = np.unique(
                    rng.choice(
                        survivors,
                        size=min(len(survivors), int(rng.integers(1, 30))),
                        replace=False,
                    )
                )
                ux = rng.uniform(0.0, 100.0, size=len(targets))
                uy = 2.0 * ux + rng.uniform(-10.0, 10.0, size=len(targets))
                deleted_oracle = oracle.delete_batch(doomed)
                oracle.update_batch(targets, {"x": ux, "y": uy})
                if round_no == 1:
                    oracle.compact()
                per_shardcount_stats = {}
                for (shards, workers), engine in engines.items():
                    got_ids = engine.insert_batch({"x": bx, "y": by})
                    assert np.array_equal(got_ids, expected_ids), (shards, workers)
                    assert engine.delete_batch(doomed) == deleted_oracle
                    engine.update_batch(targets, {"x": ux, "y": uy})
                    if round_no == 1:
                        engine.compact()
                    engine_stats = assert_engine_matches_oracle(
                        engine, oracle, PROBES
                    )
                    # Worker count must not change any counter.
                    key = shards
                    if key in per_shardcount_stats:
                        assert per_shardcount_stats[key] == engine_stats, (
                            shards,
                            workers,
                        )
                    per_shardcount_stats[key] = engine_stats
                    assert engine.n_pending == oracle.n_pending, (shards, workers)
                    assert engine.n_live == oracle.n_live, (shards, workers)
                # Logical-query and matched counters agree with the oracle.
                oracle.stats.reset()
                oracle.batch_range_query(PROBES)
                for shards, stats in per_shardcount_stats.items():
                    assert stats[0] == oracle.stats.queries, shards
                    assert stats[2] == oracle.stats.rows_matched, shards
            # Format v4 round trip of the final (un-compacted) CRUD state.
            engine = engines[(7, 4)]
            path = tmp_path_factory.mktemp("engine") / "engine.coax.npz"
            loaded = load_index(save_index(engine, path))
            assert isinstance(loaded, ShardedCOAX)
            assert loaded.n_shards == 7
            assert loaded.next_row_id == oracle.next_row_id
            assert loaded.n_pending == oracle.n_pending
            assert loaded.n_live == oracle.n_live
            assert_engine_matches_oracle(loaded, oracle, PROBES)
            loaded.compact()
            oracle_copy_results = [oracle.range_query(q) for q in PROBES]
            for want, got in zip(
                oracle_copy_results, [loaded.range_query(q) for q in PROBES]
            ):
                assert np.array_equal(want, got)
        finally:
            for engine in engines.values():
                engine.close()


class TestReLayoutEquivalenceProperty:
    """Satellite: the workload-adaptive re-layout is invisible to query
    results.  Engines at 1/2/7 shards run hot skewed traffic (feeding
    the layout sketch) interleaved with CRUD and compactions (the
    re-layout points); after every round each engine must stay
    bit-identical to the unsharded COAX oracle, across every adopted
    boundary change and any shard-count change within the budget.
    """

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_relayout_under_interleaved_crud_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        table = linear_table(seed)
        oracle = COAXIndex(table, groups=linear_groups())
        layout = LayoutConfig(
            enabled=True, sketch_size=64, min_queries=8, min_gain=1.0, max_shards=8
        )
        engines = {
            shards: build_engine(table, shards, 1, layout=layout)
            for shards in (1, 2, 7)
        }
        reference_ids = set(range(table.n_rows))
        try:
            for round_no in range(3):
                # Hot traffic in one narrow random region: this is what
                # the monitor learns from, and it must come back exactly
                # the oracle's rows while doing so.
                low = float(rng.uniform(0.0, 80.0))
                hot = [
                    Rectangle(
                        {
                            "x": Interval(low + d, low + d + 3.0),
                            "y": Interval(2.0 * (low + d) - 2.0, 2.0 * (low + d) + 8.0),
                        }
                    )
                    for d in np.linspace(0.0, 10.0, 12)
                ]
                expected_hot = [oracle.range_query(query) for query in hot]
                for engine in engines.values():
                    for want, got in zip(expected_hot, engine.batch_range_query(hot)):
                        assert np.array_equal(want, got)
                # Interleaved CRUD, mirrored into the oracle.
                k = int(rng.integers(5, 40))
                bx = rng.uniform(low, low + 12.0, size=k)
                by = 2.0 * bx + rng.uniform(-1.0, 1.0, size=k)
                expected_ids = oracle.insert_batch({"x": bx, "y": by})
                reference_ids.update(int(i) for i in expected_ids)
                live = np.array(sorted(reference_ids), dtype=np.int64)
                doomed = rng.choice(
                    live, size=min(len(live), int(rng.integers(1, 30))), replace=False
                )
                reference_ids.difference_update(int(i) for i in doomed)
                survivors = np.array(sorted(reference_ids), dtype=np.int64)
                targets = np.unique(
                    rng.choice(
                        survivors,
                        size=min(len(survivors), int(rng.integers(1, 20))),
                        replace=False,
                    )
                )
                ux = rng.uniform(0.0, 100.0, size=len(targets))
                uy = 2.0 * ux + rng.uniform(-1.0, 1.0, size=len(targets))
                deleted_oracle = oracle.delete_batch(doomed)
                oracle.update_batch(targets, {"x": ux, "y": uy})
                oracle.compact()
                for shards, engine in engines.items():
                    got_ids = engine.insert_batch({"x": bx, "y": by})
                    assert np.array_equal(got_ids, expected_ids), shards
                    assert engine.delete_batch(doomed) == deleted_oracle, shards
                    engine.update_batch(targets, {"x": ux, "y": uy})
                    engine.compact()  # the re-layout point
                    assert_engine_matches_oracle(engine, oracle, PROBES)
                    assert engine.n_pending == oracle.n_pending, shards
                    assert engine.n_live == oracle.n_live, shards
            # The concentrated workload at min_gain=1.0 must have made at
            # least one engine adopt — otherwise this property never
            # exercised a re-layout at all.
            epochs = {
                shards: engine.layout.epoch if engine.layout is not None else 0
                for shards, engine in engines.items()
            }
            assert any(epoch >= 1 for epoch in epochs.values()), epochs
        finally:
            for engine in engines.values():
                engine.close()


class TestProcessExecutor:
    """``executor="process"``: batch scatters run on worker processes
    attached to mmap-backed shard replicas.  Must be bit-identical — ids,
    order AND every ``QueryStats`` counter — to the thread and the serial
    execution of the same engine shape, under interleaved CRUD + compact
    (mutations bump the shard generations, so the workers re-attach)."""

    def test_executor_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(executor="fibers")
        assert EngineConfig(executor="process").executor == "process"
        assert EngineConfig().executor == "thread"

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_interleaved_crud_parity_across_executors(self, seed):
        rng = np.random.default_rng(seed)
        table = linear_table(seed)
        oracle = COAXIndex(table, groups=linear_groups())
        process = build_engine(table, 4, 4, executor="process")
        threaded = build_engine(table, 4, 4, executor="thread")
        serial = build_engine(table, 4, 1)
        engines = [process, threaded, serial]
        try:
            for round_no in range(2):
                k = int(rng.integers(5, 40))
                bx = rng.uniform(0.0, 100.0, size=k)
                by = 2.0 * bx + rng.uniform(-10.0, 10.0, size=k)
                new_ids = oracle.insert_batch({"x": bx, "y": by})
                live = oracle.live_row_ids()
                doomed = rng.choice(
                    live, size=min(len(live), int(rng.integers(1, 30))), replace=False
                )
                deleted = oracle.delete_batch(doomed)
                survivors = oracle.live_row_ids()
                targets = np.unique(
                    rng.choice(
                        survivors,
                        size=min(len(survivors), int(rng.integers(1, 20))),
                        replace=False,
                    )
                )
                ux = rng.uniform(0.0, 100.0, size=len(targets))
                uy = 2.0 * ux + rng.uniform(-10.0, 10.0, size=len(targets))
                oracle.update_batch(targets, {"x": ux, "y": uy})
                if round_no == 1:
                    oracle.compact()
                for engine in engines:
                    assert np.array_equal(
                        engine.insert_batch({"x": bx, "y": by}), new_ids
                    )
                    assert engine.delete_batch(doomed) == deleted
                    engine.update_batch(targets, {"x": ux, "y": uy})
                    if round_no == 1:
                        engine.compact()
                # assert_engine_matches_oracle also pins batch == scalar
                # counters; on the process engine the batch path runs on
                # worker processes while the scalar path stays in-process,
                # so this is the cross-executor stats-parity check.
                round_stats = [
                    assert_engine_matches_oracle(engine, oracle, PROBES)
                    for engine in engines
                ]
                assert round_stats[0] == round_stats[1] == round_stats[2]
        finally:
            for engine in engines:
                engine.close()

    def test_close_releases_workers_processes_and_fds(self):
        """Satellite regression: after ``close()`` no scatter threads, no
        worker processes and no spill directory (or fds on it) survive."""
        gc.collect()
        baseline_fds = set(os.listdir("/proc/self/fd"))
        engine = build_engine(linear_table(40), 4, 4, executor="process")
        engine.insert_batch({"x": [10.0, 90.0], "y": [20.0, 180.0]})
        results = engine.batch_range_query(PROBES)  # spills + starts the pool
        assert engine._process_pools is not None
        spill_dir = engine._spill_dir
        assert spill_dir is not None and os.path.isdir(spill_dir)
        assert multiprocessing.active_children()
        engine.close()
        gc.collect()
        assert not multiprocessing.active_children()
        assert not any(
            thread.name.startswith("sharded-coax")
            for thread in threading.enumerate()
        )
        assert engine._spill_dir is None
        assert not os.path.isdir(spill_dir)
        leaked = set(os.listdir("/proc/self/fd")) - baseline_fds
        assert not leaked, f"fds leaked across close(): {sorted(leaked)}"
        # Queries stay usable after close (pools recreate on demand) and
        # still return the same results.
        again = engine.batch_range_query(PROBES)
        for want, got in zip(results, again):
            assert np.array_equal(want, got)
        engine.close()

    def test_context_manager_closes(self):
        with build_engine(linear_table(41), 2, 2, executor="process") as engine:
            engine.batch_range_query(PROBES)
        assert engine._process_pools is None
        assert engine._spill_dir is None


class TestAdaptiveMaintenanceCoordination:
    """Drifting stream + forced model refresh across the shard grid.

    The engine owns ONE shared monitor; a full compaction refreshes the
    models and pushes them to every shard, so (a) results stay
    bit-identical to the adaptive flat COAX oracle and to the delete-aware
    logical store at 1/2/7 shards, before and after every refresh, (b) all
    shards carry identical groups at all times, and (c) a format-v5 round
    trip restores the shared monitor.
    """

    ADAPTIVE = COAXConfig(
        maintenance=MaintenanceConfig(enabled=True, min_observations=50)
    )

    DRIFT_PROBES = PROBES + [
        Rectangle({"y": Interval(150.0, 330.0)}),  # the drifted band
    ]

    def _reference_results(self, reference, query):
        return np.array(
            sorted(
                row_id
                for row_id, record in reference.items()
                if all(
                    query.interval(name).contains_value(value)
                    for name, value in record.items()
                )
            ),
            dtype=np.int64,
        )

    def test_shards_never_own_a_manager(self):
        engine = ShardedCOAX(
            linear_table(30),
            config=EngineConfig(n_shards=3, workers=1, coax=self.ADAPTIVE),
            groups=linear_groups(),
        )
        assert engine.maintenance is not None
        assert all(shard.maintenance is None for shard in engine.shards)
        # The shard configs carry maintenance disabled, so even a direct
        # shard compaction can never refresh models on its own.
        assert all(
            not shard.config.maintenance.enabled for shard in engine.shards
        )

    def test_single_shard_compact_never_refreshes(self):
        rng = np.random.default_rng(31)
        engine = ShardedCOAX(
            linear_table(31),
            config=EngineConfig(n_shards=2, workers=1, coax=self.ADAPTIVE),
            groups=linear_groups(),
        )
        bx = rng.uniform(0.0, 100.0, size=200)
        engine.insert_batch({"x": bx, "y": 2.0 * bx + 80.0})
        before = engine.groups
        engine.compact(shard=0)
        assert engine.groups == before  # groups untouched
        assert engine.maintenance.monitor("x->y").epoch == 0
        engine.compact()  # the full compaction refreshes
        assert engine.maintenance.monitor("x->y").epoch >= 1
        engine.close()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_drifting_crud_matches_oracle_across_shards(
        self, seed, tmp_path_factory
    ):
        rng = np.random.default_rng(seed)
        table = linear_table(seed)
        oracle = COAXIndex(table, config=self.ADAPTIVE, groups=linear_groups())
        engines = {
            (shards, workers): ShardedCOAX(
                table,
                config=EngineConfig(
                    n_shards=shards, workers=workers, coax=self.ADAPTIVE
                ),
                groups=linear_groups(),
            )
            for shards, workers in [(1, 1), (2, 1), (7, 1), (7, 4)]
        }
        x, y = table.column("x"), table.column("y")
        reference = {
            i: {"x": float(x[i]), "y": float(y[i])} for i in range(table.n_rows)
        }
        try:
            for round_no in range(3):
                shift = 50.0 * (round_no + 1)  # far beyond the +/-1.5 band
                k = int(rng.integers(60, 120))
                bx = rng.uniform(0.0, 100.0, size=k)
                by = 2.0 * bx + shift + rng.uniform(-1.0, 1.0, size=k)
                expected_ids = oracle.insert_batch({"x": bx, "y": by})
                for j, row_id in enumerate(expected_ids):
                    reference[int(row_id)] = {"x": float(bx[j]), "y": float(by[j])}
                live = np.array(sorted(reference), dtype=np.int64)
                doomed = rng.choice(
                    live, size=min(len(live), int(rng.integers(1, 40))), replace=False
                )
                oracle.delete_batch(doomed)
                for row_id in doomed:
                    reference.pop(int(row_id))
                for engine in engines.values():
                    got = engine.insert_batch({"x": bx, "y": by})
                    assert np.array_equal(got, expected_ids)
                    engine.delete_batch(doomed)
                # Bit-identical to the delete-aware store BEFORE refresh.
                for query in self.DRIFT_PROBES:
                    expected = self._reference_results(reference, query)
                    assert np.array_equal(
                        np.sort(oracle.range_query(query)), expected
                    )
                    for key, engine in engines.items():
                        assert np.array_equal(
                            np.sort(engine.range_query(query)), expected
                        ), key
                oracle.compact()
                for engine in engines.values():
                    engine.compact()  # coordinated refresh happens here
                # ... and AFTER it, including engine batch == scalar and
                # worker-invariance via the shared helper.
                for (shards, workers), engine in engines.items():
                    assert_engine_matches_oracle(
                        engine, oracle, self.DRIFT_PROBES
                    )
                    # Every shard carries the engine's refreshed groups.
                    for shard in engine.shards:
                        assert shard.groups == engine.groups, (shards, workers)
            # The drift forced at least one refresh everywhere.
            assert oracle.maintenance.monitor("x->y").epoch >= 1
            for engine in engines.values():
                assert engine.maintenance.monitor("x->y").epoch >= 1
            # Format v5 round trip of the adapted sharded state.
            engine = engines[(7, 1)]
            path = tmp_path_factory.mktemp("drift-engine") / "engine.npz"
            loaded = load_index(save_index(engine, path))
            assert isinstance(loaded, ShardedCOAX)
            assert loaded.maintenance is not None
            assert np.allclose(
                loaded.maintenance.monitor("x->y").state_vector(),
                engine.maintenance.monitor("x->y").state_vector(),
            )
            assert loaded.groups == engine.groups
            for query in self.DRIFT_PROBES:
                assert np.array_equal(
                    np.sort(loaded.range_query(query)),
                    self._reference_results(reference, query),
                )
        finally:
            for engine in engines.values():
                engine.close()


class TestConcurrency:
    def test_write_lock_exposed_everywhere(self):
        table = linear_table(9)
        engine = build_engine(table, 2, 1)
        assert engine.write_lock is engine.write_lock
        for shard in engine.shards:
            assert shard.write_lock is shard.write_lock

    def test_concurrent_inserts_serialise(self):
        table = linear_table(10)
        engine = build_engine(table, 4, 2)
        n_threads, per_thread = 4, 25
        errors = []

        def writer(thread_no: int):
            rng = np.random.default_rng(thread_no)
            try:
                for _ in range(per_thread):
                    x = rng.uniform(0.0, 100.0, size=3)
                    engine.insert_batch({"x": x, "y": 2.0 * x})
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total_new = n_threads * per_thread * 3
        assert engine.next_row_id == table.n_rows + total_new
        # Every id assigned exactly once and every record visible.
        assert len(engine.range_query(Rectangle())) == table.n_rows + total_new
        engine.close()

    def test_readers_during_adaptive_refresh_see_consistent_state(self):
        """Queries exclude the coordinated model refresh: a reader can
        never translate with one generation of groups while shards
        execute another (the batch path would lose rows otherwise)."""
        table = linear_table(22)
        engine = ShardedCOAX(
            table,
            config=EngineConfig(
                n_shards=2,
                workers=2,
                coax=COAXConfig(
                    maintenance=MaintenanceConfig(
                        enabled=True, min_observations=50
                    )
                ),
            ),
            groups=linear_groups(),
        )
        everything = Rectangle()
        expected = table.n_rows
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    assert len(engine.range_query(everything)) >= expected
                    engine.batch_range_query([everything])
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            rng = np.random.default_rng(0)
            for round_no in range(4):
                bx = rng.uniform(0.0, 100.0, size=100)
                engine.insert_batch(
                    {"x": bx, "y": 2.0 * bx + 60.0 * (round_no + 1)}
                )
                expected = len(engine.range_query(everything))
                engine.compact()  # refreshes (refit) under drift
        finally:
            stop.set()
            thread.join()
        assert not errors
        assert engine.maintenance.monitor("x->y").epoch >= 1
        engine.close()

    def test_readers_during_compaction_see_consistent_state(self):
        table = linear_table(11)
        engine = build_engine(table, 2, 2)
        x = np.random.default_rng(0).uniform(0.0, 100.0, size=200)
        engine.insert_batch({"x": x, "y": 2.0 * x})
        everything = Rectangle()
        expected = len(engine.range_query(everything))
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    assert len(engine.range_query(everything)) == expected
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(5):
                engine.compact()
        finally:
            stop.set()
            thread.join()
        assert not errors
        engine.close()


class TestEnginePersistence:
    def test_v4_round_trip_preserves_crud_state(self, tmp_path):
        table = linear_table(12)
        engine = build_engine(table, 3, 1)
        engine.insert_batch({"x": [10.0, 50.0], "y": [20.2, 700.0]})
        engine.delete_batch(np.arange(0, 100, 7, dtype=np.int64))
        engine.update_batch(np.array([200], dtype=np.int64), {"x": [42.0], "y": [84.1]})
        path = save_index(engine, tmp_path / "engine.npz")
        loaded = load_index(path)
        assert isinstance(loaded, ShardedCOAX)
        assert loaded.n_shards == engine.n_shards
        assert loaded.partition_dimension == engine.partition_dimension
        assert np.allclose(loaded.shard_boundaries, engine.shard_boundaries)
        assert loaded.n_pending == engine.n_pending
        assert loaded.n_tombstoned == engine.n_tombstoned
        for query in PROBES:
            assert np.array_equal(
                np.sort(loaded.range_query(query)),
                np.sort(engine.range_query(query)),
            )
        # Insert routing keeps working against the restored boundaries.
        assert loaded.insert({"x": 50.0, "y": 100.0}) == engine.next_row_id

    def test_load_engine_wraps_flat_archives(self, tmp_path):
        table = linear_table(13)
        index = COAXIndex(table, groups=linear_groups())
        index.insert_batch({"x": [10.0], "y": [700.0]})
        path = save_index(index, tmp_path / "flat.npz")
        engine = load_engine(path, workers=2)
        assert isinstance(engine, ShardedCOAX)
        assert engine.n_shards == 1
        assert engine.workers == 2
        assert engine.n_pending == index.n_pending
        for query in PROBES:
            assert np.array_equal(
                np.sort(engine.range_query(query)),
                np.sort(index.range_query(query)),
            )

    def test_load_engine_workers_override_on_v4(self, tmp_path):
        engine = build_engine(linear_table(14), 2, 1)
        path = save_index(engine, tmp_path / "engine.npz")
        assert load_engine(path).workers == 1
        assert load_engine(path, workers=4).workers == 4


class TestDelegatedAPI:
    def test_delete_where_and_rows_live(self):
        table = linear_table(15)
        engine = build_engine(table, 3, 1)
        box = Rectangle({"x": Interval(0.0, 20.0)})
        doomed = engine.delete_where(box)
        assert len(doomed) > 0
        assert not engine.rows_live(doomed).any()
        assert len(engine.range_query(box)) == 0
        # delete_rows routes through the same path (idempotent).
        assert engine.delete_rows(doomed) == 0

    def test_update_batch_is_atomic_across_shards(self):
        table = linear_table(16)
        engine = build_engine(table, 4, 1)
        engine.delete(5)
        before = {
            int(i): engine.rows_live(np.array([i], dtype=np.int64))[0]
            for i in range(10)
        }
        with pytest.raises(KeyError):
            # id 5 is dead: nothing of the batch may apply, on any shard.
            engine.update_batch(
                np.array([0, 5], dtype=np.int64),
                {"x": [1.0, 2.0], "y": [2.0, 4.0]},
            )
        hits = engine.range_query(Rectangle({"x": Interval(0.9, 1.1)}))
        assert 0 not in hits.tolist()
        for i, was_live in before.items():
            assert engine.rows_live(np.array([i], dtype=np.int64))[0] == was_live

    def test_directory_bytes_include_mapping(self):
        engine = build_engine(linear_table(17), 2, 1)
        breakdown = engine.memory_breakdown()
        assert set(breakdown) == {"shard0", "shard1", "mapping"}
        assert engine.directory_bytes() == sum(breakdown.values())

    def test_column_is_not_global(self):
        engine = build_engine(linear_table(18), 2, 1)
        with pytest.raises(NotImplementedError):
            engine.column("x")


class TestShutdown:
    """Terminal shutdown: typed ``EngineClosedError``, unlike reusable close()."""

    def test_shutdown_rejects_reads_and_writes(self):
        engine = build_engine(linear_table(30), 2, 2)
        probe = Rectangle({"x": Interval(10.0, 60.0)})
        assert len(engine.range_query(probe)) > 0
        assert not engine.closed
        engine.shutdown()
        assert engine.closed
        with pytest.raises(EngineClosedError):
            engine.range_query(probe)
        with pytest.raises(EngineClosedError):
            engine.batch_range_query([probe])
        with pytest.raises(EngineClosedError):
            engine.batch_range_query_attributed([probe])
        with pytest.raises(EngineClosedError):
            engine.insert_batch({"x": [1.0], "y": [2.0]})
        with pytest.raises(EngineClosedError):
            engine.delete_batch(np.array([0], dtype=np.int64))
        with pytest.raises(EngineClosedError):
            engine.compact()

    def test_shutdown_is_idempotent(self):
        engine = build_engine(linear_table(31), 2, 1)
        engine.shutdown()
        engine.shutdown()
        assert engine.closed

    def test_close_stays_reusable_but_shutdown_is_terminal(self):
        engine = build_engine(linear_table(32), 2, 2)
        probe = Rectangle({"x": Interval(10.0, 60.0)})
        before = engine.range_query(probe)
        engine.close()
        # close() releases pools but the engine recreates them on demand.
        assert np.array_equal(engine.range_query(probe), before)
        engine.shutdown()
        with pytest.raises(EngineClosedError):
            engine.range_query(probe)

    def test_concurrent_readers_get_typed_error_not_crash(self):
        """Readers racing shutdown() see EngineClosedError, never a raw
        RuntimeError from a dead worker pool."""
        engine = build_engine(linear_table(33, n=1200), 4, 4)
        probe = Rectangle({"x": Interval(0.0, 100.0)})
        stop = threading.Event()
        bad: list = []

        def hammer():
            while not stop.is_set():
                try:
                    engine.range_query(probe)
                except EngineClosedError:
                    return
                except BaseException as exc:  # noqa: BLE001 - the assertion
                    bad.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        engine.shutdown()
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not bad, f"reader crashed with {bad!r}"


class TestAttribution:
    """Per-query stats attribution on the flat batch path."""

    def test_attributed_results_match_plain_batch(self):
        engine = build_engine(linear_table(34), 3, 2)
        plain = engine.batch_range_query(PROBES)
        attributed, stats = engine.batch_range_query_attributed(PROBES)
        assert len(attributed) == len(stats) == len(PROBES)
        for want, got in zip(plain, attributed):
            assert np.array_equal(want, got)

    def test_attribution_sums_reproduce_global_counters(self):
        """The even-split attribution is *honest*: per-query stats add up
        to the engine's batch-global counters exactly."""
        for n_shards, workers in [(1, 1), (3, 2), (7, 1)]:
            engine = build_engine(linear_table(35, n=900), n_shards, workers)
            engine.stats.reset()
            results, stats = engine.batch_range_query_attributed(PROBES)
            total = engine.stats
            assert sum(s.queries for s in stats) == total.queries
            assert sum(s.rows_examined for s in stats) == total.rows_examined
            assert sum(s.rows_matched for s in stats) == total.rows_matched
            assert sum(s.cells_visited for s in stats) == total.cells_visited
            assert sum(s.nodes_visited for s in stats) == total.nodes_visited
            assert sum(s.shards_pruned for s in stats) == total.shards_pruned

    def test_exact_fields_are_exact(self):
        engine = build_engine(linear_table(36), 4, 1)
        results, stats = engine.batch_range_query_attributed(PROBES)
        for result, s in zip(results, stats):
            assert s.rows_matched == len(result)
        # The miss-everything probe prunes all four shards; its pruning is
        # attributed to it alone, not smeared across the batch.
        miss = PROBES.index(Rectangle({"x": Interval(1e6, 2e6)}))
        assert stats[miss].shards_pruned == 4
        empty = PROBES.index(Rectangle({"x": Interval(5.0, 1.0)}))
        assert stats[empty].queries == 0  # dead on arrival, no work
        assert stats[empty].rows_examined == 0

    def test_empty_batch(self):
        engine = build_engine(linear_table(37), 2, 1)
        results, stats = engine.batch_range_query_attributed([])
        assert results == [] and stats == []

    def test_all_dead_batch_attributes_zero_work(self):
        engine = build_engine(linear_table(38), 2, 1)
        dead = [Rectangle({"x": Interval(5.0, 1.0)})] * 3
        results, stats = engine.batch_range_query_attributed(dead)
        assert all(len(r) == 0 for r in results)
        assert all(stats_tuple(s) == (0, 0, 0, 0, 0, 0) for s in stats)
