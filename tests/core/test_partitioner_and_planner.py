"""Tests for the inlier/outlier partition and the query planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitioner import partition_rows
from repro.core.planner import bounding_box_of_rows, plan_query
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel


@pytest.fixture(scope="module")
def fd_table() -> Table:
    rng = np.random.default_rng(0)
    n = 2_000
    x = rng.uniform(0.0, 100.0, size=n)
    y = 3.0 * x + rng.uniform(-1.0, 1.0, size=n)
    # Make the last 200 records hard outliers.
    y[-200:] = rng.uniform(500.0, 1_000.0, size=200)
    return Table({"x": x, "y": y})


@pytest.fixture(scope="module")
def group() -> FDGroup:
    return FDGroup(
        predictor="x",
        dependents=("y",),
        models={"y": LinearFDModel(3.0, 0.0, 1.5, 1.5)},
    )


class TestPartition:
    def test_partition_is_exhaustive_and_disjoint(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        combined = np.sort(np.concatenate([result.inlier_ids, result.outlier_ids]))
        assert np.array_equal(combined, np.arange(fd_table.n_rows))
        assert len(np.intersect1d(result.inlier_ids, result.outlier_ids)) == 0

    def test_hard_outliers_are_caught(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        assert set(range(fd_table.n_rows - 200, fd_table.n_rows)) <= set(result.outlier_ids)

    def test_primary_ratio(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        assert result.primary_ratio == pytest.approx(len(result.inlier_ids) / fd_table.n_rows)
        assert 0.85 <= result.primary_ratio <= 0.92

    def test_per_model_fractions_recorded(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        assert "x->y" in result.per_model_inlier_fraction
        assert 0.0 <= result.per_model_inlier_fraction["x->y"] <= 1.0

    def test_no_groups_means_all_inliers(self, fd_table):
        result = partition_rows(fd_table, [])
        assert len(result.outlier_ids) == 0
        assert result.primary_ratio == 1.0

    def test_row_subset(self, fd_table, group):
        subset = np.arange(100, dtype=np.int64)
        result = partition_rows(fd_table, [group], row_ids=subset)
        assert result.n_rows == 100
        assert set(result.inlier_ids) | set(result.outlier_ids) == set(subset)

    def test_empty_subset(self, fd_table, group):
        result = partition_rows(fd_table, [group], row_ids=np.empty(0, dtype=np.int64))
        assert result.n_rows == 0
        assert result.primary_ratio == 0.0

    def test_inliers_respect_every_margin(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        model = group.model_for("y")
        x = fd_table.column("x")[result.inlier_ids]
        y = fd_table.column("y")[result.inlier_ids]
        assert bool(np.all(model.within_margin(x, y)))


class TestBoundingBox:
    def test_bounds(self, fd_table):
        box = bounding_box_of_rows(fd_table, np.array([0, 1, 2], dtype=np.int64))
        assert box is not None
        lows, highs = box
        assert lows["x"] <= highs["x"]

    def test_empty_rows(self, fd_table):
        assert bounding_box_of_rows(fd_table, np.empty(0, dtype=np.int64)) is None


class TestPlanner:
    def test_both_indexes_used_for_ordinary_query(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        plan = plan_query(
            Rectangle({"x": Interval(10.0, 20.0)}),
            [group],
            primary_box=bounding_box_of_rows(fd_table, result.inlier_ids),
            outlier_box=bounding_box_of_rows(fd_table, result.outlier_ids),
        )
        assert plan.use_primary and plan.use_outlier

    def test_primary_skipped_when_translation_is_empty(self, fd_table, group):
        result = partition_rows(fd_table, [group])
        # x small forces y near 3x; asking for y in the outlier band cannot
        # match any inlier.
        query = Rectangle({"x": Interval(0.0, 10.0), "y": Interval(700.0, 800.0)})
        plan = plan_query(
            query,
            [group],
            primary_box=bounding_box_of_rows(fd_table, result.inlier_ids),
            outlier_box=bounding_box_of_rows(fd_table, result.outlier_ids),
        )
        assert not plan.use_primary
        assert plan.use_outlier
        assert "primary" in plan.skip_reasons

    def test_outlier_skipped_when_empty(self, fd_table, group):
        plan = plan_query(
            Rectangle({"x": Interval(0.0, 1.0)}),
            [group],
            primary_box=bounding_box_of_rows(fd_table, np.arange(10, dtype=np.int64)),
            outlier_box=None,
        )
        assert not plan.use_outlier
        assert plan.skip_reasons["outlier"] == "outlier index is empty"

    def test_query_outside_primary_box(self, fd_table, group):
        plan = plan_query(
            Rectangle({"x": Interval(10_000.0, 20_000.0)}),
            [group],
            primary_box=({"x": 0.0, "y": 0.0}, {"x": 100.0, "y": 301.0}),
            outlier_box=({"x": 0.0, "y": 500.0}, {"x": 100.0, "y": 1000.0}),
        )
        assert not plan.use_primary

    def test_empty_query_touches_nothing(self, fd_table, group):
        plan = plan_query(
            Rectangle({"x": Interval(5.0, 1.0)}),
            [group],
            primary_box=({"x": 0.0}, {"x": 100.0}),
            outlier_box=({"x": 0.0}, {"x": 100.0}),
        )
        assert not plan.use_primary
        assert not plan.use_outlier
