"""Sharded executor tests: aggregates/kNN/top-k across the shard fleet.

Every sharding (1/2/7 shards, thread and process executors) must answer
executor queries bit-identically (COUNT/MIN/MAX, all kNN/top-k ids) to
the unsharded COAX index and the full-scan oracle — SUM/AVG to 1e-9,
since shard merge order re-associates the float folds — including with
pending deltas and tombstones in play, and per-query attribution must
sum back to the batch totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ShardedCOAX
from repro.data.executors import AGGREGATE_OPS, Aggregate, TopK
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.indexes.full_scan import FullScanIndex

SHARDINGS = [(1, "thread", 1), (2, "thread", 2), (7, "process", 4)]


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(99)
    n = 4_000
    x = np.round(rng.uniform(0.0, 50.0, size=n), 0)
    y = 1.5 * x + rng.normal(0.0, 1.0, size=n)
    v = rng.normal(0.0, 5.0, size=n)
    return Table({"x": x, "y": y, "v": v})


@pytest.fixture(scope="module")
def queries() -> list:
    rng = np.random.default_rng(5)
    out = []
    for _ in range(24):
        a, b = np.sort(rng.uniform(0.0, 50.0, size=2))
        intervals = {"x": Interval(float(a), float(b))}
        if rng.random() < 0.5:
            c, d = np.sort(rng.uniform(-15.0, 90.0, size=2))
            intervals["y"] = Interval(float(c), float(d))
        out.append(Rectangle(intervals))
    out.append(Rectangle({"x": Interval(900.0, 901.0)}))  # empty
    return out


def make_engine(table, n_shards, executor, workers):
    return ShardedCOAX(
        table,
        config=EngineConfig(n_shards=n_shards, executor=executor, workers=workers),
    )


def assert_engine_matches(engine, oracle, queries):
    for op in AGGREGATE_OPS:
        spec = Aggregate(op, None if op == "count" else "v")
        got = engine.batch_aggregate(queries, spec)
        want = oracle.batch_aggregate(queries, spec)
        if op in ("count", "min", "max"):
            assert np.array_equal(got, want, equal_nan=True), op
        else:
            assert np.allclose(got, want, rtol=1e-9, atol=1e-9, equal_nan=True), op


@pytest.mark.parametrize("n_shards,executor,workers", SHARDINGS)
def test_sharded_aggregates_match_oracle(table, queries, n_shards, executor, workers):
    engine = make_engine(table, n_shards, executor, workers)
    try:
        assert_engine_matches(engine, FullScanIndex(table), queries)
    finally:
        engine.close()


@pytest.mark.parametrize("n_shards,executor,workers", SHARDINGS)
def test_sharded_executors_under_interleaved_crud(
    table, queries, n_shards, executor, workers
):
    engine = make_engine(table, n_shards, executor, workers)
    try:
        rng = np.random.default_rng(17)
        fresh = {
            "x": np.round(rng.uniform(0.0, 50.0, size=500), 0),
            "y": rng.uniform(-15.0, 90.0, size=500),
            "v": rng.normal(0.0, 5.0, size=500),
        }
        new_ids = engine.insert_batch(fresh)
        doomed = np.concatenate(
            [np.arange(0, table.n_rows, 9, dtype=np.int64), new_ids[::4]]
        )
        engine.delete_batch(doomed)
        combined = Table(
            {
                name: np.concatenate(
                    [np.asarray(table.column(name), dtype=np.float64), fresh[name]]
                )
                for name in table.schema
            }
        )
        oracle = FullScanIndex(combined)
        oracle.delete_rows(doomed)
        # Pending deltas and tombstones first, then the compacted fleet.
        assert_engine_matches(engine, oracle, queries)
        for point in ({"x": 20.0}, {"x": 3.0, "y": 7.5}):
            for k in (1, 13):
                assert np.array_equal(
                    engine.knn(point, k), oracle.knn(point, k)
                ), (point, k)
        spec = TopK(9, column="v", largest=True)
        for query in queries[:6]:
            assert np.array_equal(engine.topk(query, spec), oracle.topk(query, spec))
        engine.compact()
        assert_engine_matches(engine, oracle, queries)
    finally:
        engine.close()


@pytest.mark.parametrize("n_shards,executor,workers", [(2, "thread", 2)])
def test_sharded_knn_ties_break_by_global_id(n_shards, executor, workers):
    # Duplicate rows landing in different shards: equal distances must
    # resolve toward the smaller *global* id, matching the oracle.
    x = np.tile(np.arange(10.0), 40)
    table = Table({"x": x, "v": np.arange(400.0)})
    engine = make_engine(table, n_shards, executor, workers)
    try:
        oracle = FullScanIndex(table)
        for k in (1, 7, 25):
            got = engine.knn({"x": 4.0}, k)
            assert np.array_equal(got, oracle.knn({"x": 4.0}, k)), k
    finally:
        engine.close()


def test_aggregate_attribution_sums_to_batch(table, queries):
    engine = make_engine(table, 2, "thread", 2)
    try:
        spec = Aggregate("sum", "v")
        values, per_query = engine.batch_aggregate_attributed(queries, spec)
        assert len(values) == len(per_query) == len(queries)
        assert sum(s.queries for s in per_query) == len(queries)
        assert sum(s.aggregates for s in per_query) == len(queries)
        assert all(s.aggregates == 1 for s in per_query)
        assert all(s.knn_queries == 0 for s in per_query)
    finally:
        engine.close()


def test_engine_stats_count_ops(table, queries):
    engine = make_engine(table, 2, "thread", 2)
    try:
        engine.batch_aggregate(queries, Aggregate("count", None))
        assert engine.stats.aggregates == len(queries)
        assert engine.stats.knn_queries == 0
        engine.knn({"x": 10.0}, 5)
        assert engine.stats.knn_queries == 1
        assert engine.stats.rings_expanded >= 0
        engine.topk(queries[0], TopK(3, column="v"))
        assert engine.stats.knn_queries == 2
        # The materialising path leaves the per-op counters untouched.
        before = engine.stats.aggregates
        engine.batch_range_query(queries[:3])
        assert engine.stats.aggregates == before
    finally:
        engine.close()
