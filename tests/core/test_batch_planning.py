"""Parity of the rectangle-level batch planning/translation/merge wrappers.

The array-level batch machinery (``translate_bounds_batch`` /
``plan_query_flags`` / ``merge_flat_row_ids``) is exercised end to end by
the batch equivalence suite through ``COAXIndex.batch_range_query``.  These
tests pin the rectangle-level wrappers on top of it to their scalar
counterparts, query by query, so the two forms can never drift apart:

* ``plan_queries(qs)``            == ``[plan_query(q) for q in qs]``
* ``translate_query_batch(qs)``   == ``[translate_query(q) for q in qs]``
* ``translated_predictor_intervals_batch`` == the scalar interval per query
* ``merge_row_ids_batch``         == ``merge_row_ids`` per query
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.planner import plan_queries, plan_query
from repro.core.query_translation import (
    translate_query,
    translate_query_batch,
    translated_predictor_interval,
    translated_predictor_intervals_batch,
)
from repro.core.results import merge_row_ids, merge_row_ids_batch
from repro.data.predicates import Interval, Rectangle
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel, SplineFDModel, SplineSegment


def make_groups() -> list:
    """One linear group and one spline group (scalar-fallback path)."""
    linear = FDGroup(
        predictor="x",
        dependents=("y",),
        models={"y": LinearFDModel(slope=1.7, intercept=3.0, eps_lb=0.5, eps_ub=0.8)},
    )
    spline = FDGroup(
        predictor="u",
        dependents=("v",),
        models={
            "v": SplineFDModel(
                [
                    SplineSegment(0.0, 50.0, 2.0, 0.0),
                    SplineSegment(50.0, 100.0, -1.0, 150.0),
                ],
                eps_lb=1.0,
                eps_ub=1.0,
            )
        },
    )
    return [linear, spline]


@st.composite
def query_batches(draw):
    """Random batches over the four attributes the groups know about."""
    n_queries = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(n_queries):
        intervals = {}
        for name in ("x", "y", "u", "v", "other"):
            if draw(st.booleans()):
                low = draw(st.floats(-150.0, 150.0))
                width = draw(st.floats(-10.0, 120.0))  # negative width = empty
                intervals[name] = Interval(low, low + width)
        queries.append(Rectangle(intervals))
    return queries


BOXES = {
    "primary": ({"x": 0.0, "u": 0.0, "other": 0.0}, {"x": 90.0, "u": 90.0, "other": 50.0}),
    "outlier": ({"x": -20.0, "u": -20.0, "other": -20.0}, {"x": 120.0, "u": 120.0, "other": 120.0}),
}


class TestPlanQueriesParity:
    @given(query_batches(), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_planner(self, queries, with_primary, with_outlier):
        groups = make_groups()
        primary_box = BOXES["primary"] if with_primary else None
        outlier_box = BOXES["outlier"] if with_outlier else None
        batch = plan_queries(
            queries, groups, primary_box=primary_box, outlier_box=outlier_box
        )
        for query, plan in zip(queries, batch):
            scalar = plan_query(
                query, groups, primary_box=primary_box, outlier_box=outlier_box
            )
            assert plan.use_primary == scalar.use_primary, query
            assert plan.use_outlier == scalar.use_outlier, query
            assert plan.primary_query == scalar.primary_query, query
            assert plan.outlier_query == scalar.outlier_query, query
            assert plan.skip_reasons == scalar.skip_reasons, query


class TestTranslateBatchParity:
    @given(query_batches())
    @settings(max_examples=60, deadline=None)
    def test_rewritten_queries_match_scalar(self, queries):
        groups = make_groups()
        rewritten, no_inlier = translate_query_batch(queries, groups)
        for i, query in enumerate(queries):
            assert rewritten[i] == translate_query(query, groups), query
            scalar_no_inlier = any(
                translated_predictor_interval(query, group).is_empty
                for group in groups
            )
            assert bool(no_inlier[i]) == scalar_no_inlier, query

    @given(query_batches())
    @settings(max_examples=40, deadline=None)
    def test_predictor_intervals_match_scalar(self, queries):
        for group in make_groups():
            lows, highs = translated_predictor_intervals_batch(queries, group)
            for i, query in enumerate(queries):
                interval = translated_predictor_interval(query, group)
                assert lows[i] == interval.low, (query, group.predictor)
                assert highs[i] == interval.high, (query, group.predictor)


class TestMergeBatchParity:
    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_merge(self, seed):
        rng = np.random.default_rng(seed)
        n_queries = int(rng.integers(1, 8))
        parts_per_query = [
            [
                rng.integers(0, 40, size=rng.integers(0, 12)).astype(np.int64)
                for _ in range(int(rng.integers(0, 4)))
            ]
            for _ in range(n_queries)
        ]
        merged = merge_row_ids_batch(parts_per_query)
        assert len(merged) == n_queries
        for parts, got in zip(parts_per_query, merged):
            assert np.array_equal(got, merge_row_ids(parts))
