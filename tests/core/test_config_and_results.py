"""Tests for COAXConfig validation and result merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import COAXConfig
from repro.core.results import QueryResult, merge_row_ids


class TestCOAXConfig:
    def test_defaults_are_valid(self):
        config = COAXConfig()
        assert config.outlier_index == "sorted_cell_grid"

    def test_invalid_primary_cells(self):
        with pytest.raises(ValueError):
            COAXConfig(primary_cells_per_dim=0)

    def test_invalid_outlier_cells(self):
        with pytest.raises(ValueError):
            COAXConfig(outlier_cells_per_dim=0)

    def test_invalid_outlier_index(self):
        with pytest.raises(ValueError):
            COAXConfig(outlier_index="btree")

    def test_invalid_max_groups(self):
        with pytest.raises(ValueError):
            COAXConfig(max_groups=-1)

    def test_invalid_min_primary_fraction(self):
        with pytest.raises(ValueError):
            COAXConfig(min_primary_fraction=1.5)


class TestMergeRowIds:
    def test_union_is_sorted_and_unique(self):
        merged = merge_row_ids([np.array([3, 1]), np.array([2, 3]), np.array([], dtype=np.int64)])
        assert merged.tolist() == [1, 2, 3]

    def test_all_empty(self):
        merged = merge_row_ids([np.array([], dtype=np.int64)])
        assert len(merged) == 0
        assert merged.dtype == np.int64

    def test_no_parts(self):
        assert len(merge_row_ids([])) == 0


class TestQueryResult:
    def test_shares(self):
        result = QueryResult(
            row_ids=np.array([1, 2, 3, 4]),
            primary_row_ids=np.array([1, 2, 3]),
            outlier_row_ids=np.array([4]),
        )
        assert result.n_results == 4
        assert result.primary_share == pytest.approx(0.75)

    def test_empty_result(self):
        result = QueryResult(row_ids=np.array([], dtype=np.int64))
        assert result.n_results == 0
        assert result.primary_share == 0.0
