"""Tests for COAX's insert/compact update path (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel


@pytest.fixture()
def updatable_index() -> COAXIndex:
    rng = np.random.default_rng(21)
    n = 2_000
    x = rng.uniform(0.0, 100.0, size=n)
    y = 2.0 * x + rng.uniform(-1.0, 1.0, size=n)
    table = Table({"x": x, "y": y})
    groups = [
        FDGroup(
            predictor="x",
            dependents=("y",),
            models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
        )
    ]
    return COAXIndex(table, groups=groups)


class TestInsert:
    def test_inlier_insert_routes_to_primary_buffer(self, updatable_index):
        row_id = updatable_index.insert({"x": 10.0, "y": 20.5})
        assert row_id == updatable_index.table.n_rows
        assert updatable_index.n_pending == 1
        assert len(updatable_index._pending_primary) == 1

    def test_outlier_insert_routes_to_outlier_buffer(self, updatable_index):
        updatable_index.insert({"x": 10.0, "y": 500.0})
        assert len(updatable_index._pending_outlier) == 1

    def test_missing_attribute_rejected(self, updatable_index):
        with pytest.raises(ValueError):
            updatable_index.insert({"x": 1.0})

    def test_inserted_records_are_queryable(self, updatable_index):
        row_id = updatable_index.insert({"x": 10.0, "y": 20.0})
        result = updatable_index.range_query(
            Rectangle({"x": Interval(9.9, 10.1), "y": Interval(19.9, 20.1)})
        )
        assert row_id in result

    def test_inserted_outliers_are_queryable(self, updatable_index):
        row_id = updatable_index.insert({"x": 10.0, "y": 900.0})
        result = updatable_index.range_query(Rectangle({"y": Interval(899.0, 901.0)}))
        assert result.tolist() == [row_id]

    def test_row_ids_are_sequential(self, updatable_index):
        first = updatable_index.insert({"x": 1.0, "y": 2.0})
        second = updatable_index.insert({"x": 2.0, "y": 4.0})
        assert second == first + 1

    def test_pending_counts(self, updatable_index):
        assert updatable_index.n_pending == 0
        updatable_index.insert({"x": 1.0, "y": 2.0})
        updatable_index.insert({"x": 1.0, "y": 400.0})
        assert updatable_index.n_pending == 2


class TestCompact:
    def test_compact_without_pending_returns_self(self, updatable_index):
        assert updatable_index.compact() is updatable_index

    def test_compact_folds_pending_into_main_structures(self, updatable_index):
        inlier_id = updatable_index.insert({"x": 50.0, "y": 100.2})
        outlier_id = updatable_index.insert({"x": 50.0, "y": 700.0})
        compacted = updatable_index.compact()
        assert compacted is not updatable_index
        assert compacted.n_pending == 0
        assert compacted.n_rows == updatable_index.n_rows + 2
        # Both records are now answered by the main structures.
        inlier_hits = compacted.range_query(
            Rectangle({"x": Interval(49.9, 50.1), "y": Interval(100.0, 100.4)})
        )
        outlier_hits = compacted.range_query(Rectangle({"y": Interval(699.0, 701.0)}))
        # The pending records were appended after the original 2000 rows.
        assert inlier_id in inlier_hits or 2_000 in inlier_hits
        assert 2_001 in outlier_hits or outlier_id in outlier_hits

    def test_compact_preserves_exactness(self, updatable_index):
        rng = np.random.default_rng(22)
        for _ in range(50):
            x = float(rng.uniform(0.0, 100.0))
            noise = float(rng.uniform(-1.0, 1.0))
            updatable_index.insert({"x": x, "y": 2.0 * x + noise})
        compacted = updatable_index.compact()
        combined = Table(
            {
                "x": np.concatenate(
                    [updatable_index.table.column("x"),
                     compacted.table.column("x")[-50:]]
                ),
                "y": np.concatenate(
                    [updatable_index.table.column("y"),
                     compacted.table.column("y")[-50:]]
                ),
            }
        )
        query = Rectangle({"x": Interval(20.0, 60.0), "y": Interval(40.0, 121.5)})
        assert len(compacted.range_query(query)) == len(combined.select(query))

    def test_compact_keeps_learned_groups(self, updatable_index):
        updatable_index.insert({"x": 1.0, "y": 2.0})
        compacted = updatable_index.compact()
        assert len(compacted.groups) == len(updatable_index.groups)
        assert compacted.groups[0].predictor == "x"
