"""Tests for COAX's delta-store update path (insert_batch / compact)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.osm import OSMConfig, generate_osm_dataset
from repro.data.predicates import Interval, Rectangle
from repro.data.queries import WorkloadConfig, generate_knn_queries
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel


def make_linear_table(n: int = 2_000, seed: int = 21) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 100.0, size=n)
    y = 2.0 * x + rng.uniform(-1.0, 1.0, size=n)
    return Table({"x": x, "y": y})


def make_groups() -> list:
    return [
        FDGroup(
            predictor="x",
            dependents=("y",),
            models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
        )
    ]


@pytest.fixture()
def updatable_index() -> COAXIndex:
    return COAXIndex(make_linear_table(), groups=make_groups())


class TestInsert:
    def test_inlier_insert_routes_to_primary_buffer(self, updatable_index):
        row_id = updatable_index.insert({"x": 10.0, "y": 20.5})
        assert row_id == updatable_index.table.n_rows
        assert updatable_index.n_pending == 1
        assert updatable_index.n_pending_primary == 1
        assert updatable_index.n_pending_outlier == 0

    def test_outlier_insert_routes_to_outlier_buffer(self, updatable_index):
        updatable_index.insert({"x": 10.0, "y": 500.0})
        assert updatable_index.n_pending_outlier == 1
        assert updatable_index.n_pending_primary == 0

    def test_missing_attribute_rejected(self, updatable_index):
        with pytest.raises(ValueError):
            updatable_index.insert({"x": 1.0})

    def test_inserted_records_are_queryable(self, updatable_index):
        row_id = updatable_index.insert({"x": 10.0, "y": 20.0})
        result = updatable_index.range_query(
            Rectangle({"x": Interval(9.9, 10.1), "y": Interval(19.9, 20.1)})
        )
        assert row_id in result

    def test_inserted_outliers_are_queryable(self, updatable_index):
        row_id = updatable_index.insert({"x": 10.0, "y": 900.0})
        result = updatable_index.range_query(Rectangle({"y": Interval(899.0, 901.0)}))
        assert result.tolist() == [row_id]

    def test_row_ids_are_sequential(self, updatable_index):
        first = updatable_index.insert({"x": 1.0, "y": 2.0})
        second = updatable_index.insert({"x": 2.0, "y": 4.0})
        assert second == first + 1

    def test_pending_counts(self, updatable_index):
        assert updatable_index.n_pending == 0
        updatable_index.insert({"x": 1.0, "y": 2.0})
        updatable_index.insert({"x": 1.0, "y": 400.0})
        assert updatable_index.n_pending == 2


class TestInsertBatch:
    def test_batch_of_column_arrays(self, updatable_index):
        ids = updatable_index.insert_batch(
            {"x": np.array([1.0, 2.0, 3.0]), "y": np.array([2.0, 4.0, 900.0])}
        )
        assert ids.tolist() == [2_000, 2_001, 2_002]
        assert updatable_index.n_pending == 3
        assert updatable_index.n_pending_primary == 2
        assert updatable_index.n_pending_outlier == 1

    def test_batch_of_table(self, updatable_index):
        batch = Table({"x": np.array([5.0]), "y": np.array([10.3])})
        ids = updatable_index.insert_batch(batch)
        assert len(ids) == 1
        assert updatable_index.n_pending == 1

    def test_batch_of_record_dicts(self, updatable_index):
        ids = updatable_index.insert_batch(
            [{"x": 1.0, "y": 2.0}, {"x": 2.0, "y": 4.0}]
        )
        assert len(ids) == 2

    def test_empty_batch(self, updatable_index):
        ids = updatable_index.insert_batch([])
        assert len(ids) == 0
        assert updatable_index.n_pending == 0

    def test_mismatched_column_lengths_rejected(self, updatable_index):
        with pytest.raises(ValueError):
            updatable_index.insert_batch(
                {"x": np.array([1.0, 2.0]), "y": np.array([2.0])}
            )

    def test_missing_column_rejected(self, updatable_index):
        with pytest.raises(ValueError):
            updatable_index.insert_batch({"x": np.array([1.0])})

    def test_batch_matches_sequential_inserts(self):
        """Batch insert and row-at-a-time insert are observationally equal."""
        rng = np.random.default_rng(31)
        bx = rng.uniform(0.0, 100.0, size=500)
        by = 2.0 * bx + rng.uniform(-5.0, 5.0, size=500)
        batch_index = COAXIndex(make_linear_table(), groups=make_groups())
        seq_index = COAXIndex(make_linear_table(), groups=make_groups())
        batch_ids = batch_index.insert_batch({"x": bx, "y": by})
        seq_ids = np.array(
            [seq_index.insert({"x": float(x), "y": float(y)}) for x, y in zip(bx, by)]
        )
        assert np.array_equal(batch_ids, seq_ids)
        assert batch_index.n_pending_primary == seq_index.n_pending_primary
        assert batch_index.n_pending_outlier == seq_index.n_pending_outlier
        for query in (
            Rectangle({"x": Interval(20.0, 60.0)}),
            Rectangle({"y": Interval(40.0, 121.5)}),
            Rectangle({"x": Interval(0.0, 100.0), "y": Interval(-1e6, 1e6)}),
        ):
            assert np.array_equal(
                batch_index.range_query(query), seq_index.range_query(query)
            )

    def test_pending_scan_is_vectorised(self, updatable_index, monkeypatch):
        """A query over pending rows must not fall back to per-row matching."""
        rng = np.random.default_rng(32)
        n = 10_000
        bx = rng.uniform(0.0, 100.0, size=n)
        updatable_index.insert_batch({"x": bx, "y": 2.0 * bx})
        calls = {"n": 0}
        original = Rectangle.matches_row

        def counting(self, row):
            calls["n"] += 1
            return original(self, row)

        monkeypatch.setattr(Rectangle, "matches_row", counting)
        result = updatable_index.range_query(Rectangle({"x": Interval(10.0, 20.0)}))
        assert len(result) > 0
        assert calls["n"] == 0


class TestCompact:
    def test_compact_without_pending_returns_self(self, updatable_index):
        assert updatable_index.compact() is updatable_index

    def test_compact_is_in_place_and_returns_self(self, updatable_index):
        updatable_index.insert({"x": 50.0, "y": 100.2})
        compacted = updatable_index.compact()
        assert compacted is updatable_index
        assert updatable_index.n_pending == 0

    def test_compact_folds_pending_into_main_structures(self, updatable_index):
        inlier_id = updatable_index.insert({"x": 50.0, "y": 100.2})
        outlier_id = updatable_index.insert({"x": 50.0, "y": 700.0})
        n_before = updatable_index.n_rows
        compacted = updatable_index.compact()
        assert compacted.n_pending == 0
        assert compacted.n_rows == n_before + 2
        inlier_hits = compacted.range_query(
            Rectangle({"x": Interval(49.9, 50.1), "y": Interval(100.0, 100.4)})
        )
        outlier_hits = compacted.range_query(Rectangle({"y": Interval(699.0, 701.0)}))
        assert inlier_id in inlier_hits
        assert outlier_id in outlier_hits

    def test_compact_preserves_row_ids(self, updatable_index):
        row_id = updatable_index.insert({"x": 42.0, "y": 84.3})
        updatable_index.compact()
        hits = updatable_index.range_query(
            Rectangle({"x": Interval(41.9, 42.1), "y": Interval(84.0, 84.6)})
        )
        assert row_id in hits

    def test_compact_preserves_exactness(self, updatable_index):
        rng = np.random.default_rng(22)
        bx = rng.uniform(0.0, 100.0, size=50)
        by = 2.0 * bx + rng.uniform(-1.0, 1.0, size=50)
        updatable_index.insert_batch({"x": bx, "y": by})
        updatable_index.compact()
        combined = Table(
            {
                "x": np.concatenate([make_linear_table().column("x"), bx]),
                "y": np.concatenate([make_linear_table().column("y"), by]),
            }
        )
        query = Rectangle({"x": Interval(20.0, 60.0), "y": Interval(40.0, 121.5)})
        assert np.array_equal(
            np.sort(updatable_index.range_query(query)), combined.select(query)
        )

    def test_compact_keeps_learned_groups(self, updatable_index):
        updatable_index.insert({"x": 1.0, "y": 2.0})
        compacted = updatable_index.compact()
        assert len(compacted.groups) == 1
        assert compacted.groups[0].predictor == "x"

    def test_interleaved_insert_compact_cycles(self, updatable_index):
        """Correctness across several insert/compact/insert rounds."""
        rng = np.random.default_rng(33)
        all_x = [make_linear_table().column("x")]
        all_y = [make_linear_table().column("y")]
        query = Rectangle({"x": Interval(10.0, 90.0), "y": Interval(25.0, 175.0)})
        for round_no in range(4):
            bx = rng.uniform(0.0, 100.0, size=200)
            by = 2.0 * bx + rng.uniform(-10.0, 10.0, size=200)
            updatable_index.insert_batch({"x": bx, "y": by})
            all_x.append(bx)
            all_y.append(by)
            if round_no % 2 == 0:
                updatable_index.compact()
            combined = Table(
                {"x": np.concatenate(all_x), "y": np.concatenate(all_y)}
            )
            assert np.array_equal(
                np.sort(updatable_index.range_query(query)), combined.select(query)
            ), f"mismatch in round {round_no}"
        assert updatable_index.n_rows + updatable_index.n_pending == 2_000 + 4 * 200

    def test_compact_updates_partition_and_report(self, updatable_index):
        ratio_before = updatable_index.primary_ratio
        updatable_index.insert_batch(
            {"x": np.full(500, 10.0), "y": np.full(500, 999.0)}  # all outliers
        )
        updatable_index.compact()
        assert updatable_index.primary_ratio < ratio_before
        assert updatable_index.build_report.n_rows == updatable_index.n_rows
        assert updatable_index.partition.n_rows == updatable_index.n_rows

    def test_compact_with_subset_row_ids_falls_back_to_rebuild(self):
        """An index over a table subset still compacts correctly (renumbering)."""
        table = make_linear_table()
        subset = np.arange(0, 1_000, dtype=np.int64)
        index = COAXIndex(table, groups=make_groups(), row_ids=subset)
        index.insert({"x": 50.0, "y": 100.2})
        index.compact()
        assert index.n_pending == 0
        assert index.n_rows == 1_001
        hits = index.range_query(
            Rectangle({"x": Interval(49.9, 50.1), "y": Interval(100.0, 100.4)})
        )
        assert len(hits) >= 1


class TestZeroGroupUpdates:
    """With no FD groups COAX degenerates to its primary index — updates must
    still work (every record is an inlier)."""

    @pytest.fixture()
    def groupless_index(self) -> COAXIndex:
        return COAXIndex(make_linear_table(), groups=[])

    def test_insert_routes_to_primary(self, groupless_index):
        groupless_index.insert({"x": 10.0, "y": 500.0})
        assert groupless_index.n_pending_primary == 1
        assert groupless_index.n_pending_outlier == 0

    def test_query_and_compact(self, groupless_index):
        rng = np.random.default_rng(34)
        bx = rng.uniform(0.0, 100.0, size=300)
        by = rng.uniform(0.0, 1_000.0, size=300)
        groupless_index.insert_batch({"x": bx, "y": by})
        query = Rectangle({"x": Interval(25.0, 75.0), "y": Interval(0.0, 400.0)})
        combined = Table(
            {
                "x": np.concatenate([make_linear_table().column("x"), bx]),
                "y": np.concatenate([make_linear_table().column("y"), by]),
            }
        )
        assert np.array_equal(
            np.sort(groupless_index.range_query(query)), combined.select(query)
        )
        groupless_index.compact()
        assert groupless_index.n_pending == 0
        assert np.array_equal(
            np.sort(groupless_index.range_query(query)), combined.select(query)
        )


class TestAutoCompaction:
    def test_threshold_triggers_compaction(self):
        config = COAXConfig(auto_compact_threshold=100)
        index = COAXIndex(make_linear_table(), config=config, groups=make_groups())
        rng = np.random.default_rng(35)
        bx = rng.uniform(0.0, 100.0, size=99)
        index.insert_batch({"x": bx, "y": 2.0 * bx})
        assert index.n_pending == 99
        index.insert({"x": 1.0, "y": 2.0})
        assert index.n_pending == 0
        assert index.n_rows == 2_000 + 100

    def test_none_threshold_never_compacts(self, updatable_index):
        rng = np.random.default_rng(36)
        bx = rng.uniform(0.0, 100.0, size=5_000)
        updatable_index.insert_batch({"x": bx, "y": 2.0 * bx})
        assert updatable_index.n_pending == 5_000

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            COAXConfig(auto_compact_threshold=0)


class TestIncrementalEqualsRebuild:
    """Acceptance criterion: incremental compact() produces query results
    identical to a from-scratch rebuild on the Airline and OSM datasets."""

    @pytest.mark.parametrize("dataset", ["airline", "osm"])
    def test_identical_results(self, dataset, fast_coax_config):
        if dataset == "airline":
            table, _ = generate_airline_dataset(AirlineConfig(n_rows=5_000, seed=41))
            extra, _ = generate_airline_dataset(AirlineConfig(n_rows=6_000, seed=42))
        else:
            table, _ = generate_osm_dataset(OSMConfig(n_rows=5_000, seed=41))
            extra, _ = generate_osm_dataset(OSMConfig(n_rows=6_000, seed=42))
        stream = extra.take(np.arange(5_000, 6_000, dtype=np.int64))
        index = COAXIndex(table, config=fast_coax_config)
        index.insert_batch(stream)
        index.compact()
        combined = table.concat(stream)
        rebuilt = COAXIndex(
            combined, config=fast_coax_config, groups=list(index.groups)
        )
        workload = generate_knn_queries(
            combined, WorkloadConfig(n_queries=12, k_neighbours=150, seed=43)
        )
        for query in workload:
            assert np.array_equal(
                np.sort(index.range_query(query)),
                np.sort(rebuilt.range_query(query)),
            )
        # And both agree with ground truth.
        for query in workload:
            assert np.array_equal(
                np.sort(index.range_query(query)), combined.select(query)
            )
