"""Tests for query translation (Section 4 / Equation 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query_translation import (
    dependent_attributes,
    translate_query,
    translated_predictor_interval,
)
from repro.data.predicates import Interval, Rectangle
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel


@pytest.fixture()
def group() -> FDGroup:
    # y ~= 2x (+/- 1), z ~= -x + 100 (+/- 2)
    return FDGroup(
        predictor="x",
        dependents=("y", "z"),
        models={
            "y": LinearFDModel(slope=2.0, intercept=0.0, eps_lb=1.0, eps_ub=1.0),
            "z": LinearFDModel(slope=-1.0, intercept=100.0, eps_lb=2.0, eps_ub=2.0),
        },
    )


class TestTranslatedPredictorInterval:
    def test_only_direct_constraint(self, group):
        query = Rectangle({"x": Interval(0.0, 10.0)})
        assert translated_predictor_interval(query, group) == Interval(0.0, 10.0)

    def test_dependent_constraint_translates(self, group):
        query = Rectangle({"y": Interval(10.0, 20.0)})
        interval = translated_predictor_interval(query, group)
        assert interval.low == pytest.approx(4.5)
        assert interval.high == pytest.approx(10.5)

    def test_intersection_of_direct_and_translated(self, group):
        query = Rectangle({"x": Interval(0.0, 6.0), "y": Interval(10.0, 20.0)})
        interval = translated_predictor_interval(query, group)
        assert interval.low == pytest.approx(4.5)
        assert interval.high == pytest.approx(6.0)

    def test_multiple_dependents_intersect(self, group):
        # y in [10, 20] -> x in [4.5, 10.5]; z in [80, 95] -> x in [3, 22].
        query = Rectangle({"y": Interval(10.0, 20.0), "z": Interval(80.0, 95.0)})
        interval = translated_predictor_interval(query, group)
        assert interval.low == pytest.approx(4.5)
        assert interval.high == pytest.approx(10.5)

    def test_contradictory_constraints_give_empty(self, group):
        # y around 100 needs x around 50; direct x constraint excludes that.
        query = Rectangle({"x": Interval(0.0, 10.0), "y": Interval(99.0, 101.0)})
        assert translated_predictor_interval(query, group).is_empty

    def test_unconstrained_query(self, group):
        assert translated_predictor_interval(Rectangle.unconstrained(), group).is_unbounded


class TestTranslateQuery:
    def test_predictor_constraint_tightened(self, group):
        query = Rectangle({"y": Interval(10.0, 20.0), "other": Interval(1.0, 2.0)})
        rewritten = translate_query(query, [group])
        assert rewritten.constrains("x")
        # Non-group constraints survive untouched.
        assert rewritten.interval("other") == Interval(1.0, 2.0)
        # The dependent constraint is kept for exact post-filtering.
        assert rewritten.interval("y") == Interval(10.0, 20.0)

    def test_multiple_groups(self, group):
        other_group = FDGroup(
            predictor="a",
            dependents=("b",),
            models={"b": LinearFDModel(1.0, 0.0, 0.5, 0.5)},
        )
        query = Rectangle({"y": Interval(0.0, 2.0), "b": Interval(5.0, 6.0)})
        rewritten = translate_query(query, [group, other_group])
        assert rewritten.constrains("x")
        assert rewritten.constrains("a")

    def test_no_groups_is_identity(self):
        query = Rectangle({"y": Interval(0.0, 1.0)})
        assert translate_query(query, []) == query

    def test_translation_preserves_inlier_results(self, group):
        """End-to-end soundness: translated+original constraint keeps every
        in-margin record the original query matches."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 50.0, size=5_000)
        y = 2.0 * x + rng.uniform(-1.0, 1.0, size=5_000)
        z = -x + 100.0 + rng.uniform(-2.0, 2.0, size=5_000)
        columns = {"x": x, "y": y, "z": z}
        query = Rectangle({"y": Interval(20.0, 40.0), "z": Interval(70.0, 95.0)})
        rewritten = translate_query(query, [group])
        original_mask = query.matches(columns)
        rewritten_mask = rewritten.matches(columns)
        assert np.array_equal(original_mask, rewritten_mask & original_mask)
        # and the rewrite loses nothing:
        assert np.all(~(original_mask & ~rewritten_mask))


class TestDependentAttributes:
    def test_collects_all_dependents(self, group):
        assert dependent_attributes([group]) == {"y", "z"}

    def test_empty(self):
        assert dependent_attributes([]) == set()
