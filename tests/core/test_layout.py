"""Unit tests for the workload-adaptive layout monitor.

The engine-level behaviour (adoption at compaction, bit-identical
rebuilds, persistence) is covered by the engine and io suites; here the
monitor itself is pinned: the ring sketch, the veto conditions, the cost
model, the two candidate families — in particular the dynamic program's
ability to fence unqueried cold regions — and the state round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LayoutConfig
from repro.core.layout import LayoutMonitor, LayoutProposal, _workload_cost


def _monitor(n_shards_hint: int = 4, **overrides) -> LayoutMonitor:
    defaults = dict(
        enabled=True, sketch_size=32, histogram_bins=16, min_queries=4, min_gain=1.0
    )
    defaults.update(overrides)
    config = LayoutConfig(**defaults)
    return LayoutMonitor(config, n_shards=n_shards_hint)


class TestSketch:
    def test_observe_counts_only_bounded_queries(self):
        monitor = _monitor()
        monitor.observe(
            np.array([1.0, -np.inf, 3.0]), np.array([2.0, np.inf, np.inf])
        )
        # The fully unbounded query carries no layout signal.
        assert monitor.observed == 2

    def test_ring_evicts_oldest_beyond_capacity(self):
        monitor = _monitor(sketch_size=8)
        monitor.observe(np.full(20, 1.0), np.full(20, 2.0))
        monitor.observe(np.full(6, 5.0), np.full(6, 6.0))
        # observed keeps the true total; the ring holds only the last 8.
        assert monitor.observed == 26
        state = monitor.state()
        half = len(state["sketch"]) // 2
        assert half == 8
        lows = state["sketch"][:half]
        # 6 recent queries at low=5.0 plus 2 survivors at low=1.0.
        assert np.count_nonzero(lows == 5.0) == 6
        assert np.count_nonzero(lows == 1.0) == 2

    def test_counters_accumulate_when_length_matches(self):
        monitor = _monitor(n_shards_hint=3)
        monitor.observe(
            np.array([1.0]),
            np.array([2.0]),
            hits=np.array([1, 0, 1]),
            pruned=np.array([0, 1, 0]),
            examined=np.array([10, 0, 5]),
        )
        monitor.observe(
            np.array([1.0]), np.array([2.0]), hits=np.array([1, 1])  # wrong length
        )
        counters = monitor.counters()
        assert counters["hits"].tolist() == [1, 0, 1]
        assert counters["pruned"].tolist() == [0, 1, 0]
        assert counters["rows_examined"].tolist() == [10, 0, 5]
        skew = monitor.skew()
        assert skew["prune_fraction"] == pytest.approx(1.0 / 3.0)
        assert skew["hot_shard_fraction"] == pytest.approx(0.5)

    def test_reset_drops_window_keeps_epoch(self):
        monitor = _monitor()
        monitor.observe(np.array([1.0]), np.array([2.0]))
        monitor.note_adopted(
            LayoutProposal(
                boundaries=(5.0,), n_shards=2, old_cost=10.0, new_cost=5.0, n_queries=1
            )
        )
        monitor.observe(np.array([1.0]), np.array([2.0]))
        monitor.reset()
        assert monitor.observed == 0
        assert monitor.epoch == 1
        assert monitor.history == ((5.0,),)


class TestPropose:
    def test_vetoed_below_min_queries(self):
        monitor = _monitor(min_queries=10)
        monitor.observe(np.full(5, 1.0), np.full(5, 2.0))
        values = np.linspace(0.0, 100.0, 1000)
        assert monitor.propose(values, np.array([50.0])) is None

    def test_vetoed_on_degenerate_domain(self):
        monitor = _monitor()
        monitor.observe(np.full(8, 1.0), np.full(8, 2.0))
        assert monitor.propose(np.full(100, 7.0), np.array([50.0])) is None
        assert monitor.propose(np.empty(0), np.array([50.0])) is None

    def test_vetoed_below_min_gain(self):
        # Uniform queries over uniform data: the build-time quantiles are
        # already near-optimal, so a high hysteresis bar must veto.
        monitor = _monitor(min_gain=3.0)
        rng = np.random.default_rng(3)
        lows = rng.uniform(0.0, 90.0, 64)
        monitor.observe(lows, lows + 10.0)
        values = np.linspace(0.0, 100.0, 2000)
        assert monitor.propose(values, np.array([25.0, 50.0, 75.0])) is None

    def test_concentrated_workload_yields_finer_hot_cuts(self):
        monitor = _monitor(max_shards=4)
        rng = np.random.default_rng(5)
        lows = rng.uniform(0.0, 8.0, 64)
        monitor.observe(lows, lows + 2.0)
        values = np.linspace(0.0, 100.0, 2000)
        current = np.array([25.0, 50.0, 75.0])
        proposal = monitor.propose(values, current)
        assert proposal is not None
        assert proposal.gain > 1.0
        assert proposal.new_cost < proposal.old_cost
        # Every proposed boundary serves the hot region: cuts inside (or
        # fencing) [0, 10], none wasted deep in the unqueried cold tail.
        assert min(proposal.boundaries) < 25.0
        # And the proposal is strictly better under the exact cost model.
        assert _workload_cost(
            values, np.asarray(proposal.boundaries), lows, lows + 2.0
        ) < _workload_cost(values, current, lows, lows + 2.0)

    def test_dp_family_fences_cold_region(self):
        # All queries in [0, 10); data mostly in the cold tail.  The
        # optimal 2-shard layout puts the single boundary right after the
        # hot region — a weighted quantile of the query mass would stay
        # inside it and leave the cold rows attached to a hot shard.
        monitor = _monitor(min_shards=2, max_shards=2, histogram_bins=32)
        rng = np.random.default_rng(7)
        lows = rng.uniform(0.0, 8.0, 64)
        monitor.observe(lows, lows + 1.0)
        values = np.concatenate(
            [np.linspace(0.0, 10.0, 200), np.linspace(10.0, 100.0, 1800)]
        )
        proposal = monitor.propose(values, np.array([50.0]))
        assert proposal is not None
        assert proposal.n_shards == 2
        (boundary,) = proposal.boundaries
        # The fence sits at the hot/cold border, not mid-hot-region.
        assert 9.0 <= boundary <= 15.0
        # With the fence, no sketched query is dispatched to cold rows.
        assert proposal.new_cost <= 200 * len(lows)

    def test_identical_best_layout_returns_none(self):
        monitor = _monitor(min_shards=2, max_shards=2, histogram_bins=4)
        monitor.observe(np.full(8, 0.0), np.full(8, 100.0))
        values = np.linspace(0.0, 100.0, 9)
        # Whatever the DP picks for k=2 here, proposing it twice must
        # be idempotent: re-propose with its own output as current.
        first = monitor.propose(values, np.array([50.0]))
        if first is not None:
            again = monitor.propose(values, np.asarray(first.boundaries))
            assert again is None or again.boundaries != first.boundaries


class TestCostModel:
    def test_matches_bruteforce_dispatch(self):
        rng = np.random.default_rng(11)
        values = np.sort(rng.uniform(0.0, 100.0, 500))
        boundaries = np.array([20.0, 40.0, 80.0])
        lows = rng.uniform(0.0, 95.0, 40)
        highs = lows + rng.uniform(0.0, 20.0, 40)
        expected = 0.0
        cuts = np.concatenate([[-np.inf], boundaries, [np.inf]])
        for low, high in zip(lows, highs):
            for shard in range(len(cuts) - 1):
                resident = np.count_nonzero(
                    (values >= cuts[shard]) & (values < cuts[shard + 1])
                )
                # Dispatch mirrors _route: [l, h] reaches shard [a, b)
                # iff l < b and h >= a.
                if low < cuts[shard + 1] and high >= cuts[shard]:
                    expected += resident
        assert _workload_cost(values, boundaries, lows, highs) == expected

    def test_no_boundaries_costs_full_table_per_query(self):
        values = np.sort(np.random.default_rng(13).uniform(0.0, 1.0, 100))
        lows = np.array([0.1, 0.5])
        highs = np.array([0.2, 0.6])
        assert _workload_cost(values, np.empty(0), lows, highs) == 200.0


class TestStateRoundTrip:
    def test_full_round_trip(self):
        monitor = _monitor(n_shards_hint=3)
        rng = np.random.default_rng(17)
        lows = rng.uniform(0.0, 50.0, 20)
        monitor.observe(
            lows,
            lows + 5.0,
            hits=np.array([5, 2, 1]),
            pruned=np.array([0, 3, 4]),
            examined=np.array([100, 40, 10]),
        )
        monitor.note_adopted(
            LayoutProposal(
                boundaries=(10.0, 20.0),
                n_shards=3,
                old_cost=100.0,
                new_cost=50.0,
                n_queries=20,
            )
        )
        monitor.observe(lows[:4], lows[:4] + 1.0)
        restored = _monitor(n_shards_hint=3)
        restored.load_state(monitor.state())
        assert restored.epoch == monitor.epoch == 1
        assert restored.observed == monitor.observed == 4
        assert restored.history == monitor.history == ((10.0, 20.0),)
        original, loaded = monitor.state(), restored.state()
        assert set(original) == set(loaded)
        for key in original:
            assert np.array_equal(original[key], loaded[key]), key

    def test_load_state_tolerates_missing_keys(self):
        monitor = _monitor()
        monitor.load_state({})
        assert monitor.epoch == 0
        assert monitor.observed == 0
        assert monitor.history == ()

    def test_counters_skipped_on_shard_count_mismatch(self):
        source = _monitor(n_shards_hint=3)
        source.observe(
            np.array([1.0]), np.array([2.0]), hits=np.array([1, 2, 3])
        )
        target = _monitor(n_shards_hint=5)
        target.load_state(source.state())
        # The sketch transfers; stale per-shard counters do not.
        assert target.observed == 1
        assert target.counters()["hits"].tolist() == [0] * 5
