"""Tests for the COAX index: build pipeline, layout, queries and memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.queries import WorkloadConfig, generate_knn_queries, generate_point_queries
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel
from repro.indexes.base import IndexBuildError
from repro.indexes.rtree import RTreeIndex


class TestBuildOnAirline:
    def test_detects_both_groups(self, airline_coax):
        assert len(airline_coax.groups) == 2
        group_attributes = [set(group.attributes) for group in airline_coax.groups]
        assert {"Distance", "TimeElapsed", "AirTime"} in group_attributes
        assert {"DepTime", "ArrTime", "ScheduledArrTime"} in group_attributes

    def test_primary_ratio_matches_generated_outlier_rate(self, airline_coax):
        # The generator plants ~8% outliers; the 3-sigma margins keep ~90%.
        assert 0.85 <= airline_coax.primary_ratio <= 0.95

    def test_dimensionality_reduction(self, airline_coax, airline_small):
        report = airline_coax.build_report
        # 8 attributes, 4 predicted -> 4 indexed, and the sorted dimension
        # removes one more grid dimension (n - m - 1 = 3).
        assert len(report.indexed_dimensions) == 4
        assert len(report.predicted_dimensions) == 4
        assert len(report.primary_grid_dimensions) == 3
        assert report.primary_sort_dimension in report.indexed_dimensions

    def test_partition_covers_all_rows(self, airline_coax, airline_small):
        partition = airline_coax.partition
        assert partition.n_rows == airline_small.n_rows

    def test_memory_breakdown_components(self, airline_coax):
        breakdown = airline_coax.memory_breakdown()
        assert set(breakdown) == {"primary", "outlier", "models"}
        assert airline_coax.directory_bytes() == sum(breakdown.values())
        assert breakdown["models"] == sum(g.memory_bytes() for g in airline_coax.groups)

    def test_directory_smaller_than_rtree(self, airline_coax, airline_small):
        rtree = RTreeIndex(airline_small, node_capacity=10)
        assert airline_coax.directory_bytes() < rtree.directory_bytes() / 5

    def test_build_report_describe(self, airline_coax):
        text = airline_coax.build_report.describe()
        assert "FD groups" in text
        assert "primary index ratio" in text


class TestBuildOnOSM:
    def test_detects_id_timestamp_group(self, osm_coax):
        assert len(osm_coax.groups) == 1
        assert set(osm_coax.groups[0].attributes) == {"Id", "Timestamp"}

    def test_primary_ratio(self, osm_coax):
        # The generator plants ~25% outliers.
        assert 0.70 <= osm_coax.primary_ratio <= 0.85


class TestQueriesMatchFullScan:
    @pytest.mark.parametrize("dataset_fixture", ["airline_small", "osm_small"])
    def test_range_queries(self, request, dataset_fixture, fast_coax_config):
        table = request.getfixturevalue(dataset_fixture)
        index = (
            request.getfixturevalue("airline_coax")
            if dataset_fixture == "airline_small"
            else request.getfixturevalue("osm_coax")
        )
        workload = generate_knn_queries(
            table, WorkloadConfig(n_queries=25, k_neighbours=120, seed=5)
        )
        for query in workload:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    @pytest.mark.parametrize("dataset_fixture", ["airline_small", "osm_small"])
    def test_point_queries(self, request, dataset_fixture):
        table = request.getfixturevalue(dataset_fixture)
        index = (
            request.getfixturevalue("airline_coax")
            if dataset_fixture == "airline_small"
            else request.getfixturevalue("osm_coax")
        )
        workload = generate_point_queries(table, WorkloadConfig(n_queries=25, seed=6))
        for query in workload:
            assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_queries_on_predicted_dimensions_only(self, airline_coax, airline_small):
        """Constraints purely on non-indexed (predicted) attributes still work."""
        query = Rectangle({"AirTime": Interval(60.0, 90.0), "ArrTime": Interval(600.0, 900.0)})
        assert np.array_equal(
            np.sort(airline_coax.range_query(query)), airline_small.select(query)
        )

    def test_unconstrained_query_returns_everything(self, airline_coax, airline_small):
        assert len(airline_coax.range_query(Rectangle.unconstrained())) == airline_small.n_rows

    def test_empty_query(self, airline_coax):
        assert len(airline_coax.range_query(Rectangle({"Distance": Interval(10.0, 5.0)}))) == 0

    def test_query_result_attribution(self, airline_coax, airline_small):
        query = Rectangle({"Distance": Interval(300.0, 1200.0)})
        result = airline_coax.query(query)
        assert result.n_results == len(airline_small.select(query))
        merged = np.sort(np.concatenate([result.primary_row_ids, result.outlier_row_ids]))
        assert np.array_equal(np.sort(result.row_ids), np.unique(merged))
        # Most results come from the primary index (the data is mostly inliers).
        assert result.primary_share > 0.7

    def test_work_is_less_than_full_scan(self, airline_coax, airline_small):
        airline_coax.stats.reset()
        query = Rectangle({"Distance": Interval(500.0, 520.0), "AirTime": Interval(70.0, 95.0)})
        airline_coax.range_query(query)
        assert airline_coax.stats.rows_examined < airline_small.n_rows / 2


class TestTranslationIntegration:
    def test_translated_query_narrows_predictor(self, airline_coax):
        query = Rectangle({"AirTime": Interval(100.0, 130.0)})
        translated = airline_coax.translated_query(query)
        group = next(g for g in airline_coax.groups if "AirTime" in g.dependents)
        predictor_interval = translated.interval(group.predictor)
        assert not predictor_interval.is_unbounded

    def test_plan_skips_primary_for_contradictory_query(self, airline_coax):
        group = next(g for g in airline_coax.groups if "AirTime" in g.dependents)
        # Distance very small but AirTime very large: impossible for inliers.
        query = Rectangle(
            {group.predictor: Interval(80.0, 120.0), "AirTime": Interval(700.0, 900.0)}
        )
        plan = airline_coax.plan(query)
        assert not plan.use_primary


class TestExplicitGroupsAndConfig:
    @pytest.fixture(scope="class")
    def linear_table(self) -> Table:
        rng = np.random.default_rng(11)
        x = rng.uniform(0.0, 100.0, size=2_000)
        y = 2.0 * x + rng.uniform(-1.0, 1.0, size=2_000)
        z = rng.uniform(0.0, 50.0, size=2_000)
        return Table({"x": x, "y": y, "z": z})

    def test_explicit_groups_bypass_detection(self, linear_table):
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.0, 1.0)},
            )
        ]
        index = COAXIndex(linear_table, groups=groups)
        assert index.groups == tuple(groups)
        assert index.primary_ratio == pytest.approx(1.0, abs=0.01)

    def test_max_groups_limits_usage(self, airline_small, fast_detection_config):
        config = COAXConfig(detection=fast_detection_config, max_groups=1)
        index = COAXIndex(airline_small, config=config)
        assert len(index.groups) == 1

    def test_explicit_sort_dimension(self, linear_table):
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.0, 1.0)},
            )
        ]
        config = COAXConfig(primary_sort_dimension="z")
        index = COAXIndex(linear_table, groups=groups, config=config)
        assert index.primary_index.sort_dimension == "z"

    def test_invalid_sort_dimension_rejected(self, linear_table):
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.0, 1.0)},
            )
        ]
        # "y" is a predicted attribute, so it cannot be the primary sort dim.
        config = COAXConfig(primary_sort_dimension="y")
        with pytest.raises(IndexBuildError):
            COAXIndex(linear_table, groups=groups, config=config)

    @pytest.mark.parametrize("outlier_kind", ["sorted_cell_grid", "uniform_grid", "rtree", "full_scan"])
    def test_outlier_index_choices(self, outlier_kind, outlier_linear_table, fast_detection_config):
        config = COAXConfig(detection=fast_detection_config, outlier_index=outlier_kind)
        index = COAXIndex(outlier_linear_table, config=config)
        query = Rectangle({"x": Interval(10.0, 60.0), "y": Interval(0.0, 100.0)})
        assert np.array_equal(
            np.sort(index.range_query(query)), outlier_linear_table.select(query)
        )

    def test_low_primary_fraction_warning(self, fast_detection_config):
        rng = np.random.default_rng(12)
        n = 3_000
        x = rng.uniform(0.0, 100.0, size=n)
        y = 2.0 * x + rng.normal(scale=0.5, size=n)
        # 55% outliers: the FD still gets detected on dense centres but the
        # primary index retains less than the configured minimum.
        outliers = rng.random(n) < 0.55
        y[outliers] = rng.uniform(y.min(), y.max(), size=int(outliers.sum()))
        table = Table({"x": x, "y": y})
        config = COAXConfig(detection=fast_detection_config, min_primary_fraction=0.6)
        index = COAXIndex(table, config=config)
        if index.groups:
            assert any("primary index retains only" in w for w in index.build_report.warnings)

    def test_no_groups_degenerates_gracefully(self, fast_coax_config):
        rng = np.random.default_rng(13)
        table = Table(
            {
                "a": rng.uniform(size=1_000),
                "b": rng.normal(size=1_000),
            }
        )
        index = COAXIndex(table, config=fast_coax_config)
        assert len(index.groups) == 0
        assert index.primary_ratio == 1.0
        query = Rectangle({"a": Interval(0.2, 0.8)})
        assert np.array_equal(np.sort(index.range_query(query)), table.select(query))

    def test_dimensions_restriction_drops_foreign_groups(self, airline_small, fast_detection_config):
        groups = [
            FDGroup(
                predictor="Distance",
                dependents=("AirTime",),
                models={"AirTime": LinearFDModel(0.14, 18.0, 20.0, 20.0)},
            )
        ]
        index = COAXIndex(
            airline_small,
            groups=groups,
            dimensions=("DepTime", "ArrTime", "DayOfWeek"),
            config=COAXConfig(detection=fast_detection_config),
        )
        assert index.groups == ()
        assert "dropped FD groups referencing non-indexed attributes" in index.build_report.warnings
