"""Tests for COAX deletes, in-place updates and reclaiming compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.core.delta import DeltaStore
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel


def make_linear_table(n: int = 2_000, seed: int = 21) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 100.0, size=n)
    y = 2.0 * x + rng.uniform(-1.0, 1.0, size=n)
    return Table({"x": x, "y": y})


def make_groups() -> list:
    return [
        FDGroup(
            predictor="x",
            dependents=("y",),
            models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
        )
    ]


@pytest.fixture()
def index() -> COAXIndex:
    return COAXIndex(make_linear_table(), groups=make_groups())


WIDE = Rectangle({"x": Interval(-1e9, 1e9), "y": Interval(-1e9, 1e9)})


class TestDelete:
    def test_delete_hides_row_immediately(self, index):
        target = 7
        vx = float(index.table.column("x")[target])
        query = Rectangle({"x": Interval(vx - 1e-9, vx + 1e-9)})
        assert target in index.range_query(query)
        assert index.delete(target) is True
        assert target not in index.range_query(query)
        assert index.n_tombstoned == 1
        assert index.n_live == index.n_rows - 1

    def test_delete_is_idempotent(self, index):
        assert index.delete(5) is True
        assert index.delete(5) is False
        assert index.n_tombstoned == 1

    def test_delete_unknown_id_is_noop(self, index):
        assert index.delete(10**9) is False
        assert index.n_tombstoned == 0

    def test_delete_batch_counts_live_rows_only(self, index):
        ids = np.array([1, 2, 3, 2, 10**9], dtype=np.int64)
        assert index.delete_batch(ids) == 3
        assert index.delete_batch(ids) == 0

    def test_delete_batch_is_o_k_not_o_n(self, index):
        """A delete must not touch any directory structure (tombstone only)."""
        before = index.primary_index._offsets.copy()
        index.delete_batch(np.arange(100, dtype=np.int64))
        assert np.array_equal(index.primary_index._offsets, before)

    def test_delete_pending_row_removes_it_in_place(self, index):
        row_id = index.insert({"x": 10.0, "y": 20.0})
        assert index.n_pending == 1
        assert index.delete(row_id) is True
        assert index.n_pending == 0
        assert index.n_tombstoned == 0  # delta deletes never tombstone
        assert row_id not in index.range_query(WIDE)

    def test_delete_where_returns_deleted_ids(self, index):
        query = Rectangle({"x": Interval(20.0, 30.0)})
        expected = np.sort(index.range_query(query))
        deleted = index.delete_where(query)
        assert np.array_equal(np.sort(deleted), expected)
        assert len(index.range_query(query)) == 0

    def test_deleted_ids_are_never_reused(self, index):
        next_id = index.next_row_id
        index.delete_batch(np.arange(50, dtype=np.int64))
        fresh = index.insert({"x": 1.0, "y": 2.0})
        assert fresh == next_id
        index.compact()
        assert index.insert({"x": 1.0, "y": 2.0}) == next_id + 1

    def test_batch_matches_sequential_deletes(self):
        rng = np.random.default_rng(3)
        doomed = rng.choice(2_000, size=300, replace=False).astype(np.int64)
        batch_index = COAXIndex(make_linear_table(), groups=make_groups())
        seq_index = COAXIndex(make_linear_table(), groups=make_groups())
        assert batch_index.delete_batch(doomed) == 300
        assert sum(seq_index.delete(int(i)) for i in doomed) == 300
        for query in (WIDE, Rectangle({"x": Interval(10.0, 60.0)})):
            assert np.array_equal(
                batch_index.range_query(query), seq_index.range_query(query)
            )


class TestUpdate:
    def test_update_changes_values_under_same_id(self, index):
        index.update_batch(
            np.array([4], dtype=np.int64), {"x": [50.0], "y": [100.3]}
        )
        hits = index.range_query(
            Rectangle({"x": Interval(49.9, 50.1), "y": Interval(100.0, 100.6)})
        )
        assert 4 in hits
        assert index.n_pending == 1  # new version lives in the delta store

    def test_update_of_pending_row(self, index):
        row_id = index.insert({"x": 10.0, "y": 20.0})
        index.update_batch(np.array([row_id]), {"x": [60.0], "y": [120.5]})
        assert index.n_pending == 1
        assert row_id in index.range_query(Rectangle({"y": Interval(120.4, 120.6)}))
        assert row_id not in index.range_query(Rectangle({"x": Interval(9.9, 10.1)}))

    def test_update_unknown_or_deleted_id_raises(self, index):
        with pytest.raises(KeyError):
            index.update_batch(np.array([10**9]), {"x": [1.0], "y": [2.0]})
        index.delete(3)
        with pytest.raises(KeyError):
            index.update_batch(np.array([3]), {"x": [1.0], "y": [2.0]})

    def test_update_duplicate_ids_rejected(self, index):
        with pytest.raises(ValueError):
            index.update_batch(
                np.array([1, 1]), {"x": [1.0, 2.0], "y": [2.0, 4.0]}
            )

    def test_update_length_mismatch_rejected(self, index):
        with pytest.raises(ValueError):
            index.update_batch(np.array([1, 2]), {"x": [1.0], "y": [2.0]})

    def test_update_then_delete_removes_the_record(self, index):
        index.update_batch(np.array([9]), {"x": [42.0], "y": [84.1]})
        assert index.delete(9) is True
        assert 9 not in index.range_query(WIDE)
        index.compact()
        assert 9 not in index.range_query(WIDE)

    def test_update_survives_compaction_in_place(self, index):
        index.update_batch(np.array([9]), {"x": [42.0], "y": [84.1]})
        index.compact()
        assert index.n_pending == 0 and index.n_tombstoned == 0
        hits = index.range_query(Rectangle({"x": Interval(41.9, 42.1)}))
        assert 9 in hits
        # The updated value was written back to the table position == id.
        assert float(index.table.column("x")[9]) == 42.0


class TestReclaimCompaction:
    def test_compact_reclaims_tombstones(self, index):
        rng = np.random.default_rng(5)
        doomed = rng.choice(2_000, size=400, replace=False).astype(np.int64)
        index.delete_batch(doomed)
        survivors_before = np.sort(index.live_row_ids())
        results_before = np.sort(index.range_query(WIDE))
        index.compact()
        assert index.n_tombstoned == 0
        assert index.n_rows == 1_600
        assert np.array_equal(np.sort(index.row_ids), survivors_before)
        assert np.array_equal(np.sort(index.range_query(WIDE)), results_before)

    def test_compact_rebuilds_partition_and_boxes_from_survivors(self, index):
        # Delete every outlier-ish row: the primary ratio must reach 1.0
        # and the outlier box must vanish once reclaimed.
        outlier_ids = index.partition.outlier_ids
        index.insert({"x": 1.0, "y": 900.0})  # one pending outlier, deleted below
        pending_outlier = index.next_row_id - 1
        index.delete_batch(np.concatenate([outlier_ids, [pending_outlier]]))
        index.compact()
        assert index.primary_ratio == pytest.approx(1.0)
        assert index.partition.n_rows == index.n_rows
        assert index.build_report.n_rows == index.n_rows
        assert index._outlier_box is None

    def test_compact_mixed_crud_matches_ground_truth(self, index):
        rng = np.random.default_rng(8)
        table = make_linear_table()
        ref = {i: (float(table.column("x")[i]), float(table.column("y")[i])) for i in range(2_000)}
        inserted = index.insert_batch({"x": [10.0, 20.0], "y": [20.1, 40.2]})
        ref[int(inserted[0])] = (10.0, 20.1)
        ref[int(inserted[1])] = (20.0, 40.2)
        doomed = rng.choice(2_000, size=200, replace=False).astype(np.int64)
        index.delete_batch(doomed)
        for i in doomed:
            ref.pop(int(i))
        live = np.array(sorted(ref), dtype=np.int64)[:50]
        index.update_batch(live, {"x": np.full(50, 77.0), "y": np.full(50, 154.2)})
        for i in live:
            ref[int(i)] = (77.0, 154.2)
        index.compact()
        for query in (
            WIDE,
            Rectangle({"x": Interval(76.9, 77.1)}),
            Rectangle({"x": Interval(10.0, 60.0), "y": Interval(20.0, 120.0)}),
        ):
            expected = np.array(
                sorted(
                    i
                    for i, (vx, vy) in ref.items()
                    if query.interval("x").contains_value(vx)
                    and query.interval("y").contains_value(vy)
                ),
                dtype=np.int64,
            )
            assert np.array_equal(np.sort(index.range_query(query)), expected)

    def test_compact_with_everything_deleted(self, index):
        index.delete_batch(np.arange(2_000, dtype=np.int64))
        index.compact()
        assert index.n_live == 0
        assert len(index.range_query(WIDE)) == 0
        # The index stays usable for new inserts after a full wipe.
        row_id = index.insert({"x": 5.0, "y": 10.3})
        assert index.range_query(WIDE).tolist() == [row_id]
        index.compact()
        assert index.range_query(WIDE).tolist() == [row_id]

    def test_subset_scoped_index_keeps_ids_through_compact(self):
        table = make_linear_table()
        subset = np.arange(500, 1_500, dtype=np.int64)
        index = COAXIndex(table, groups=make_groups(), row_ids=subset)
        row_id = index.insert({"x": 50.0, "y": 100.2})
        index.delete(700)
        index.compact()
        assert index.n_pending == 0 and index.n_tombstoned == 0
        assert row_id in index.range_query(Rectangle({"x": Interval(49.9, 50.1)}))
        assert 700 not in index.range_query(WIDE)
        assert 800 in index.range_query(WIDE)


class TestAutoCompactOnTombstones:
    def test_fraction_triggers_compaction(self):
        config = COAXConfig(auto_compact_tombstone_fraction=0.25)
        index = COAXIndex(make_linear_table(), config=config, groups=make_groups())
        index.delete_batch(np.arange(400, dtype=np.int64))  # 20% — below
        assert index.n_tombstoned == 400
        index.delete_batch(np.arange(400, 600, dtype=np.int64))  # 30% — over
        assert index.n_tombstoned == 0
        assert index.n_live == 1_400

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            COAXConfig(auto_compact_tombstone_fraction=0.0)
        with pytest.raises(ValueError):
            COAXConfig(auto_compact_tombstone_fraction=1.5)


class TestRowIdLeakRegression:
    def test_failed_append_does_not_burn_ids(self, index):
        """Regression: ids were claimed before append_batch could fail."""
        next_id = index.next_row_id

        def boom(*args, **kwargs):
            raise RuntimeError("append failed")

        original = index.delta.append_batch
        index.delta.append_batch = boom
        with pytest.raises(RuntimeError):
            index.insert_batch({"x": [1.0], "y": [2.0]})
        index.delta.append_batch = original
        assert index.next_row_id == next_id
        assert index.insert({"x": 1.0, "y": 2.0}) == next_id


class TestPendingStatsCounted:
    def test_delta_rows_count_as_examined_on_both_paths(self, index):
        index.insert_batch({"x": np.full(100, 10.0), "y": np.full(100, 20.0)})
        queries = [
            Rectangle({"x": Interval(5.0, 15.0)}),
            Rectangle({"x": Interval(5.0, 1.0)}),  # empty: scans nothing
            Rectangle(),
        ]
        index.stats.reset()
        for query in queries:
            index.range_query(query)
        seq = (
            index.stats.queries,
            index.stats.rows_examined,
            index.stats.rows_matched,
            index.stats.cells_visited,
        )
        index.stats.reset()
        index.batch_range_query(queries)
        batch = (
            index.stats.queries,
            index.stats.rows_examined,
            index.stats.rows_matched,
            index.stats.cells_visited,
        )
        assert seq == batch
        # Two live queries each scanned the 100-row pending buffer.
        sub_examined = seq[1] - 2 * 100
        index.stats.reset()
        index.compact()
        for query in queries:
            index.range_query(query)
        assert index.stats.rows_examined >= sub_examined


class TestDeltaStoreDeletes:
    def test_delete_rows_compacts_in_place_and_decrements_counts(self):
        groups = make_groups()
        store = DeltaStore(("x", "y"), groups)
        store.append_batch(
            {"x": np.array([1.0, 2.0, 3.0]), "y": np.array([2.0, 4.0, 900.0])},
            np.array([10, 11, 12]),
        )
        assert store.per_model_inlier_counts == {"x->y": 2}
        assert store.delete_rows(np.array([10, 99])) == 1
        assert store.n_pending == 2
        assert store.row_ids.tolist() == [11, 12]
        assert store.per_model_inlier_counts == {"x->y": 1}
        assert store.inlier_mask.tolist() == [True, False]
        assert store.column("x").tolist() == [2.0, 3.0]
        assert store.delete_rows(np.array([10])) == 0

    def test_load_state_does_not_reevaluate_models(self):
        groups = make_groups()
        store = DeltaStore(("x", "y"), groups)
        store.append_batch(
            {"x": np.array([1.0, 2.0]), "y": np.array([2.0, 700.0])},
            np.array([0, 1]),
        )
        payload = store.state()
        restored = DeltaStore(("x", "y"), groups)
        model = groups[0].models["y"]
        calls = {"n": 0}
        original = type(model).within_margin

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        type(model).within_margin = counting
        try:
            restored.load_state(payload)
        finally:
            type(model).within_margin = original
        assert calls["n"] == 0
        assert restored.per_model_inlier_counts == store.per_model_inlier_counts
        assert restored.inlier_mask.tolist() == store.inlier_mask.tolist()

    def test_legacy_state_without_model_masks_still_loads(self):
        groups = make_groups()
        store = DeltaStore(("x", "y"), groups)
        store.append_batch(
            {"x": np.array([1.0, 2.0]), "y": np.array([2.0, 700.0])},
            np.array([0, 1]),
        )
        payload = {
            key: value
            for key, value in store.state().items()
            if not key.startswith("model::")
        }
        restored = DeltaStore(("x", "y"), groups)
        restored.load_state(payload)
        assert restored.per_model_inlier_counts == store.per_model_inlier_counts
        assert restored.inlier_mask.tolist() == store.inlier_mask.tolist()
