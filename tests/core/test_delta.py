"""Unit tests for the columnar delta store (repro.core.delta)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta import DeltaStore, NonFiniteBatchError, coerce_batch
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel


def make_store(groups=None, **kwargs) -> DeltaStore:
    if groups is None:
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.0, 1.0)},
            )
        ]
    return DeltaStore(("x", "y"), groups, **kwargs)


def batch(xs, ys):
    return {
        "x": np.asarray(xs, dtype=np.float64),
        "y": np.asarray(ys, dtype=np.float64),
    }


class TestCoerceBatch:
    def test_table_input(self):
        table = Table({"x": np.array([1.0]), "y": np.array([2.0])})
        columns = coerce_batch(table, ("x", "y"))
        assert columns["x"].tolist() == [1.0]

    def test_mapping_input_casts_dtype(self):
        columns = coerce_batch({"x": [1, 2], "y": [3, 4]}, ("x", "y"))
        assert columns["x"].dtype == np.float64

    def test_records_input(self):
        columns = coerce_batch([{"x": 1.0, "y": 2.0}], ("x", "y"))
        assert columns["y"].tolist() == [2.0]

    def test_extra_attributes_ignored(self):
        columns = coerce_batch({"x": [1.0], "y": [2.0], "z": [9.0]}, ("x", "y"))
        assert set(columns) == {"x", "y"}

    def test_later_record_missing_attribute_raises_value_error(self):
        with pytest.raises(ValueError):
            coerce_batch([{"x": 1.0, "y": 2.0}, {"x": 3.0}], ("x", "y"))

    def test_missing_column_raises(self):
        with pytest.raises(ValueError):
            coerce_batch({"x": [1.0]}, ("x", "y"))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            coerce_batch({"x": [1.0, 2.0], "y": [1.0]}, ("x", "y"))

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_non_finite_values_rejected_with_typed_error(self, poison):
        """NaN/inf record values raise the typed error naming the column."""
        with pytest.raises(NonFiniteBatchError) as excinfo:
            coerce_batch({"x": [1.0, poison], "y": [1.0, 2.0]}, ("x", "y"))
        assert excinfo.value.attribute == "x"
        # Subclasses ValueError so existing handlers keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_non_finite_record_rejected(self):
        with pytest.raises(NonFiniteBatchError):
            coerce_batch([{"x": float("nan"), "y": 2.0}], ("x", "y"))


class TestAppendAndGrowth:
    def test_append_routes_batch(self):
        store = make_store()
        mask = store.append_batch(batch([1.0, 2.0], [2.5, 90.0]), np.array([10, 11]))
        assert mask.tolist() == [True, False]
        assert store.n_pending == 2
        assert store.n_pending_primary == 1
        assert store.n_pending_outlier == 1

    def test_geometric_growth(self):
        store = make_store(initial_capacity=4)
        assert store.capacity == 4
        for i in range(20):
            store.append_batch(batch([float(i)], [2.0 * i]), np.array([i]))
        assert store.n_pending == 20
        assert store.capacity >= 20
        # Growth is geometric: far fewer reallocations than appends.
        assert store.capacity < 80

    def test_large_batch_in_one_reserve(self):
        store = make_store(initial_capacity=2)
        n = 10_000
        xs = np.linspace(0.0, 100.0, n)
        store.append_batch(batch(xs, 2.0 * xs), np.arange(n))
        assert store.n_pending == n
        assert np.array_equal(store.column("x"), xs)

    def test_row_ids_preserved(self):
        store = make_store()
        store.append_batch(batch([1.0], [2.0]), np.array([42]))
        assert store.row_ids.tolist() == [42]

    def test_empty_append_is_noop(self):
        store = make_store()
        mask = store.append_batch(batch([], []), np.empty(0, dtype=np.int64))
        assert len(mask) == 0
        assert store.n_pending == 0

    def test_clear_keeps_capacity(self):
        store = make_store(initial_capacity=4)
        xs = np.arange(100, dtype=np.float64)
        store.append_batch(batch(xs, 2.0 * xs), np.arange(100))
        capacity = store.capacity
        store.clear()
        assert store.n_pending == 0
        assert store.capacity == capacity

    def test_no_groups_everything_is_inlier(self):
        store = make_store(groups=[])
        mask = store.append_batch(batch([1.0, 2.0], [500.0, -500.0]), np.array([0, 1]))
        assert mask.tolist() == [True, True]


class TestScan:
    def test_scan_matches_brute_force(self):
        rng = np.random.default_rng(7)
        n = 5_000
        xs = rng.uniform(0.0, 100.0, size=n)
        ys = rng.uniform(0.0, 250.0, size=n)
        store = make_store()
        store.append_batch(batch(xs, ys), np.arange(n))
        query = Rectangle({"x": Interval(10.0, 40.0), "y": Interval(50.0, 150.0)})
        expected = np.flatnonzero(
            (xs >= 10.0) & (xs <= 40.0) & (ys >= 50.0) & (ys <= 150.0)
        )
        assert np.array_equal(store.scan(query), expected)

    def test_scan_empty_store(self):
        store = make_store()
        assert len(store.scan(Rectangle({"x": Interval(0.0, 1.0)}))) == 0

    def test_scan_empty_query(self):
        store = make_store()
        store.append_batch(batch([1.0], [2.0]), np.array([0]))
        assert len(store.scan(Rectangle({"x": Interval.empty()}))) == 0

    def test_scan_unknown_attribute_raises(self):
        store = make_store()
        store.append_batch(batch([1.0], [2.0]), np.array([0]))
        with pytest.raises(KeyError):
            store.scan(Rectangle({"z": Interval(0.0, 1.0)}))

    def test_scan_returns_sorted_row_ids(self):
        store = make_store()
        store.append_batch(batch([5.0, 1.0, 3.0], [10.0, 2.0, 6.0]), np.array([30, 10, 20]))
        hits = store.scan(Rectangle({"x": Interval(0.0, 10.0)}))
        assert hits.tolist() == [10, 20, 30]


class TestStateRoundTrip:
    def test_state_load_state(self):
        store = make_store()
        store.append_batch(batch([1.0, 2.0], [2.0, 99.0]), np.array([7, 8]))
        payload = store.state()
        restored = make_store()
        restored.load_state(payload)
        assert restored.n_pending == 2
        assert restored.row_ids.tolist() == [7, 8]
        assert restored.inlier_mask.tolist() == store.inlier_mask.tolist()
        assert np.array_equal(restored.column("y"), store.column("y"))

    def test_pending_table(self):
        store = make_store()
        assert store.pending_table() is None
        store.append_batch(batch([1.0], [2.0]), np.array([0]))
        table = store.pending_table()
        assert isinstance(table, Table)
        assert table.n_rows == 1


class TestIncrementalHull:
    def test_box_tracks_appended_rows(self):
        store = make_store()
        store.append_batch(batch([5.0, 1.0], [10.0, 2.0]), np.array([0, 1]))
        lows, highs = store.box
        assert lows == {"x": 1.0, "y": 2.0}
        assert highs == {"x": 5.0, "y": 10.0}

    def test_drain_resets_hull(self):
        """Regression: deletes that empty the buffer must drop the hull.

        The stale box used to survive a full drain, so the next append
        unioned into it and the hull stayed permanently inflated —
        silently degrading engine-level shard pruning forever.
        """
        store = make_store()
        store.append_batch(batch([1_000.0], [2_000.0]), np.array([0]))
        assert store.delete_rows(np.array([0])) == 1
        assert store.box is None
        assert store._box is None  # the internal state, not just the property
        store.append_batch(batch([1.0, 2.0], [2.0, 4.0]), np.array([1, 2]))
        lows, highs = store.box
        assert highs["x"] == 2.0  # no trace of the drained far-away row
        assert highs["y"] == 4.0

    def test_partial_delete_keeps_conservative_hull(self):
        store = make_store()
        store.append_batch(batch([1.0, 100.0], [2.0, 200.0]), np.array([0, 1]))
        store.delete_rows(np.array([1]))
        lows, highs = store.box
        assert highs["x"] == 100.0  # conservative: may over-cover

    def test_nan_append_cannot_poison_the_hull(self):
        """Regression: a NaN column must not collapse the hull to NaN.

        NaN box comparisons are all False, so a NaN hull would let shard
        pruning skip a shard holding live pending rows.  Direct appends
        (the path persistence restore uses) fall back to fmin/fmax and,
        for an all-NaN column, to the unbounded interval — over-covering
        is fine, under-covering never is.
        """
        store = make_store(groups=[])
        store.append_batch(
            {"x": np.array([1.0, np.nan]), "y": np.array([2.0, 4.0])},
            np.array([0, 1]),
        )
        lows, highs = store.box
        assert lows["x"] == 1.0 and highs["x"] == 1.0
        assert lows["y"] == 2.0 and highs["y"] == 4.0
        store.append_batch(
            {"x": np.array([2.0]), "y": np.array([np.nan])}, np.array([2])
        )
        lows, highs = store.box
        # All-NaN extension: that attribute's hull is unbounded, not NaN.
        assert lows["x"] == 1.0 and highs["x"] == 2.0
        assert lows["y"] == -np.inf and highs["y"] == np.inf


class TestSetGroups:
    def test_swaps_models_for_future_routing(self):
        store = make_store()
        shifted = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 50.0, 1.0, 1.0)},
            )
        ]
        store.append_batch(batch([1.0], [52.0]), np.array([0]))
        assert store.inlier_mask.tolist() == [False]
        store.set_groups(shifted)
        store.append_batch(batch([1.0], [52.0]), np.array([1]))
        assert store.inlier_mask.tolist() == [False, True]

    def test_changed_model_set_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.set_groups([])


class TestPerModelCounts:
    def test_counts_accumulate_and_clear(self):
        store = make_store()
        store.append_batch(batch([1.0, 2.0], [2.5, 90.0]), np.array([0, 1]))
        store.append_batch(batch([3.0], [6.2]), np.array([2]))
        assert store.per_model_inlier_counts == {"x->y": 2}
        store.clear()
        assert store.per_model_inlier_counts == {"x->y": 0}
