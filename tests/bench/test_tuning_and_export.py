"""Tests for the tuning grid search and result export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.export import export_all, export_csv, export_json
from repro.bench.reporting import ExperimentResult
from repro.bench.tuning import (
    grid_search,
    tune_coax,
    tune_column_files,
    tune_rtree,
    tune_uniform_grid,
)
from repro.core.coax import COAXIndex
from repro.data.queries import WorkloadConfig, generate_knn_queries
from repro.data.table import Table
from repro.indexes.base import IndexBuildError
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.uniform_grid import UniformGridIndex


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(77)
    n = 3_000
    x = rng.uniform(0.0, 100.0, size=n)
    y = 2.0 * x + rng.normal(0.0, 1.0, size=n)
    z = rng.uniform(0.0, 50.0, size=n)
    return Table({"x": x, "y": y, "z": z})


@pytest.fixture(scope="module")
def workload(table):
    return generate_knn_queries(table, WorkloadConfig(n_queries=6, k_neighbours=60, seed=1))


class TestGridSearch:
    def test_finds_some_best_configuration(self, table, workload):
        result = grid_search(
            table,
            workload,
            lambda t, params: UniformGridIndex(t, cells_per_dim=int(params["cells"])),
            {"cells": [2, 4, 8]},
        )
        assert len(result.trials) == 3
        assert result.best_params["cells"] in (2, 4, 8)
        assert all(not trial.failed for trial in result.trials)

    def test_failed_builds_are_recorded_not_raised(self, table, workload):
        def factory(t, params):
            if params["cells"] == 0:
                raise IndexBuildError("impossible")
            return UniformGridIndex(t, cells_per_dim=int(params["cells"]))

        result = grid_search(table, workload, factory, {"cells": [0, 4]})
        assert len(result.trials) == 2
        assert result.trials[0].failed
        assert result.best_params["cells"] == 4

    def test_wrong_results_disqualify_a_configuration(self, table, workload):
        class BrokenIndex(FullScanIndex):
            def _range_query_positions(self, query):
                return np.empty(0, dtype=np.int64)

        def factory(t, params):
            return BrokenIndex(t) if params["broken"] else FullScanIndex(t)

        result = grid_search(table, workload, factory, {"broken": [True, False]})
        assert result.best_params["broken"] is False
        assert any(trial.failed for trial in result.trials)

    def test_all_failed_raises_on_best(self, table, workload):
        def factory(t, params):
            raise IndexBuildError("nope")

        result = grid_search(table, workload, factory, {"cells": [1]})
        with pytest.raises(ValueError):
            _ = result.best

    def test_empty_grid_rejected(self, table, workload):
        with pytest.raises(ValueError):
            grid_search(table, workload, lambda t, p: FullScanIndex(t), {})

    def test_as_rows(self, table, workload):
        result = grid_search(
            table,
            workload,
            lambda t, params: UniformGridIndex(t, cells_per_dim=int(params["cells"])),
            {"cells": [2, 4]},
        )
        rows = result.as_rows()
        assert len(rows) == 2
        assert "mean_ms" in rows[0] and "cells" in rows[0]


class TestTuners:
    def test_tune_rtree_prefers_reasonable_capacity(self, table, workload):
        best_capacity, result = tune_rtree(
            table, workload, capacity_candidates=(2, 8, 16, 32)
        )
        assert best_capacity in (2, 8, 16, 32)
        assert len(result.successful_trials) == 4

    def test_tune_uniform_grid(self, table, workload):
        best_cells, result = tune_uniform_grid(table, workload, cells_candidates=(2, 6, 12))
        assert best_cells in (2, 6, 12)
        assert result.best.mean_query_ms >= 0.0

    def test_tune_column_files_includes_sort_dimension(self, table, workload):
        best, result = tune_column_files(
            table, workload, cells_candidates=(2, 4), sort_candidates=("x", "z")
        )
        assert best["sort_dimension"] in ("x", "z")
        assert len(result.trials) == 4

    def test_tune_coax_returns_usable_config(self, table, workload, fast_detection_config):
        from repro.core.config import COAXConfig

        base = COAXConfig(detection=fast_detection_config)
        best_config, result = tune_coax(
            table, workload, cells_candidates=(2, 8), base_config=base
        )
        assert best_config.primary_cells_per_dim in (2, 8)
        index = COAXIndex(table, config=best_config)
        query = workload[0]
        assert np.array_equal(np.sort(index.range_query(query)), table.select(query))


class TestExport:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            experiment="demo",
            description="demo experiment",
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}],
            notes=["a note"],
        )

    def test_export_csv(self, result, tmp_path):
        path = export_csv(result, tmp_path / "demo.csv")
        content = path.read_text().splitlines()
        # The standard fields lead so every artifact joins on one schema.
        assert content[0] == (
            "executor,cold_start_s,offered_qps,p50_ms,p99_ms,clients,"
            "shards_pruned,rows_examined,a,b,c"
        )
        assert len(content) == 3

    def test_export_rows_carry_standard_fields(self, result, tmp_path):
        payload = json.loads(
            export_json(result, tmp_path / "demo.json").read_text()
        )
        for row in payload["rows"]:
            assert row["executor"] == ""
            assert row["cold_start_s"] is None
            # Serving-bench join fields ride every artifact too.
            assert row["offered_qps"] is None
            assert row["p50_ms"] is None
            assert row["p99_ms"] is None
            assert row["clients"] is None
            assert row["shards_pruned"] is None
            assert row["rows_examined"] is None

    def test_export_json(self, result, tmp_path):
        path = export_json(result, tmp_path / "demo.json")
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "demo"
        assert payload["rows"][0]["a"] == 1
        assert payload["notes"] == ["a note"]

    def test_export_all(self, result, tmp_path):
        paths = export_all([result], tmp_path / "out")
        assert len(paths) == 2
        assert all(path.exists() for path in paths)
