"""Smoke and shape tests for the experiment drivers (tiny scales).

These tests run every driver end to end at a very small scale and check the
structural properties the paper's artefacts rely on — not absolute numbers.
The full-scale regeneration lives in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablations,
    agg,
    appendix_g,
    crud,
    drift,
    fig4,
    fig6,
    fig7,
    fig8,
    headline,
    layout,
    read_path,
    restart,
    table1,
    theory,
    updates,
)


SMALL = 4_000


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig4", "fig6", "fig7", "fig8",
            "theory", "appendix_g", "headline", "ablations", "updates",
            "read_path", "crud", "restart", "scale", "drift", "serve",
            "layout", "agg",
        }


class TestTable1:
    def test_rows_and_ratios(self):
        result = table1.run(n_rows=SMALL)
        assert [row["dataset"] for row in result.rows] == ["Airline", "OSM"]
        airline, osm = result.rows
        assert airline["dimensions"] == 8
        assert osm["dimensions"] == 4
        assert 0.8 <= airline["primary_ratio"] <= 1.0
        assert 0.6 <= osm["primary_ratio"] <= 0.9
        # Airline must reduce to fewer indexed than total dimensions.
        assert airline["indexed_dims"] < airline["dimensions"]


class TestFig4:
    def test_histogram_shape(self):
        result = fig4.run(n_rows=SMALL, cells_per_dim=16, n_bins=6)
        layouts = {row["layout"] for row in result.rows}
        assert layouts == {"uniform 2D grid", "quantile 2D grid"}
        summaries = [row for row in result.rows if row["page_length_low"] == "summary"]
        assert len(summaries) == 2
        uniform = next(r for r in summaries if r["layout"] == "uniform 2D grid")
        quantile = next(r for r in summaries if r["layout"] == "quantile 2D grid")
        # Quantile boundaries reduce the page-size spread (Figure 4b vs 4c).
        assert quantile["std_page"] <= uniform["std_page"]


class TestFig6:
    def test_shape(self):
        result = fig6.run(n_rows=SMALL, n_queries=6)
        indexes = {row["index"] for row in result.rows}
        assert {"COAX", "R-Tree", "Full Grid", "Full Scan", "COAX (components)"} <= indexes
        coax_rows = [r for r in result.rows if r["index"] == "COAX" and r["workload"] == "range"]
        scan_rows = [r for r in result.rows if r["index"] == "Full Scan" and r["workload"] == "range"]
        # COAX must examine far fewer rows than the full scan on every dataset.
        for coax_row, scan_row in zip(coax_rows, scan_rows):
            assert coax_row["rows_examined_per_q"] < 0.7 * scan_row["rows_examined_per_q"]
        # Results counts agree across indexes (verified inside the harness too).
        assert len(coax_rows) == 2


class TestFig7:
    def test_selectivity_sweep(self):
        result = fig7.run(n_rows=SMALL, n_queries=5, selectivity_fractions=(0.01, 0.1))
        targets = sorted({row["target_selectivity"] for row in result.rows})
        assert len(targets) == 2
        coax = [r for r in result.rows if r["index"] == "COAX"]
        rtree = [r for r in result.rows if r["index"] == "R-Tree"]
        assert len(coax) == len(rtree) == 2
        # Work grows with selectivity for every index.
        assert coax[0]["rows_examined_per_q"] < coax[1]["rows_examined_per_q"]


class TestFig8:
    def test_tradeoff_rows(self):
        result = fig8.run(n_rows=SMALL, n_queries=5, cell_sweep=(2, 6), capacity_sweep=(8,))
        coax_rows = [r for r in result.rows if r["index"] == "COAX (total)" and r["dataset"] == "Airline"]
        assert len(coax_rows) == 2
        # Directory grows with the cell count.
        assert coax_rows[0]["dir_bytes"] <= coax_rows[1]["dir_bytes"]
        rtree_rows = [r for r in result.rows if r["index"] == "R-Tree"]
        assert all(r["dir_bytes"] > coax_rows[0]["dir_bytes"] for r in rtree_rows)


class TestTheory:
    def test_predictions_close_to_measurement(self):
        result = theory.run(n_rows=20_000, stream_length=50_000)
        for row in result.rows:
            if row["check"].startswith("effectiveness"):
                assert row["relative_error"] < 0.15
        thm71 = [r for r in result.rows if "7.1" in r["check"]]
        # For the largest margin the MFET estimate is tight.
        assert thm71[-1]["relative_error"] < 0.3


class TestAppendixG:
    def test_analytic_cells_grow_as_margin_shrinks(self):
        result = appendix_g.run(n_rows=SMALL, epsilons=(4.0, 16.0))
        cells = {row["epsilon"]: row["analytic_cells_to_scan"] for row in result.rows}
        assert cells[4.0] > cells[16.0]


class TestHeadline:
    def test_memory_reduction_factors(self):
        result = headline.run(n_rows=SMALL, n_queries=6)
        rtree_rows = [r for r in result.rows if r.get("competitor") == "R-Tree"]
        assert len(rtree_rows) == 2
        for row in rtree_rows:
            assert row["memory_reduction_x"] > 5.0


class TestAblations:
    def test_all_ablation_families_present(self):
        result = ablations.run(n_rows=SMALL, n_queries=5)
        families = {row["ablation"] for row in result.rows}
        assert families == {"margins", "outlier index", "bucketing", "spline model"}

    def test_spline_segments_decrease_with_epsilon(self):
        rows = ablations.spline_ablation(n_rows=SMALL)
        segments = [row["n_segments"] for row in rows]
        assert segments == sorted(segments, reverse=True)


class TestUpdates:
    def test_phases_and_acceptance_checks(self):
        result = updates.run(
            n_rows=SMALL,
            n_queries=5,
            n_inserts=6_000,
            batch_size=2_000,
            n_pending_for_query=2_000,
        )
        phases = {row["phase"] for row in result.rows}
        assert phases == {"insert", "compact", "query", "mixed"}
        batch_row = next(
            row for row in result.rows if row["method"] == "insert_batch()"
        )
        # The acceptance bar (20x at 100k inserts) is checked by the
        # full-scale benchmark run; here the batch path times in single-digit
        # milliseconds, where a scheduler stall on a shared CI runner can
        # eat an order of magnitude, so only a loose sanity bound is safe.
        assert batch_row["speedup_vs_seq"] >= 5.0
        compact_rows = [
            row for row in result.rows if row["method"] == "incremental compact()"
        ]
        assert {row["dataset"] for row in compact_rows} == {"Airline", "OSM"}
        for row in compact_rows:
            assert row["mismatched_queries"] == 0
        mixed_row = next(row for row in result.rows if row["phase"] == "mixed")
        assert mixed_row["rows"] == 6_000


class TestCRUD:
    def test_smoke_mode_structure_and_oracle_identity(self):
        result = crud.run(n_rows=SMALL, n_queries=8, smoke=True)
        phases = {row["phase"] for row in result.rows}
        assert phases == {"delete", "query", "update", "compact"}
        # Every result set was verified against the delete-aware full scan.
        for row in result.rows:
            assert row.get("mismatched_queries", 0) == 0
        delete_row = next(
            row for row in result.rows if row["method"] == "delete_batch()"
        )
        update_row = next(
            row for row in result.rows if row["method"] == "update_batch()"
        )
        # The full-scale acceptance bars (>= 100x deletes) belong to the
        # benchmark run; on CI scale only loose sanity bounds are safe.
        assert delete_row["speedup_vs_seq"] >= 10.0
        assert update_row["speedup_vs_seq"] >= 5.0
        reclaim_row = next(
            row for row in result.rows if row["method"] == "compact() reclaim"
        )
        fresh_row = next(
            row
            for row in result.rows
            if row["method"] == "fresh build over live rows"
        )
        assert reclaim_row["rows"] == fresh_row["rows"]


class TestDrift:
    def test_smoke_mode_structure_and_gates(self):
        """The driver's internal gates (oracle identity, refresh fired,
        primary-fraction and rows-examined wins) all hold at CI scale;
        here the reported rows are spot-checked for shape."""
        result = drift.run(smoke=True)
        engines = {row["engine"] for row in result.rows}
        assert "COAX (frozen)" in engines
        assert "COAX (adaptive)" in engines
        assert any(engine.startswith("ShardedCOAX") for engine in engines)
        stream = [row for row in result.rows if row["phase"] == "stream"]
        query = [row for row in result.rows if row["phase"] == "query"]
        assert len(stream) == 3
        assert {row["workload"] for row in query} == {"range-predicted", "range"}
        frozen = next(r for r in stream if r["engine"] == "COAX (frozen)")
        adaptive = next(r for r in stream if r["engine"] == "COAX (adaptive)")
        assert frozen["model_refreshes"] == 0
        assert adaptive["model_refreshes"] >= 1
        assert adaptive["primary_fraction"] > frozen["primary_fraction"]
        for row in query:
            assert row["mismatched_queries"] == 0


class TestLayout:
    def test_smoke_mode_structure_and_gates(self):
        """The driver's internal gates (oracle identity on every phase,
        >=1 adopted re-layout, the deterministic post-shift rows_examined
        advantage) all hold at CI scale; the reported rows are
        spot-checked for shape and the static/adaptive contrast."""
        result = layout.run(smoke=True)
        assert {row["engine"] for row in result.rows} == {"static", "adaptive"}
        assert {row["phase"] for row in result.rows} == {
            "skew", "shift-before-adapt", "shift-after-adapt",
        }
        for row in result.rows:
            assert row["mismatched_queries"] == 0
        by_phase: dict = {}
        for row in result.rows:
            by_phase.setdefault(row["phase"], {})[row["engine"]] = row
        for phase, engines in by_phase.items():
            # Same queries, same live rows: matched counts must agree.
            assert (
                engines["static"]["rows_matched"]
                == engines["adaptive"]["rows_matched"]
            ), phase
            assert engines["static"]["layout_epoch"] == 0
        # One adoption per workload regime: skew, then the shift.
        assert by_phase["skew"]["adaptive"]["layout_epoch"] == 1
        assert by_phase["shift-after-adapt"]["adaptive"]["layout_epoch"] == 2
        post = by_phase["shift-after-adapt"]
        assert (
            post["adaptive"]["rows_examined"] * 1.5
            <= post["static"]["rows_examined"]
        )


class TestAgg:
    def test_smoke_mode_structure_and_gates(self):
        """The driver's internal gates (per-query pushdown/baseline
        equality, exact kNN vs brute force, the >=5x examined-rows
        advantage for COUNT/SUM/AVG) all hold at CI scale; the reported
        rows are spot-checked for shape and the pushdown contrast."""
        result = agg.run(smoke=True)
        assert result.experiment == "agg"
        assert {row["dataset"] for row in result.rows} == {"Airline", "OSM"}
        workloads = {row["workload"] for row in result.rows}
        assert {f"agg:{op}" for op in agg.AGG_OPS} <= workloads
        assert any(w.startswith("knn:") for w in workloads)
        for row in result.rows:
            if row["workload"].split(":")[1] in agg.FOLD_ONLY_OPS:
                assert (
                    row["pushdown_rows_examined"] * agg.SMOKE_EXAMINED_FACTOR
                    <= row["materialize_rows_examined"]
                )

    def test_smoke_gate_raises_on_regression(self, monkeypatch):
        # Forcing the gate factor sky-high must trip the AssertionError —
        # proving the CI step actually fails on a pushdown regression.
        monkeypatch.setattr(agg, "SMOKE_EXAMINED_FACTOR", float("inf"))
        with pytest.raises(AssertionError, match="examined-rows gate"):
            agg.run(smoke=True)


class TestReadPath:
    def test_smoke_mode_structure_and_identity(self):
        result = read_path.run(n_rows=SMALL, n_queries=48, smoke=True)
        assert {row["dataset"] for row in result.rows} == {"Airline", "OSM"}
        assert {row["workload"] for row in result.rows} == {"range", "point"}
        indexes = {row["index"] for row in result.rows}
        assert "COAX" in indexes and "Column Files" in indexes
        assert any(index.startswith("COAX (+") for index in indexes)
        # Every batch row was verified against the sequential loop.
        for row in result.rows:
            assert row["mismatched_queries"] == 0
        sequential = [row for row in result.rows if row["mode"] == "sequential"]
        batch = [row for row in result.rows if row["mode"] == "batch"]
        assert sequential and batch
        assert all(row["batch_size"] == 1 for row in sequential)
        assert all(row["batch_size"] > 1 for row in batch)
        # Smoke mode asserts batch >= sequential internally (best batch size
        # per dataset/workload); spot-check the reported numbers agree.
        best: dict = {}
        for row in batch:
            if row["index"] == "COAX":
                key = (row["dataset"], row["workload"])
                best[key] = max(best.get(key, 0.0), row["speedup_vs_seq"])
        assert best and all(value >= 1.0 for value in best.values())


class TestRestart:
    def test_smoke_mode_structure_and_gates(self):
        result = restart.run(n_rows=SMALL, smoke=True)
        formats = {row["format"] for row in result.rows}
        assert formats == {"v6-columnar", "v5-npz"}
        for row in result.rows:
            # Every loaded engine answered the probes bit-identically.
            assert row["mismatched_queries"] == 0
            assert row["cold_start_s"] > 0.0
            assert row["executor"] == "thread"
        v6 = next(row for row in result.rows if row["format"] == "v6-columnar")
        # Smoke mode gates on the mmap attach beating the npz copy-load.
        assert v6["speedup_vs_npz"] > 1.0

    def test_executor_override_reaches_loaded_engines(self):
        result = restart.run(n_rows=SMALL, executor="process", smoke=True)
        assert all(row["executor"] == "process" for row in result.rows)
