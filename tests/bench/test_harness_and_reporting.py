"""Tests for the benchmark harness and the text reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    IndexSpec,
    TimingResult,
    default_index_specs,
    run_comparison,
    time_workload,
)
from repro.bench.reporting import ExperimentResult, format_table
from repro.data.queries import QueryWorkload, WorkloadConfig, generate_knn_queries
from repro.data.table import Table
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.uniform_grid import UniformGridIndex


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(30)
    return Table(
        {
            "a": rng.uniform(0.0, 100.0, size=2_000),
            "b": rng.uniform(0.0, 100.0, size=2_000),
        }
    )


@pytest.fixture(scope="module")
def workload(table) -> QueryWorkload:
    return generate_knn_queries(table, WorkloadConfig(n_queries=8, k_neighbours=40, seed=1))


class TestTimingResult:
    def test_from_samples(self):
        timing = TimingResult.from_samples([0.001, 0.002, 0.003], total_results=42)
        assert timing.n_queries == 3
        assert timing.mean_ms == pytest.approx(2.0)
        assert timing.median_ms == pytest.approx(2.0)
        assert timing.total_results == 42

    def test_empty(self):
        timing = TimingResult.from_samples([], total_results=0)
        assert timing.n_queries == 0
        assert timing.mean_ms == 0.0


class TestTimeWorkload:
    def test_counts_all_results(self, table, workload):
        index = FullScanIndex(table)
        timing = time_workload(index, workload)
        expected = sum(len(table.select(query)) for query in workload)
        assert timing.total_results == expected
        assert timing.n_queries == len(workload)
        assert timing.total_seconds > 0

    def test_batch_size_knob_matches_sequential(self, table, workload):
        from repro.bench.harness import execute_workload
        from repro.indexes.grid_file import SortedCellGridIndex

        index = SortedCellGridIndex(table, cells_per_dim=5)
        sequential_total = execute_workload(index, workload)
        for batch_size in (1, 3, len(workload), 100):
            assert execute_workload(index, workload, batch_size=batch_size) == sequential_total
        timing = time_workload(index, workload, batch_size=3)
        assert timing.total_results == sequential_total
        assert timing.n_queries == len(workload)

    def test_batch_size_one_takes_the_batch_path(self, table, workload, monkeypatch):
        """``batch_size=1`` must honor the batch API, not silently fall back
        to the sequential loop (regression: the old guard was ``> 1``)."""
        from repro.bench.harness import execute_workload
        from repro.indexes.grid_file import SortedCellGridIndex

        index = SortedCellGridIndex(table, cells_per_dim=5)
        calls = {"batch": 0, "scalar": 0}
        original_batch = type(index).batch_range_query
        original_scalar = type(index).range_query

        def counting_batch(self, queries):
            calls["batch"] += 1
            return original_batch(self, queries)

        def counting_scalar(self, query):
            calls["scalar"] += 1
            return original_scalar(self, query)

        monkeypatch.setattr(type(index), "batch_range_query", counting_batch)
        monkeypatch.setattr(type(index), "range_query", counting_scalar)
        total = execute_workload(index, workload, batch_size=1)
        assert calls["batch"] == len(workload)
        assert calls["scalar"] == 0
        assert total == execute_workload(index, workload)
        timing = time_workload(index, workload, batch_size=1)
        assert timing.total_results == total
        assert timing.n_queries == len(workload)

    def test_invalid_batch_size_rejected(self, table, workload):
        from repro.bench.harness import execute_workload
        from repro.indexes.grid_file import SortedCellGridIndex

        index = SortedCellGridIndex(table, cells_per_dim=5)
        with pytest.raises(ValueError):
            execute_workload(index, workload, batch_size=0)
        with pytest.raises(ValueError):
            time_workload(index, workload, batch_size=-1)


class TestDriveInsertStream:
    """The write-side harness knob driving (drifting) insert streams."""

    @staticmethod
    def _coax(n=300, seed=4):
        from repro.core.coax import COAXIndex
        from repro.fd.groups import FDGroup
        from repro.fd.model import LinearFDModel

        rng = np.random.default_rng(seed)
        x = rng.uniform(0.0, 100.0, size=n)
        table = Table({"x": x, "y": 2.0 * x + rng.uniform(-1, 1, size=n)})
        groups = [
            FDGroup(
                predictor="x",
                dependents=("y",),
                models={"y": LinearFDModel(2.0, 0.0, 1.5, 1.5)},
            )
        ]
        return COAXIndex(table, groups=groups)

    def test_feeds_batches_and_compacts_on_cadence(self):
        from repro.bench.harness import drive_insert_stream

        index = self._coax()
        batches = [
            {"x": np.array([float(j), float(j) + 1.0]), "y": np.array([2.0 * j, 2.0 * j + 2.0])}
            for j in range(5)
        ]
        report = drive_insert_stream(index, batches, compact_every=2)
        assert report["rows_inserted"] == 10
        # Two cadence compactions plus the final partial-stream one.
        assert report["compactions"] == 3
        assert index.n_pending == 0
        assert index.n_rows == 300 + 10

    def test_no_compaction_by_default(self):
        from repro.bench.harness import drive_insert_stream

        index = self._coax()
        report = drive_insert_stream(
            index, [{"x": np.array([1.0]), "y": np.array([2.0])}]
        )
        assert report["compactions"] == 0
        assert index.n_pending == 1

    def test_invalid_cadence_rejected(self):
        from repro.bench.harness import drive_insert_stream

        with pytest.raises(ValueError):
            drive_insert_stream(self._coax(), [], compact_every=0)


class TestRunComparison:
    def test_rows_and_verification(self, table, workload):
        specs = [
            IndexSpec("scan", lambda t: FullScanIndex(t)),
            IndexSpec("grid", lambda t: UniformGridIndex(t, cells_per_dim=6)),
        ]
        rows = run_comparison(
            table, {"range": workload}, specs, dataset_name="unit", verify_against=table
        )
        assert len(rows) == 2
        for row in rows:
            assert row.dataset == "unit"
            assert row.timing.total_results == rows[0].timing.total_results
            as_dict = row.as_dict()
            assert "mean_ms" in as_dict and "dir_bytes" in as_dict
            assert "rows_examined_per_q" in as_dict

    def test_verification_catches_wrong_results(self, table, workload):
        class BrokenIndex(FullScanIndex):
            def _range_query_positions(self, query):
                return np.empty(0, dtype=np.int64)

        specs = [IndexSpec("broken", lambda t: BrokenIndex(t))]
        with pytest.raises(AssertionError):
            run_comparison(table, {"range": workload}, specs, verify_against=table)

    def test_default_specs_cover_paper_competitors(self):
        names = {spec.name for spec in default_index_specs()}
        assert names == {"COAX", "R-Tree", "Full Grid", "Column Files", "Full Scan"}
        without_scan = {spec.name for spec in default_index_specs(include_full_scan=False)}
        assert "Full Scan" not in without_scan


class TestReporting:
    def test_format_table_alignment_and_missing_keys(self):
        rows = [
            {"index": "COAX", "mean_ms": 1.234},
            {"index": "R-Tree", "mean_ms": 10.5, "extra": 3},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "index" in lines[1] and "extra" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_scientific_notation_for_extremes(self):
        text = format_table([{"v": 1.23e-7}, {"v": 4.56e9}])
        assert "e-07" in text or "e-7" in text
        assert "e+09" in text or "e+9" in text

    def test_experiment_result_table_and_series(self):
        result = ExperimentResult(
            experiment="unit",
            description="demo",
            rows=[{"a": 1, "b": 2}, {"a": 3}],
            notes=["a note"],
        )
        text = result.table()
        assert "[unit] demo" in text
        assert "note: a note" in text
        assert result.series("a") == [1, 3]
        assert result.series("b") == [2, None]
