"""Serving the operator executors: wire protocol, coalescing, end to end.

Covers the `op` dispatch surface: request round trips for all five ops,
the typed ``bad_request`` for unknown ops (connection survives), executor
grouping in the coalescer, and served aggregate/kNN/top-k answers checked
against the engine queried directly.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ShardedCOAX
from repro.data.executors import MATERIALIZE, Aggregate, TopK, executor_key
from repro.data.predicates import Interval, Rectangle
from repro.serve import (
    CoalescingQueryServer,
    ProtocolError,
    RemoteBadRequestError,
    ServeClient,
)
from repro.serve.coalescer import CoalescerConfig, PendingQuery, QueryCoalescer
from repro.serve.protocol import encode_frame, request_from_wire, request_to_wire

RANGE_QUERY = Rectangle({"Distance": Interval(500.0, 800.0)})
EMPTY_QUERY = Rectangle({"Distance": Interval(-90.0, -80.0)})


@pytest.fixture(scope="module")
def engine(airline_small) -> ShardedCOAX:
    engine = ShardedCOAX(airline_small, config=EngineConfig(n_shards=2))
    yield engine
    engine.close()


# ----------------------------------------------------------------------
# Wire round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "executor",
    [
        MATERIALIZE,
        Aggregate("count", None),
        Aggregate("avg", "AirTime"),
        TopK(5, column="AirTime", largest=True),
        TopK(3, point={"Distance": 700.0, "ArrTime": 900.0}, metric="linf"),
    ],
)
def test_request_round_trip(executor):
    wire = request_to_wire(RANGE_QUERY, executor)
    query, decoded = request_from_wire(wire)
    assert decoded == executor or decoded.kind == executor.kind
    assert executor_key(decoded) == executor_key(executor)
    if getattr(executor, "is_knn", False):
        assert dict(decoded.point) == dict(executor.point)
    else:
        assert {d: (i.low, i.high) for d, i in query.items()} == {
            d: (i.low, i.high) for d, i in RANGE_QUERY.items()
        }


@pytest.mark.parametrize(
    "mutate",
    [
        lambda m: m.update(op="percentile"),
        lambda m: m.update(op="aggregate", agg="median", column="AirTime"),
        lambda m: m.update(op="aggregate", agg="sum"),  # missing column
        lambda m: m.update(op="knn", point={"x": 1.0}, k=0),
        lambda m: m.update(op="knn", point={"x": 1.0}, k=3, metric="cosine"),
        lambda m: m.update(op="topk", k=2),  # missing column
    ],
)
def test_malformed_requests_raise_protocol_error(mutate):
    message = request_to_wire(RANGE_QUERY, MATERIALIZE)
    mutate(message)
    with pytest.raises(ProtocolError):
        request_from_wire(message)


# ----------------------------------------------------------------------
# Coalescer grouping
# ----------------------------------------------------------------------
class FakeFuture:
    def __init__(self) -> None:
        self._done = False

    def cancel(self) -> None:
        self._done = True

    def cancelled(self) -> bool:
        return False

    def done(self) -> bool:
        return self._done


def test_take_batch_splits_at_executor_boundaries():
    coalescer = QueryCoalescer(
        CoalescerConfig(max_batch=16, max_window_s=1.0), clock=lambda: 0.0
    )
    specs = [
        MATERIALIZE,
        MATERIALIZE,
        Aggregate("count", None),
        Aggregate("count", None),
        Aggregate("sum", "AirTime"),
        TopK(5, point={"x": 1.0}),
        TopK(5, point={"x": 2.0}),  # different centre, same batch key
        MATERIALIZE,
    ]
    for i, spec in enumerate(specs):
        coalescer.offer(
            PendingQuery(query=object(), future=FakeFuture(), executor=spec),
            now=i * 1e-5,
        )
    sizes = []
    while coalescer.n_waiting:
        batch = coalescer.take_batch(now=1.0)
        sizes.append(len(batch))
        keys = {executor_key(entry.executor) for entry in batch}
        assert len(keys) == 1  # one dispatched batch, one executor key
    assert sizes == [2, 2, 1, 2, 1]  # FIFO order preserved, split at ops


# ----------------------------------------------------------------------
# End to end over TCP
# ----------------------------------------------------------------------
def test_served_executors_match_direct_engine(engine):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                count = await client.aggregate(RANGE_QUERY, Aggregate("count", None))
                avg = await client.aggregate(RANGE_QUERY, Aggregate("avg", "AirTime"))
                empty_min = await client.aggregate(
                    EMPTY_QUERY, Aggregate("min", "AirTime")
                )
                point = {"Distance": 700.0, "ArrTime": 900.0}
                neighbours = await client.knn(point, 5)
                longest = await client.topk(
                    RANGE_QUERY, TopK(4, column="AirTime", largest=True)
                )
                return count, avg, empty_min, neighbours, longest, point

    count, avg, empty_min, neighbours, longest, point = asyncio.run(scenario())
    assert count == engine.aggregate(RANGE_QUERY, Aggregate("count", None))
    assert np.isclose(avg, engine.aggregate(RANGE_QUERY, Aggregate("avg", "AirTime")))
    assert empty_min is None  # engine-side NaN travels as null
    assert np.array_equal(neighbours, engine.knn(point, 5))
    assert np.array_equal(
        longest, engine.topk(RANGE_QUERY, TopK(4, column="AirTime", largest=True))
    )


def test_unknown_op_answers_bad_request_and_connection_survives(engine):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                message = dict(request_to_wire(RANGE_QUERY, MATERIALIZE))
                message["op"] = "percentile"
                request_id = client._next_id
                client._next_id += 1
                message["id"] = request_id
                future = asyncio.get_running_loop().create_future()
                client._pending[request_id] = future
                client._writer.write(encode_frame(message))
                await client._writer.drain()
                with pytest.raises(RemoteBadRequestError, match="op"):
                    await future
                # The connection is still usable after the typed rejection.
                count = await client.aggregate(RANGE_QUERY, Aggregate("count", None))
                return count

    count = asyncio.run(scenario())
    assert count == engine.aggregate(RANGE_QUERY, Aggregate("count", None))


def test_pipelined_mixed_ops_answer_in_order(engine):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                futures = []
                for i in range(30):
                    if i % 3 == 0:
                        futures.append(await client.submit(RANGE_QUERY))
                    elif i % 3 == 1:
                        futures.append(
                            await client.submit(
                                RANGE_QUERY, Aggregate("count", None)
                            )
                        )
                    else:
                        futures.append(
                            await client.submit(
                                RANGE_QUERY, TopK(3, column="AirTime")
                            )
                        )
                return await asyncio.gather(*futures)

    results = asyncio.run(scenario())
    want_ids = np.sort(engine.range_query(RANGE_QUERY))
    want_count = engine.aggregate(RANGE_QUERY, Aggregate("count", None))
    want_topk = engine.topk(RANGE_QUERY, TopK(3, column="AirTime"))
    for i, result in enumerate(results):
        if i % 3 == 0:
            assert np.array_equal(np.sort(result.row_ids), want_ids)
        elif i % 3 == 1:
            assert result.value == want_count
        else:
            assert np.array_equal(result.row_ids, want_topk)


def test_served_stats_attribute_new_ops(engine):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                result = await client.query(RANGE_QUERY, Aggregate("count", None))
                return result.stats

    stats = asyncio.run(scenario())
    assert stats["aggregates"] == 1
    assert stats["knn_queries"] == 0
