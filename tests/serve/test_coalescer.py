"""Unit tests of the sans-IO adaptive coalescing state machine.

Everything here runs without sockets or an event loop: time is an
explicit fake clock, futures are a minimal stand-in with the
``done``/``cancelled`` surface the coalescer inspects.
"""

from __future__ import annotations

import pytest

from repro.serve.coalescer import (
    FLUSH,
    QUEUED,
    SCHEDULE,
    CoalescerConfig,
    OverloadedError,
    PendingQuery,
    QueryCoalescer,
)


class FakeFuture:
    """The fragment of the asyncio.Future surface the coalescer touches."""

    def __init__(self) -> None:
        self._cancelled = False
        self._done = False

    def cancel(self) -> None:
        self._cancelled = True
        self._done = True

    def cancelled(self) -> bool:
        return self._cancelled

    def done(self) -> bool:
        return self._done


def entry() -> PendingQuery:
    return PendingQuery(query=object(), future=FakeFuture())


def hot_coalescer(config: CoalescerConfig) -> QueryCoalescer:
    """A coalescer whose EWMA says companions arrive quickly (never idle)."""
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    coalescer._gap_ewma = config.min_window_s / 10.0
    return coalescer


# ----------------------------------------------------------------------
# Size trigger
# ----------------------------------------------------------------------
def test_size_trigger_flushes_full_batch():
    config = CoalescerConfig(max_batch=4, max_window_s=1.0)
    coalescer = hot_coalescer(config)
    actions = [coalescer.offer(entry(), now=float(i) * 1e-5) for i in range(4)]
    assert actions == [SCHEDULE, QUEUED, QUEUED, FLUSH]
    batch = coalescer.take_batch(now=1e-4)
    assert len(batch) == 4
    assert coalescer.n_waiting == 0
    assert coalescer.deadline is None


def test_size_trigger_leaves_backlog_armed():
    config = CoalescerConfig(max_batch=2, max_window_s=1.0)
    coalescer = hot_coalescer(config)
    for i in range(5):
        coalescer.offer(entry(), now=float(i) * 1e-5)
    batch = coalescer.take_batch(now=1.0)
    assert len(batch) == 2
    assert coalescer.n_waiting == 3
    # Backlog keeps the deadline armed at "now" so the flush loop drains it.
    assert coalescer.deadline == 1.0
    assert coalescer.due(now=1.0)


# ----------------------------------------------------------------------
# Time trigger
# ----------------------------------------------------------------------
def test_time_trigger_fires_at_deadline():
    config = CoalescerConfig(max_batch=100, max_window_s=0.002, min_window_s=0.002)
    coalescer = hot_coalescer(config)
    assert coalescer.offer(entry(), now=0.0) == SCHEDULE
    deadline = coalescer.deadline
    assert deadline == pytest.approx(0.002)
    assert coalescer.offer(entry(), now=0.001) == QUEUED
    assert not coalescer.due(now=0.0015)
    assert coalescer.due(now=deadline)
    batch = coalescer.take_batch(now=deadline)
    assert len(batch) == 2


def test_window_shrinks_when_hot():
    """A hot arrival stream sizes the window to the expected fill time."""
    config = CoalescerConfig(
        max_batch=8, max_window_s=0.005, min_window_s=0.0001, ewma_alpha=1.0
    )
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    # 50 µs inter-arrival gap -> expected fill of 7 remaining slots = 350 µs,
    # far below the 5 ms ceiling.
    coalescer.offer(entry(), now=0.0)
    coalescer.take_batch(now=0.0)  # prime EWMA without batching effects
    coalescer.offer(entry(), now=50e-6)
    assert coalescer.gap_ewma == pytest.approx(50e-6)
    assert coalescer.deadline is not None
    window = coalescer.deadline - 50e-6
    assert window == pytest.approx(50e-6 * (config.max_batch - 1))
    assert window < config.max_window_s


def test_window_clamped_to_bounds():
    config = CoalescerConfig(
        max_batch=4, max_window_s=0.002, min_window_s=0.0005, ewma_alpha=1.0
    )
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    coalescer._gap_ewma = 1e-9  # absurdly hot -> clamp to floor
    assert coalescer._window() == config.min_window_s
    coalescer._gap_ewma = 0.0015  # lukewarm -> expected fill above ceiling
    assert coalescer._window() == config.max_window_s


# ----------------------------------------------------------------------
# Idle pass-through
# ----------------------------------------------------------------------
def test_first_ever_query_passes_through():
    coalescer = QueryCoalescer(CoalescerConfig(), clock=lambda: 0.0)
    assert coalescer.offer(entry(), now=0.0) == FLUSH
    assert coalescer.passthrough == 1
    assert len(coalescer.take_batch(now=0.0)) == 1


def test_idle_stream_never_waits():
    """Arrivals far apart keep flushing immediately — zero added latency."""
    config = CoalescerConfig(max_window_s=0.002)
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    for i in range(5):
        now = i * 1.0  # one query per second
        assert coalescer.offer(entry(), now=now) == FLUSH
        assert len(coalescer.take_batch(now=now)) == 1
    assert coalescer.passthrough == 5


def test_hot_stream_disables_passthrough():
    config = CoalescerConfig(max_window_s=0.002, ewma_alpha=1.0)
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    coalescer.offer(entry(), now=0.0)
    coalescer.take_batch(now=0.0)
    # 100 µs gap << 2 ms window: the next lone query waits for companions.
    assert coalescer.offer(entry(), now=100e-6) == SCHEDULE


def test_idle_transition_after_hot_burst():
    """The EWMA forgets a burst: long gaps re-enable pass-through."""
    config = CoalescerConfig(max_window_s=0.002, ewma_alpha=0.5)
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    now = 0.0
    for _ in range(10):  # hot burst, 100 µs apart
        now += 100e-6
        coalescer.offer(entry(), now=now)
    coalescer.take_batch(now=now)
    # Two long gaps push the EWMA far above the window.
    for _ in range(2):
        now += 10.0
        coalescer.offer(entry(), now=now)
        coalescer.take_batch(now=now)
    assert coalescer.offer(entry(), now=now + 10.0) == FLUSH


# ----------------------------------------------------------------------
# Group commit (busy input)
# ----------------------------------------------------------------------
def test_busy_suppresses_first_query_passthrough():
    """With a batch in flight, even a history-less lone query queues."""
    coalescer = QueryCoalescer(CoalescerConfig(), clock=lambda: 0.0)
    assert coalescer.offer(entry(), now=0.0, busy=True) == SCHEDULE
    assert coalescer.passthrough == 0
    assert coalescer.n_waiting == 1
    assert coalescer.deadline is not None


def test_busy_suppresses_idle_passthrough():
    """An idle-looking stream still queues while the engine is busy.

    This is the convoy breaker: closed-loop completions pace arrivals at
    the service time, which looks idle to the EWMA forever.
    """
    config = CoalescerConfig(max_window_s=0.002, ewma_alpha=1.0)
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    coalescer.offer(entry(), now=0.0)
    coalescer.take_batch(now=0.0)
    coalescer.offer(entry(), now=1.0)  # 1 s gap: solidly idle EWMA
    coalescer.take_batch(now=1.0)
    assert coalescer.offer(entry(), now=2.0, busy=True) == SCHEDULE
    assert coalescer.offer(entry(), now=2.0 + 1e-6, busy=True) == QUEUED
    assert len(coalescer.take_batch(now=2.0 + 1e-6)) == 2


def test_not_busy_keeps_idle_passthrough():
    """busy=False (the default) leaves pass-through behaviour untouched."""
    config = CoalescerConfig(max_window_s=0.002, ewma_alpha=1.0)
    coalescer = QueryCoalescer(config, clock=lambda: 0.0)
    coalescer.offer(entry(), now=0.0)
    coalescer.take_batch(now=0.0)
    coalescer.offer(entry(), now=1.0)
    coalescer.take_batch(now=1.0)
    assert coalescer.offer(entry(), now=2.0, busy=False) == FLUSH


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_overload_rejects_without_queueing():
    config = CoalescerConfig(max_batch=100, max_queue=3, max_window_s=0.002)
    coalescer = hot_coalescer(config)
    for i in range(3):
        coalescer.offer(entry(), now=float(i) * 1e-5)
    with pytest.raises(OverloadedError) as excinfo:
        coalescer.offer(entry(), now=1e-3)
    assert excinfo.value.retry_after_s > 0
    assert coalescer.n_waiting == 3  # the rejected entry never queued
    assert coalescer.rejected == 1
    # Draining reopens admission.
    coalescer.take_batch(now=1e-3)
    assert coalescer.offer(entry(), now=2e-3) in (FLUSH, SCHEDULE)


# ----------------------------------------------------------------------
# Cancellation / abandoned entries
# ----------------------------------------------------------------------
def test_cancelled_future_dropped_at_flush():
    config = CoalescerConfig(max_batch=100, max_window_s=1.0)
    coalescer = hot_coalescer(config)
    keep = entry()
    gone = entry()
    coalescer.offer(keep, now=0.0)
    coalescer.offer(gone, now=1e-5)
    gone.future.cancel()  # client disconnected before the flush
    batch = coalescer.take_batch(now=1.0)
    assert batch == [keep]
    assert coalescer.dropped_abandoned == 1


def test_all_cancelled_yields_empty_batch():
    config = CoalescerConfig(max_batch=100, max_window_s=1.0)
    coalescer = hot_coalescer(config)
    entries = [entry() for _ in range(3)]
    for i, item in enumerate(entries):
        coalescer.offer(item, now=float(i) * 1e-5)
        item.future.cancel()
    assert coalescer.take_batch(now=1.0) == []
    assert coalescer.dropped_abandoned == 3
    assert coalescer.batches == 0  # an empty drain is not a batch


# ----------------------------------------------------------------------
# Bookkeeping and config validation
# ----------------------------------------------------------------------
def test_snapshot_counts():
    config = CoalescerConfig(max_batch=2, max_queue=10, max_window_s=1.0)
    coalescer = hot_coalescer(config)
    for i in range(4):
        coalescer.offer(entry(), now=float(i) * 1e-5)
        if coalescer.n_waiting >= config.max_batch:
            coalescer.take_batch(now=float(i) * 1e-5)
    snapshot = coalescer.snapshot()
    assert snapshot["offered"] == 4
    assert snapshot["batches"] == 2
    assert snapshot["dispatched"] == 4
    assert snapshot["mean_batch"] == pytest.approx(2.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"max_window_s": 0.0},
        {"min_window_s": 0.0},
        {"min_window_s": 0.01, "max_window_s": 0.002},
        {"idle_gap_factor": 0.0},
        {"max_queue": 0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        CoalescerConfig(**kwargs)
