"""Wire-protocol round trips: framing, query encoding, typed responses."""

from __future__ import annotations

import asyncio
import json
import math
import struct

import pytest

from repro.data.predicates import Interval, Rectangle
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    query_from_wire,
    query_to_wire,
    read_frame,
    split_response,
)


def frame_reader(*frames: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for frame in frames:
        reader.feed_data(frame)
    reader.feed_eof()
    return reader


def read_all(*frames: bytes):
    async def drain():
        reader = frame_reader(*frames)
        messages = []
        while True:
            message = await read_frame(reader)
            if message is None:
                return messages
            messages.append(message)

    return asyncio.run(drain())


def test_frame_round_trip():
    payload = {"id": 7, "op": "range", "bounds": {"x": [1.0, 2.0]}}
    messages = read_all(encode_frame(payload))
    assert messages == [payload]


def test_multiple_frames_in_one_stream():
    frames = [encode_frame({"id": i}) for i in range(3)]
    assert [m["id"] for m in read_all(*frames)] == [0, 1, 2]


def test_clean_eof_returns_none():
    assert read_all() == []


def test_oversized_length_prefix_rejected():
    async def attempt():
        reader = frame_reader(struct.pack(">I", MAX_FRAME_BYTES + 1))
        await read_frame(reader)

    with pytest.raises(ProtocolError):
        asyncio.run(attempt())


def test_non_json_frame_rejected():
    body = b"\xff\xfe not json"
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(ProtocolError):
        read_all(frame)


def test_non_object_json_rejected():
    body = json.dumps([1, 2, 3]).encode()
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(ProtocolError):
        read_all(frame)


def test_truncated_frame_raises_incomplete_read():
    frame = encode_frame({"id": 1})[:-2]
    with pytest.raises(asyncio.IncompleteReadError):
        read_all(frame)


# ----------------------------------------------------------------------
# Query encoding
# ----------------------------------------------------------------------
def test_range_query_round_trip():
    query = Rectangle({"Distance": Interval(500, 800), "AirTime": Interval(60, 120)})
    wire = query_to_wire(query)
    parsed = query_from_wire(wire)
    assert dict(parsed.items()) == dict(query.items())


def test_infinite_bounds_travel_as_null():
    query = Rectangle({"x": Interval(-math.inf, 10.0), "y": Interval(0.0, math.inf)})
    wire = query_to_wire(query)
    assert wire["bounds"]["x"] == [None, 10.0]
    assert wire["bounds"]["y"] == [0.0, None]
    parsed = query_from_wire(wire)
    assert parsed.interval("x").low == -math.inf
    assert parsed.interval("y").high == math.inf


def test_point_query_parses_to_degenerate_rectangle():
    parsed = query_from_wire({"op": "point", "point": {"x": 5.0, "y": 7.0}})
    assert parsed.interval("x") == Interval(5.0, 5.0)
    assert parsed.interval("y") == Interval(7.0, 7.0)


@pytest.mark.parametrize(
    "message",
    [
        {"op": "scan"},
        {"op": "range"},
        {"op": "range", "bounds": [1, 2]},
        {"op": "range", "bounds": {"x": [1.0]}},
        {"op": "range", "bounds": {"x": [1.0, "high"]}},
        {"op": "range", "bounds": {"x": [float("nan"), 1.0]}},
        {"op": "range", "bounds": {"x": [True, 1.0]}},
        {"op": "point"},
        {"op": "point", "point": {}},
        {"op": "point", "point": {"x": None}},
    ],
)
def test_malformed_queries_rejected(message):
    with pytest.raises(ProtocolError):
        query_from_wire(message)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def test_ok_response_round_trip():
    payload = ok_response(3, [5, 9], stats={"rows_matched": 2}, server={"batched": 8})
    (message,) = read_all(encode_frame(payload))
    request_id, ok, body = split_response(message)
    assert (request_id, ok) == (3, True)
    assert body["row_ids"] == [5, 9]
    assert body["stats"] == {"rows_matched": 2}
    assert body["server"] == {"batched": 8}


def test_error_response_round_trip():
    payload = error_response(4, "overloaded", "queue full", retry_after_ms=2.5)
    request_id, ok, body = split_response(payload)
    assert (request_id, ok) == (4, False)
    assert body["error"]["code"] == "overloaded"
    assert body["error"]["retry_after_ms"] == 2.5


def test_unknown_error_code_rejected():
    with pytest.raises(ValueError):
        error_response(1, "teapot", "I'm a teapot")


def test_response_missing_ok_rejected():
    with pytest.raises(ProtocolError):
        split_response({"id": 1})
