"""End-to-end tests of the asyncio serving front end.

Real TCP sockets on an ephemeral loopback port, a real engine underneath;
every served result is checked against the engine queried directly.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import EngineClosedError, ShardedCOAX
from repro.data.predicates import Interval, Rectangle
from repro.serve import (
    CoalescerConfig,
    CoalescingQueryServer,
    NaiveQueryServer,
    RemoteBadRequestError,
    ServeClient,
    ServerConfig,
    ServerOverloadedError,
    ServerShuttingDownError,
)
from repro.serve.protocol import encode_frame

QUERIES = [
    Rectangle({"Distance": Interval(500, 800), "AirTime": Interval(60, 120)}),
    Rectangle({"Distance": Interval(100, 300)}),
    Rectangle({"AirTime": Interval(30, 45), "Distance": Interval(0, 5000)}),
    Rectangle({"Distance": Interval(2500, 2600), "AirTime": Interval(280, 400)}),
]


@pytest.fixture(scope="module")
def engine(airline_small) -> ShardedCOAX:
    engine = ShardedCOAX(airline_small, config=EngineConfig(n_shards=2))
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def expected(engine):
    results = engine.batch_range_query(QUERIES)
    return [np.sort(r) for r in results]


def assert_matches(result, oracle) -> None:
    assert np.array_equal(np.sort(result.row_ids), oracle)


@pytest.mark.parametrize("server_cls", [CoalescingQueryServer, NaiveQueryServer])
def test_round_trip_matches_direct_engine(server_cls, engine, expected):
    async def scenario():
        async with server_cls(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                for query, oracle in zip(QUERIES, expected):
                    assert_matches(await client.query(query), oracle)

    asyncio.run(scenario())


def test_pipelined_queries_coalesce_and_match(engine, expected):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                futures = []
                for i in range(40):
                    futures.append(await client.submit(QUERIES[i % len(QUERIES)]))
                results = await asyncio.gather(*futures)
                for i, result in enumerate(results):
                    assert_matches(result, expected[i % len(expected)])
                return server.snapshot()

    snapshot = asyncio.run(scenario())
    assert snapshot["dispatched"] == 40
    # Pipelined arrivals must actually batch, not degrade to one-by-one.
    assert snapshot["batches"] < 40


def test_concurrent_clients_verified_against_oracle(engine, expected):
    async def one_client(port: int, client_id: int) -> None:
        async with await ServeClient.connect("127.0.0.1", port) as client:
            for i in range(6):
                slot = (client_id + i) % len(QUERIES)
                assert_matches(await client.query(QUERIES[slot]), expected[slot])

    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            await asyncio.gather(*(one_client(server.port, i) for i in range(16)))
            return server.snapshot()

    snapshot = asyncio.run(scenario())
    assert snapshot["dispatched"] == 96
    assert snapshot["batches"] < 96


def test_group_commit_flushes_on_completion(engine, expected):
    """With a huge time window, batches still flow: completion is the flush edge.

    The first query passes through (engine idle); everything arriving while
    it executes queues (``busy``) and is flushed the moment that batch
    completes — the multi-second timer never gets to fire.
    """
    config = ServerConfig(
        coalescer=CoalescerConfig(max_batch=4096, max_window_s=5.0, min_window_s=4.0)
    )

    async def scenario():
        async with CoalescingQueryServer(engine, config=config) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                futures = [
                    await client.submit(QUERIES[i % len(QUERIES)]) for i in range(24)
                ]
                results = await asyncio.wait_for(asyncio.gather(*futures), timeout=3.0)
                for i, result in enumerate(results):
                    assert_matches(result, expected[i % len(expected)])
                return server.snapshot()

    snapshot = asyncio.run(scenario())
    assert snapshot["dispatched"] == 24
    assert 1 < snapshot["batches"] < 24


def test_per_query_stats_on_the_wire(engine):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                return await client.query(QUERIES[0])

    result = asyncio.run(scenario())
    assert result.stats is not None
    assert result.stats["rows_matched"] == len(result.row_ids)
    assert result.stats["rows_examined"] >= result.stats["rows_matched"]
    assert result.server["batched"] >= 1
    assert result.server["wait_us"] >= 0


def test_overload_fast_reject(engine):
    config = ServerConfig(
        coalescer=CoalescerConfig(max_batch=4096, max_queue=2, max_window_s=0.1,
                                  min_window_s=0.08, idle_gap_factor=1e9)
    )

    async def scenario():
        async with CoalescingQueryServer(engine, config=config) as server:
            # Pre-warm the EWMA so lone queries stop passing through.
            server.coalescer._gap_ewma = 1e-6
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                futures = [await client.submit(QUERIES[0]) for _ in range(6)]
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                rejected = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
                assert rejected, "expected overload rejections beyond max_queue=2"
                assert all(r.retry_after_ms > 0 for r in rejected)
                served = [o for o in outcomes if not isinstance(o, Exception)]
                assert len(served) + len(rejected) == 6

    asyncio.run(scenario())


def test_bad_request_answered_not_dropped(engine, expected):
    async def scenario():
        async with CoalescingQueryServer(engine) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                writer.write(encode_frame({"id": 1, "op": "scan"}))
                await writer.drain()
                client = ServeClient(reader, writer)
                # The bad frame gets a typed error; the connection survives
                # and a valid query still round-trips afterwards.
                future = await client.submit(QUERIES[0])
                assert_matches(await future, expected[0])
            finally:
                writer.close()

    asyncio.run(scenario())


def test_bad_request_via_client(engine):
    async def scenario():
        async with NaiveQueryServer(engine) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            client = ServeClient(reader, writer)
            try:
                request_id = client._next_id
                client._next_id += 1
                future = asyncio.get_running_loop().create_future()
                client._pending[request_id] = future
                writer.write(encode_frame({"id": request_id, "op": "bogus"}))
                await writer.drain()
                with pytest.raises(RemoteBadRequestError):
                    await future
            finally:
                await client.close()

    asyncio.run(scenario())


def test_shutdown_engine_yields_typed_error(airline_small):
    engine = ShardedCOAX(airline_small, config=EngineConfig(n_shards=2))

    async def scenario():
        async with NaiveQueryServer(engine) as server:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                await client.query(QUERIES[0])  # engine healthy
                engine.shutdown()
                with pytest.raises(ServerShuttingDownError):
                    await client.query(QUERIES[0])

    asyncio.run(scenario())


def test_disconnect_cancels_pending_queries(engine):
    """A client that vanishes while queued must not stall the batch."""
    config = ServerConfig(
        coalescer=CoalescerConfig(max_batch=4096, max_window_s=0.05,
                                  min_window_s=0.04, idle_gap_factor=1e9)
    )

    async def scenario():
        async with CoalescingQueryServer(engine, config=config) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(encode_frame({"id": 0, "op": "range",
                                       "bounds": {"Distance": [500.0, 800.0]}}))
            await writer.drain()
            # Hard-drop the connection while the query waits for its window.
            writer.close()
            # A healthy client on its own connection is still served.
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                result = await client.query(QUERIES[0])
                assert len(result.row_ids) > 0
            for _ in range(100):
                if server.coalescer.n_waiting == 0 and not server._connections:
                    break
                await asyncio.sleep(0.01)
            return server.snapshot()

    snapshot = asyncio.run(scenario())
    # The abandoned query either got dropped at flush time or its write
    # failed harmlessly; it must not be waiting forever.
    assert snapshot["coalescer_waiting"] == 0


def test_server_stop_fails_queued_queries(engine):
    config = ServerConfig(
        coalescer=CoalescerConfig(max_batch=4096, max_window_s=5.0, min_window_s=4.0,
                                  idle_gap_factor=1e9)
    )

    async def scenario():
        server = CoalescingQueryServer(engine, config=config)
        await server.start()
        server.coalescer._gap_ewma = 1e-6  # force queueing
        client = await ServeClient.connect("127.0.0.1", server.port)
        future = await client.submit(QUERIES[0])
        for _ in range(100):
            if server.coalescer.n_waiting:
                break
            await asyncio.sleep(0.01)
        assert server.coalescer.n_waiting == 1
        await server.stop()
        with pytest.raises((ServerShuttingDownError, ConnectionError, EngineClosedError)):
            await future
        await client.close()

    asyncio.run(scenario())
