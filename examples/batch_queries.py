#!/usr/bin/env python
"""Batch query execution: serving a query burst through the batch read path.

A service fronting a COAX index rarely sees one query at a time — it sees
bursts. The batch read path answers a whole burst with shared work: one
vectorised translation/planning pass, one batched call per sub-index and
one delta-store scan for all rectangles, instead of paying full per-query
overhead. This example:

1. builds COAX over a synthetic order table;
2. answers the same 2 000-query burst sequentially and with
   ``batch_range_query``, comparing throughput;
3. verifies the two paths return exactly the same row ids per query;
4. streams new orders in (un-compacted) and shows pending rows are visible
   to the batch path too;
5. shows the same knob on the benchmark harness (``execute_workload``).

Run with::

    python examples/batch_queries.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import COAXIndex, Interval, Rectangle, Table
from repro.bench.harness import execute_workload
from repro.data.queries import WorkloadConfig, generate_knn_queries


def order_table(n_rows: int, rng: np.random.Generator) -> Table:
    """Order table: price, correlated shipping weight, and a day-of-year."""
    price = rng.gamma(shape=2.0, scale=40.0, size=n_rows) + 5.0
    weight = 0.08 * price + rng.normal(0.0, 0.4, size=n_rows)
    weight[rng.random(n_rows) < 0.06] = 0.01
    day = rng.uniform(1.0, 365.0, size=n_rows)
    return Table({"price": price, "weight": weight, "day": day})


def main() -> None:
    rng = np.random.default_rng(21)
    table = order_table(50_000, rng)
    index = COAXIndex(table)
    print("build")
    print("-----")
    print(index.build_report.describe())
    print()

    # A burst of range queries, shaped like the paper's KNN workload.
    workload = generate_knn_queries(
        table, WorkloadConfig(n_queries=2_000, k_neighbours=150, seed=4)
    )
    queries = list(workload)

    # Warm up both paths, then time them on the identical burst.
    index.batch_range_query(queries[:32])
    for query in queries[:32]:
        index.range_query(query)

    start = time.perf_counter()
    sequential = [index.range_query(query) for query in queries]
    seq_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = index.batch_range_query(queries)
    batch_seconds = time.perf_counter() - start

    print("query burst (2,000 range queries)")
    print("---------------------------------")
    print(f"  sequential loop   : {len(queries) / seq_seconds:8,.0f} queries/s")
    print(f"  batch_range_query : {len(queries) / batch_seconds:8,.0f} queries/s "
          f"({seq_seconds / batch_seconds:.1f}x)")

    identical = all(np.array_equal(a, b) for a, b in zip(sequential, batched))
    print(f"  results identical : {identical}")
    assert identical, "batch execution must be a pure optimisation"

    # ------------------------------------------------------------------
    # Pending (un-compacted) inserts are visible on the batch path too.
    # ------------------------------------------------------------------
    new_orders = order_table(5_000, rng)
    index.insert_batch(new_orders)
    print(f"\ninserted {new_orders.n_rows} orders (pending: {index.n_pending})")
    probe = Rectangle({"price": Interval(100.0, 200.0), "weight": Interval(8.0, 20.0)})
    one_by_one = index.range_query(probe)
    in_batch = index.batch_range_query([probe])[0]
    assert np.array_equal(one_by_one, in_batch)
    print(f"probe query matches {len(in_batch)} orders on both paths "
          "(delta store scanned batch-wide)")

    # ------------------------------------------------------------------
    # The benchmark harness exposes the same switch.
    # ------------------------------------------------------------------
    total = execute_workload(index, workload, batch_size=512)
    print(f"\nexecute_workload(..., batch_size=512) -> {total} total results")


if __name__ == "__main__":
    main()
