#!/usr/bin/env python
"""Production workflow: SQL-style queries, tuning, and index persistence.

Shows the pieces a downstream application would use around the core index:

1. load a table from CSV (written here for the demo; any numeric CSV works);
2. tune the COAX configuration on a sample workload (the paper's Section
   8.2.1 "best configuration per index" step);
3. query with SQL-style WHERE clauses instead of hand-built rectangles;
4. save the trained index to disk and load it back in a fresh process.

Run with::

    python examples/sql_and_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    COAXIndex,
    load_csv,
    load_index,
    parse_where,
    save_csv,
    save_index,
    Table,
    WorkloadConfig,
    generate_knn_queries,
)
from repro.bench.tuning import tune_coax
from repro.indexes.memory import format_bytes


def build_sensor_csv(path: Path, n_rows: int = 40_000, seed: int = 5) -> None:
    """Write a demo CSV: reading_id, timestamp (correlated), temperature, station."""
    rng = np.random.default_rng(seed)
    reading_id = np.arange(1.0, n_rows + 1.0)
    timestamp = 1.7e9 + reading_id * 15.0 + rng.normal(0.0, 8.0, size=n_rows)
    late = rng.random(n_rows) < 0.07
    timestamp[late] = 1.7e9 + rng.uniform(0, n_rows * 15.0, size=int(late.sum()))
    temperature = rng.normal(20.0, 5.0, size=n_rows)
    station = rng.integers(0, 24, size=n_rows).astype(float)
    table = Table(
        {
            "reading_id": reading_id,
            "timestamp": timestamp,
            "temperature": temperature,
            "station": station,
        }
    )
    save_csv(table, path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="coax_demo_"))
    csv_path = workdir / "sensor_readings.csv"
    build_sensor_csv(csv_path)

    # ------------------------------------------------------------------
    # 1. Load the CSV.
    # ------------------------------------------------------------------
    table, _ = load_csv(csv_path)
    print(f"loaded {csv_path.name}: {table.n_rows} rows, columns {list(table.schema)}\n")

    # ------------------------------------------------------------------
    # 2. Tune COAX on a small sample workload.
    # ------------------------------------------------------------------
    sample_workload = generate_knn_queries(
        table, WorkloadConfig(n_queries=10, k_neighbours=200, seed=1)
    )
    best_config, tuning = tune_coax(table, sample_workload, cells_candidates=(2, 4, 8, 16))
    print("tuning trials (primary cells per dimension)")
    for trial in tuning.trials:
        print(f"  cells={trial.params['cells_per_dim']:>2}  "
              f"mean {trial.mean_query_ms:6.2f} ms  directory {format_bytes(trial.directory_bytes)}")
    print(f"chosen configuration: primary_cells_per_dim={best_config.primary_cells_per_dim}\n")

    index = COAXIndex(table, config=best_config)
    print(index.build_report.describe())
    print()

    # ------------------------------------------------------------------
    # 3. SQL-style queries.
    # ------------------------------------------------------------------
    clauses = [
        "timestamp BETWEEN 1700300000 AND 1700400000 AND temperature > 25",
        "18 <= temperature AND temperature <= 22 AND station = 7",
        "reading_id > 35000 AND temperature < 10",
    ]
    for clause in clauses:
        query = parse_where(clause)
        matches = index.range_query(query)
        expected = table.select(query)
        agreement = np.array_equal(np.sort(matches), expected)
        print(f"WHERE {clause}")
        print(f"  -> {len(matches)} rows (full scan agrees: {agreement})")
    print()

    # ------------------------------------------------------------------
    # 4. Persist the index and reload it.
    # ------------------------------------------------------------------
    index_path = save_index(index, workdir / "sensor.coax.npz")
    print(f"index saved to {index_path} ({format_bytes(index_path.stat().st_size)} on disk)")
    reloaded = load_index(index_path)
    check = parse_where("temperature BETWEEN 19 AND 21")
    same = np.array_equal(
        np.sort(reloaded.range_query(check)), np.sort(index.range_query(check))
    )
    print(f"reloaded index answers queries identically: {same}")


if __name__ == "__main__":
    main()
