#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Thin wrapper over the experiment drivers (the same code the CLI and the
pytest-benchmark suites use).  Prints the paper-style text table for each
artefact; see EXPERIMENTS.md for the paper-vs-measured discussion.

Run with::

    python examples/reproduce_paper.py            # default scale (~30k rows)
    python examples/reproduce_paper.py 100000     # bigger datasets
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import EXPERIMENTS


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else None
    for name in ("table1", "fig4", "fig6", "fig7", "fig8", "theory", "appendix_g", "headline"):
        runner, description = EXPERIMENTS[name]
        kwargs = {"n_rows": rows} if rows is not None else {}
        start = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - start
        print(result.table())
        print(f"({name} regenerated in {elapsed:.1f}s)\n")


if __name__ == "__main__":
    main()
