#!/usr/bin/env python
"""Airline analytics: the paper's motivating workload end to end.

The paper's introduction motivates COAX with datasets like US flight
records, where "flight distance and flight time" are correlated.  This
example:

1. generates the synthetic airline dataset (8 attributes, two correlated
   groups, ~8% outliers, as described in DESIGN.md);
2. builds COAX and the paper's baselines (R-Tree, full grid, column files);
3. answers a set of analyst-style questions expressed as rectangle queries,
   checking that every structure returns identical answers;
4. compares the work (rows examined) and the directory memory of each index
   — the Figure 6 / Figure 8 story at example scale.

Run with::

    python examples/airline_analytics.py [n_rows]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import (
    COAXIndex,
    ColumnFilesIndex,
    FullScanIndex,
    Interval,
    Rectangle,
    RTreeIndex,
    UniformGridIndex,
)
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.indexes.memory import format_bytes


def analyst_queries() -> dict:
    """A handful of questions an analyst would ask of the flight table."""
    return {
        "short hops on weekends": Rectangle(
            {
                "Distance": Interval(0.0, 400.0),
                "DayOfWeek": Interval(6.0, 7.0),
            }
        ),
        "long flights arriving late evening": Rectangle(
            {
                "Distance": Interval(2_000.0, 5_000.0),
                "ArrTime": Interval(20.0 * 60.0, 24.0 * 60.0),
            }
        ),
        "one-hour flights (predicted attribute only)": Rectangle(
            {
                "AirTime": Interval(55.0, 65.0),
            }
        ),
        "morning departures with ~3h in the air": Rectangle(
            {
                "DepTime": Interval(6.0 * 60.0, 10.0 * 60.0),
                "TimeElapsed": Interval(170.0, 190.0),
            }
        ),
    }


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    table, _ = generate_airline_dataset(AirlineConfig(n_rows=n_rows, seed=7))
    print(f"airline dataset: {table.n_rows} rows x {table.n_dims} attributes\n")

    print("building indexes ...")
    start = time.perf_counter()
    coax = COAXIndex(table)
    print(f"  COAX built in {time.perf_counter() - start:.2f}s")
    print(coax.build_report.describe())
    print()
    competitors = {
        "R-Tree": RTreeIndex(table, node_capacity=10),
        "Full Grid": UniformGridIndex(table, cells_per_dim=6),
        "Column Files": ColumnFilesIndex(table, cells_per_dim=8),
        "Full Scan": FullScanIndex(table),
    }

    print("analyst queries")
    print("---------------")
    for label, query in analyst_queries().items():
        expected = table.select(query)
        coax_result = coax.query(query)
        assert np.array_equal(np.sort(coax_result.row_ids), expected)
        for name, index in competitors.items():
            assert np.array_equal(np.sort(index.range_query(query)), expected), name
        print(
            f"{label:45s} {len(expected):6d} flights "
            f"(primary {len(coax_result.primary_row_ids)}, "
            f"outliers {len(coax_result.outlier_row_ids)})"
        )

    print("\nwork per query (rows examined, lower is better)")
    print("-----------------------------------------------")
    all_indexes = {"COAX": coax, **competitors}
    for name, index in all_indexes.items():
        index.stats.reset()
        for query in analyst_queries().values():
            index.range_query(query)
        print(f"{name:12s} {index.stats.mean_rows_examined:12.0f} rows/query   "
              f"directory {format_bytes(index.directory_bytes())}")

    rtree_factor = competitors["R-Tree"].directory_bytes() / max(coax.directory_bytes(), 1)
    print(f"\nCOAX's directory is {rtree_factor:.0f}x smaller than the R-Tree's "
          f"on this dataset (the factor grows with scale; the paper reports up to 10^4).")


if __name__ == "__main__":
    main()
