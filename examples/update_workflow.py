#!/usr/bin/env python
"""Update workflow: inserting new records into a live COAX index.

The paper leaves updates as future work but sketches the mechanism: the
learned grid and the Bayesian regression can absorb new data incrementally.
This example demonstrates the update support implemented in this library:

1. build COAX over an initial batch of sensor-style records;
2. stream new records in — each is routed by the learned soft-FD models to
   the pending-primary or pending-outlier buffer and is immediately
   queryable;
3. show the Bayesian model being refined online from the new batch;
4. compact the index (fold the buffers into the main structures) and verify
   results stay exact throughout.

Run with::

    python examples/update_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro import BayesianLinearRegression, COAXIndex, Interval, Rectangle, Table


def initial_batch(n_rows: int = 40_000, seed: int = 3) -> Table:
    """Order table: order_id, ship_weight (correlated with price), price."""
    rng = np.random.default_rng(seed)
    order_id = np.arange(1.0, n_rows + 1.0)
    price = rng.gamma(shape=2.0, scale=40.0, size=n_rows) + 5.0
    # Shipping weight roughly tracks price (bigger orders weigh more), with
    # a few gift-card orders (zero weight) breaking the pattern.
    weight = 0.08 * price + rng.normal(0.0, 0.4, size=n_rows)
    gift_cards = rng.random(n_rows) < 0.06
    weight[gift_cards] = 0.01
    return Table({"order_id": order_id, "price": price, "weight": weight})


def main() -> None:
    table = initial_batch()
    index = COAXIndex(table)
    print("initial build")
    print("-------------")
    print(index.build_report.describe())
    print()

    heavy_and_pricey = Rectangle(
        {"price": Interval(100.0, 200.0), "weight": Interval(8.0, 20.0)}
    )
    before = len(index.range_query(heavy_and_pricey))
    print(f"orders with price in [100, 200] and weight in [8, 20]: {before}\n")

    # ------------------------------------------------------------------
    # Stream new orders in.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(99)
    print("inserting 500 new orders ...")
    inserted_matching = 0
    for i in range(500):
        price = float(rng.gamma(shape=2.0, scale=40.0) + 5.0)
        weight = float(0.08 * price + rng.normal(0.0, 0.4))
        if rng.random() < 0.06:
            weight = 0.01  # gift card: breaks the dependency, goes to outliers
        record = {
            "order_id": float(table.n_rows + i + 1),
            "price": price,
            "weight": weight,
        }
        index.insert(record)
        if 100.0 <= price <= 200.0 and 8.0 <= weight <= 20.0:
            inserted_matching += 1
    print(f"  pending records: {index.n_pending} "
          f"(primary buffer {len(index._pending_primary)}, "
          f"outlier buffer {len(index._pending_outlier)})")

    after = len(index.range_query(heavy_and_pricey))
    print(f"  same query now returns {after} orders "
          f"({after - before} of the inserted ones match; expected {inserted_matching})")
    assert after - before == inserted_matching

    # ------------------------------------------------------------------
    # Online refinement of the soft-FD model (the Bayesian update path).
    # ------------------------------------------------------------------
    group = index.groups[0]
    dependent = group.dependents[0]
    model = group.model_for(dependent)
    print("\nonline model refinement")
    print("-----------------------")
    print(f"model in use: {dependent} ~ {model.slope:.4f} * {group.predictor} "
          f"+ {model.intercept:.4f}")
    refreshed = BayesianLinearRegression()
    refreshed.update(table.column(group.predictor), table.column(dependent))
    posterior_before = refreshed.posterior()
    new_predictor = np.array([row[group.predictor] for row in index._pending_primary])
    new_dependent = np.array([row[dependent] for row in index._pending_primary])
    refreshed.update(new_predictor, new_dependent)
    posterior_after = refreshed.posterior()
    print(f"posterior slope before new batch: {posterior_before.slope:.5f} "
          f"(+/- {posterior_before.slope_std:.5f})")
    print(f"posterior slope after new batch : {posterior_after.slope:.5f} "
          f"(+/- {posterior_after.slope_std:.5f})")

    # ------------------------------------------------------------------
    # Compact: fold the buffers into a fresh index.
    # ------------------------------------------------------------------
    compacted = index.compact()
    print("\nafter compaction")
    print("----------------")
    print(f"rows indexed: {compacted.n_rows} (was {index.n_rows}), "
          f"pending: {compacted.n_pending}")
    assert len(compacted.range_query(heavy_and_pricey)) == after
    print("query results unchanged by compaction — exactness preserved.")


if __name__ == "__main__":
    main()
