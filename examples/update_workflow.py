#!/usr/bin/env python
"""Update workflow: batch-inserting new records into a live COAX index.

The paper leaves updates as future work but sketches the mechanism: the
learned grid and the Bayesian regression can absorb new data incrementally.
This example demonstrates the columnar delta-store update subsystem:

1. build COAX over an initial batch of order records;
2. stream new orders in with ``insert_batch`` — the whole batch is routed
   by the learned soft-FD models in one vectorised margin check and is
   immediately queryable;
3. measure batch vs one-row-at-a-time insert throughput;
4. show the Bayesian model being refined online from the new batch;
5. let threshold-triggered auto-compaction fold the buffers into the main
   structures incrementally, and verify results stay exact throughout;
6. complete the CRUD cycle: cancel orders with ``delete_batch`` /
   ``delete_where`` (tombstoned, invisible immediately), reprice orders
   in place with ``update_batch`` (same row ids), and reclaim the
   tombstones with a compaction.

Run with::

    python examples/update_workflow.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    BayesianLinearRegression,
    COAXConfig,
    COAXIndex,
    Interval,
    Rectangle,
    Table,
)


def order_batch(n_rows: int, rng: np.random.Generator, start_id: float = 1.0) -> Table:
    """Order table: order_id, price, ship weight (correlated with price)."""
    order_id = np.arange(start_id, start_id + n_rows)
    price = rng.gamma(shape=2.0, scale=40.0, size=n_rows) + 5.0
    # Shipping weight roughly tracks price (bigger orders weigh more), with
    # a few gift-card orders (zero weight) breaking the pattern.
    weight = 0.08 * price + rng.normal(0.0, 0.4, size=n_rows)
    gift_cards = rng.random(n_rows) < 0.06
    weight[gift_cards] = 0.01
    return Table({"order_id": order_id, "price": price, "weight": weight})


def main() -> None:
    rng = np.random.default_rng(3)
    table = order_batch(40_000, rng)
    config = COAXConfig(auto_compact_threshold=150_000)
    index = COAXIndex(table, config=config)
    print("initial build")
    print("-------------")
    print(index.build_report.describe())
    print()

    heavy_and_pricey = Rectangle(
        {"price": Interval(100.0, 200.0), "weight": Interval(8.0, 20.0)}
    )
    before = len(index.range_query(heavy_and_pricey))
    print(f"orders with price in [100, 200] and weight in [8, 20]: {before}\n")

    # ------------------------------------------------------------------
    # Stream new orders in, one vectorised batch.
    # ------------------------------------------------------------------
    stream_rng = np.random.default_rng(99)
    new_orders = order_batch(100_000, stream_rng, start_id=float(table.n_rows + 1))
    inserted_matching = int(np.count_nonzero(new_orders.mask(heavy_and_pricey)))

    print(f"inserting {new_orders.n_rows} new orders with insert_batch() ...")
    start = time.perf_counter()
    row_ids = index.insert_batch(new_orders)
    batch_seconds = time.perf_counter() - start
    print(f"  batch insert: {new_orders.n_rows} rows in {batch_seconds * 1e3:.1f} ms "
          f"({new_orders.n_rows / batch_seconds:,.0f} rows/s)")
    print(f"  pending records: {index.n_pending} "
          f"(primary-bound {index.n_pending_primary}, "
          f"outlier-bound {index.n_pending_outlier})")

    # One-row-at-a-time comparison over a small sample, for contrast.
    sample = order_batch(1_000, np.random.default_rng(7), start_id=1e9)
    probe = COAXIndex(table, config=config, groups=list(index.groups))
    start = time.perf_counter()
    for record in sample.iter_rows():
        probe.insert(record)
    seq_seconds = (time.perf_counter() - start) / sample.n_rows * new_orders.n_rows
    print(f"  sequential insert() would take ~{seq_seconds:.2f} s for the same stream "
          f"({seq_seconds / batch_seconds:,.0f}x slower)\n")

    after = len(index.range_query(heavy_and_pricey))
    print(f"same query now returns {after} orders "
          f"({after - before} of the inserted ones match; expected {inserted_matching})")
    assert after - before == inserted_matching
    assert len(row_ids) == new_orders.n_rows

    # ------------------------------------------------------------------
    # Online refinement of the soft-FD model (the Bayesian update path).
    # ------------------------------------------------------------------
    group = index.groups[0]
    dependent = group.dependents[0]
    model = group.model_for(dependent)
    print("\nonline model refinement")
    print("-----------------------")
    print(f"model in use: {dependent} ~ {model.slope:.4f} * {group.predictor} "
          f"+ {model.intercept:.4f}")
    refreshed = BayesianLinearRegression()
    refreshed.update(table.column(group.predictor), table.column(dependent))
    posterior_before = refreshed.posterior()
    pending_primary = index.delta.inlier_mask
    refreshed.update(
        index.delta.column(group.predictor)[pending_primary],
        index.delta.column(dependent)[pending_primary],
    )
    posterior_after = refreshed.posterior()
    print(f"posterior slope before new batch: {posterior_before.slope:.5f} "
          f"(+/- {posterior_before.slope_std:.5f})")
    print(f"posterior slope after new batch : {posterior_after.slope:.5f} "
          f"(+/- {posterior_after.slope_std:.5f})")

    # ------------------------------------------------------------------
    # Compaction: threshold-triggered, incremental, in place.
    # ------------------------------------------------------------------
    print("\nauto-compaction")
    print("---------------")
    trigger = order_batch(60_000, stream_rng, start_id=2e9)
    expected_extra = int(np.count_nonzero(trigger.mask(heavy_and_pricey)))
    print(f"inserting {trigger.n_rows} more orders "
          f"(crosses the auto_compact_threshold of {config.auto_compact_threshold}) ...")
    start = time.perf_counter()
    index.insert_batch(trigger)
    elapsed = time.perf_counter() - start
    print(f"  insert + triggered compaction took {elapsed * 1e3:.1f} ms")
    print(f"  rows indexed: {index.n_rows}, pending: {index.n_pending}")
    assert index.n_pending == 0, "auto-compaction should have drained the delta store"
    final = len(index.range_query(heavy_and_pricey))
    assert final == after + expected_extra
    print("query results unchanged by compaction — exactness preserved.")

    # ------------------------------------------------------------------
    # Deletes and in-place updates (the rest of CRUD).
    # ------------------------------------------------------------------
    print("\ndeletes and updates")
    print("-------------------")
    matching = index.range_query(heavy_and_pricey)
    cancelled = matching[: len(matching) // 2]
    start = time.perf_counter()
    n_deleted = index.delete_batch(cancelled)
    delete_ms = (time.perf_counter() - start) * 1e3
    print(f"cancelled {n_deleted} orders with delete_batch() in {delete_ms:.2f} ms "
          f"(tombstoned, {index.n_tombstoned} pending reclaim)")
    assert len(index.range_query(heavy_and_pricey)) == final - n_deleted

    # Reprice the remaining matches in place — the row ids stay the same.
    remaining = index.range_query(heavy_and_pricey)
    repriced = {
        "order_id": index.table.column("order_id")[remaining],
        "price": np.full(len(remaining), 99.0),
        "weight": index.table.column("weight")[remaining],
    }
    index.update_batch(remaining, repriced)
    print(f"repriced {len(remaining)} orders to 99.00 with update_batch() "
          f"(ids preserved, {index.n_pending} pending)")
    assert len(index.range_query(heavy_and_pricey)) == 0
    sale = Rectangle({"price": Interval(99.0, 99.0), "weight": Interval(8.0, 20.0)})
    assert len(index.range_query(sale)) == len(remaining)

    # delete_where removes whatever a predicate matches, in one call.
    gift_cards = Rectangle({"weight": Interval(0.0, 0.02)})
    swept = index.delete_where(gift_cards)
    print(f"swept {len(swept)} gift-card orders with delete_where()")

    # Compaction physically reclaims every tombstone; ids survive.
    index.compact()
    assert index.n_tombstoned == 0 and index.n_pending == 0
    assert len(index.range_query(sale)) == len(remaining)
    print(f"compacted: {index.n_rows} live rows, tombstones reclaimed, "
          "query results unchanged — full CRUD, exact throughout.")


if __name__ == "__main__":
    main()
