#!/usr/bin/env python
"""OSM spatial workload: correlated id/timestamp plus clustered coordinates.

Mirrors the paper's second evaluation dataset (OpenStreetMap US-Northeast):
node Id and Timestamp are strongly correlated, Latitude/Longitude cluster
around dense urban areas.  The example shows

* how COAX detects the Id -> Timestamp dependency automatically and indexes
  only (Id, Latitude, Longitude);
* spatial + temporal queries ("nodes edited in this time window inside this
  bounding box") answered exactly from the reduced index;
* the page-length skew of a plain uniform grid over the clustered
  coordinates (the Figure 4a motivation) compared to COAX's quantile cells.

Run with::

    python examples/osm_spatial.py [n_rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import COAXIndex, Interval, Rectangle, UniformGridIndex
from repro.data.osm import OSMConfig, generate_osm_dataset
from repro.indexes.memory import format_bytes


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    table, _ = generate_osm_dataset(OSMConfig(n_rows=n_rows, seed=11))
    print(f"osm dataset: {table.n_rows} nodes, attributes {list(table.schema)}\n")

    index = COAXIndex(table)
    print(index.build_report.describe())
    print()

    # ------------------------------------------------------------------
    # Temporal + spatial query: constraint on the *predicted* Timestamp is
    # translated into a constraint on the indexed Id attribute.
    # ------------------------------------------------------------------
    t_low = float(np.quantile(table.column("Timestamp"), 0.40))
    t_high = float(np.quantile(table.column("Timestamp"), 0.45))
    # Centre the bounding box on the densest area of the synthetic map so the
    # query returns a meaningful number of nodes regardless of the seed.
    lat_centre = float(np.median(table.column("Latitude")))
    lon_centre = float(np.median(table.column("Longitude")))
    boston_ish = Rectangle(
        {
            "Timestamp": Interval(t_low, t_high),
            "Latitude": Interval(lat_centre - 1.0, lat_centre + 1.0),
            "Longitude": Interval(lon_centre - 1.5, lon_centre + 1.5),
        }
    )
    translated = index.translated_query(boston_ish)
    print("query: nodes edited in a 5%-wide time window inside a 2x3 degree box")
    print(f"  translated Id constraint: [{translated.interval('Id').low:.0f}, "
          f"{translated.interval('Id').high:.0f}] "
          f"(full Id range is [{table.min('Id'):.0f}, {table.max('Id'):.0f}])")
    result = index.query(boston_ish)
    expected = table.select(boston_ish)
    assert np.array_equal(np.sort(result.row_ids), expected)
    print(f"  {result.n_results} matching nodes "
          f"({len(result.primary_row_ids)} from the primary index, "
          f"{len(result.outlier_row_ids)} from the outlier index)\n")

    # ------------------------------------------------------------------
    # Pure spatial query (no constraint on the correlated attributes).
    # ------------------------------------------------------------------
    spatial_only = Rectangle(
        {
            "Latitude": Interval(lat_centre - 0.5, lat_centre + 0.5),
            "Longitude": Interval(lon_centre - 0.5, lon_centre + 0.5),
        }
    )
    spatial_result = index.range_query(spatial_only)
    assert np.array_equal(np.sort(spatial_result), table.select(spatial_only))
    print(f"pure spatial query: {len(spatial_result)} nodes (exact)\n")

    # ------------------------------------------------------------------
    # Page-length skew: uniform 2D grid vs COAX's quantile grid cells.
    # ------------------------------------------------------------------
    uniform = UniformGridIndex(table, cells_per_dim=24, dimensions=("Latitude", "Longitude"))
    uniform_sizes = uniform.cell_sizes()
    coax_sizes = index.primary_index.cell_sizes()
    print("cell-occupancy skew (clustered coordinates)")
    print("-------------------------------------------")
    print(f"uniform 2D grid : {len(uniform_sizes)} cells, "
          f"{int((uniform_sizes == 0).sum())} empty, "
          f"largest page {int(uniform_sizes.max())}, std {uniform_sizes.std():.1f}")
    print(f"COAX primary    : {len(coax_sizes)} cells, "
          f"{int((coax_sizes == 0).sum())} empty, "
          f"largest page {int(coax_sizes.max())}, std {coax_sizes.std():.1f}")
    print(f"\nCOAX directory: {format_bytes(index.directory_bytes())} "
          f"({index.memory_breakdown()})")


if __name__ == "__main__":
    main()
