#!/usr/bin/env python
"""Sharded serving: one logical COAX table, N shards, scatter-gather queries.

A production deployment does not run one monolithic index on one core — it
range-partitions the table into shards, each with its own COAX index, and
scatters every query burst over the shards that can possibly match. The
``ShardedCOAX`` engine packages exactly that behind the familiar index
API. This example:

1. builds a 4-shard range-partitioned engine over the synthetic airline
   table with ``executor="process"`` — scatter runs on OS processes that
   attach to mmap-backed shard spills, sidestepping the GIL — sharing
   one set of learned FD groups across the shards;
2. answers a query burst through the scatter-gather batch path and shows
   the shard-pruning counters (``QueryStats.shards_pruned``);
3. verifies the engine is bit-identical to an unsharded COAX index;
4. runs the full CRUD cycle — inserts routed by partition key, deletes,
   in-place updates — with per-shard independent compaction;
5. saves the engine as a format-7 columnar archive (a directory of raw
   column files plus a manifest) and times the restart: ``load_engine``
   attaches the columns with copy-on-write ``np.memmap`` and reattaches
   the saved grids — milliseconds, no rebuild, no model evaluation —
   while still adopting old flat/npz archives as 1-shard engines;
6. demonstrates workload-adaptive layout recovery: an engine with
   ``EngineConfig.layout`` enabled watches a skewed query stream,
   re-partitions itself at compaction to put its boundaries where the
   queries are, and then *recovers* when the hot region moves — the
   build-time quantile boundaries are a starting point, not a sentence.

Run with::

    python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    COAXIndex,
    EngineConfig,
    Interval,
    LayoutConfig,
    Rectangle,
    ShardedCOAX,
    load_engine,
    save_index,
)
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.queries import WorkloadConfig, generate_knn_queries


def main() -> None:
    table, _ = generate_airline_dataset(AirlineConfig(n_rows=60_000, seed=7))

    # ------------------------------------------------------------------
    # 1. Build: 4 range-partitioned shards, groups learned once, scatter
    #    backed by OS processes over mmap-shared shard replicas.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    engine = ShardedCOAX(
        table, config=EngineConfig(n_shards=4, workers=2, executor="process")
    )
    build_seconds = time.perf_counter() - start
    print("build")
    print("-----")
    print(f"shards             : {engine.n_shards}")
    print(f"partition dimension: {engine.partition_dimension}")
    print(f"boundaries         : {np.round(engine.shard_boundaries, 1).tolist()}")
    print(f"rows per shard     : {[shard.n_rows for shard in engine.shards]}")
    print(f"build time         : {build_seconds:.2f}s (workers={engine.workers})")
    print(f"executor           : {engine.executor}")
    print()

    # ------------------------------------------------------------------
    # 2. Serve a burst; shards outside the query boxes are never touched.
    # ------------------------------------------------------------------
    burst = list(
        generate_knn_queries(
            table,
            WorkloadConfig(
                n_queries=512,
                k_neighbours=200,
                dimensions=("Distance", "ArrTime", "DayOfWeek", "Carrier"),
                seed=3,
            ),
        )
    )
    engine.stats.reset()
    start = time.perf_counter()
    results = engine.batch_range_query(burst)
    elapsed = time.perf_counter() - start
    pruned_per_query = engine.stats.shards_pruned / engine.stats.queries
    print("serving")
    print("-------")
    print(f"burst              : {len(burst)} range queries")
    print(f"throughput         : {len(burst) / elapsed:,.0f} queries/s")
    print(f"shards pruned      : {pruned_per_query:.2f} of {engine.n_shards} per query")
    print()

    # ------------------------------------------------------------------
    # 3. The engine is an execution detail: results match unsharded COAX.
    # ------------------------------------------------------------------
    oracle = COAXIndex(table, groups=list(engine.groups))
    expected = oracle.batch_range_query(burst)
    identical = all(np.array_equal(a, b) for a, b in zip(results, expected))
    print(f"bit-identical to unsharded COAX: {identical}")
    assert identical
    print()

    # ------------------------------------------------------------------
    # 4. CRUD: routed inserts, deletes, updates, per-shard compaction.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(11)
    new_rows = {
        name: rng.uniform(table.min(name), table.max(name), size=1_000)
        for name in table.schema
    }
    ids = engine.insert_batch(new_rows)
    print("updates")
    print("-------")
    print(f"inserted           : {len(ids)} rows (ids {ids[0]}..{ids[-1]})")
    print(f"pending per shard  : {[shard.n_pending for shard in engine.shards]}")
    deleted = engine.delete_batch(ids[:300])
    engine.update_batch(
        ids[300:310],
        {name: values[300:310] for name, values in new_rows.items()},
    )
    print(f"deleted            : {deleted} rows, updated 10 in place")
    # Compact one shard at a time — maintenance is never stop-the-world.
    for shard_no in range(engine.n_shards):
        engine.compact(shard=shard_no)
    print(f"after compaction   : pending={engine.n_pending} tombstoned={engine.n_tombstoned}")
    print()

    # ------------------------------------------------------------------
    # 5. Persistence: format-7 columnar archive, instant restart.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = save_index(engine, Path(tmp) / "airline.coax")
        size_mb = sum(f.stat().st_size for f in path.rglob("*") if f.is_file()) / 1e6
        start = time.perf_counter()
        restored = load_engine(path, workers=2, executor="thread")
        restart_ms = (time.perf_counter() - start) * 1e3
        probe = Rectangle({"Distance": Interval(500.0, 800.0)})
        match = np.array_equal(
            np.sort(restored.range_query(probe)), np.sort(engine.range_query(probe))
        )
        print("persistence")
        print("-----------")
        print(f"archive            : {path.name}/ ({size_mb:.1f} MB, format v7 columnar)")
        print(f"cold start         : {restart_ms:.1f} ms — mmap attach, no rebuild")
        print(f"restored executor  : {restored.executor} (load-time override wins)")
        print(f"restored shards    : {restored.n_shards}, round-trip identical: {match}")
        assert match
        restored.close()
    engine.close()
    print()

    # ------------------------------------------------------------------
    # 6. Workload-adaptive layout: the engine re-partitions itself when
    #    the observed query distribution says the boundaries are wrong,
    #    and recovers again when the hot region moves.
    # ------------------------------------------------------------------
    adaptive = ShardedCOAX(
        table,
        config=EngineConfig(
            n_shards=4,
            workers=1,
            layout=LayoutConfig(
                enabled=True, sketch_size=256, min_queries=128, min_gain=1.1
            ),
        ),
    )
    dim = adaptive.partition_dimension
    lo, hi = float(table.min(dim)), float(table.max(dim))
    span = hi - lo

    def hot_burst(region_start: float, rng_seed: int) -> None:
        """256 narrow queries concentrated in one tenth of the domain."""
        rng = np.random.default_rng(rng_seed)
        starts = rng.uniform(region_start, region_start + 0.08 * span, 256)
        adaptive.batch_range_query(
            [Rectangle({dim: Interval(s, s + 0.02 * span)}) for s in starts]
        )

    print("adaptive layout")
    print("---------------")
    print(f"build boundaries   : {np.round(adaptive.shard_boundaries, 1).tolist()}")
    hot_burst(lo, rng_seed=17)          # every query in the lowest decile
    adaptive.compact()                   # the re-layout decision point
    print(f"after hot low skew : {np.round(adaptive.shard_boundaries, 1).tolist()}")
    hot_burst(lo + 0.7 * span, rng_seed=19)  # the workload moves
    adaptive.compact()
    print(f"after shift high   : {np.round(adaptive.shard_boundaries, 1).tolist()}")
    monitor = adaptive.layout
    assert monitor is not None
    print(f"re-layouts adopted : {monitor.epoch}")
    burst_check = [
        Rectangle({dim: Interval(lo + 0.7 * span, lo + 0.75 * span)}),
        Rectangle(),
    ]
    same = all(
        np.array_equal(np.sort(adaptive.range_query(q)), np.sort(oracle.range_query(q)))
        for q in burst_check
    )
    print(f"still bit-identical to unsharded COAX: {same}")
    assert same
    adaptive.close()


if __name__ == "__main__":
    main()
