#!/usr/bin/env python
"""Query executors: aggregates and nearest neighbours without row ids.

The read path answers the question its *consumer* actually asks: a query
carries an executor spec, and ``MaterializeIds`` (the classic row-id
contract) is just the default. This example:

1. builds COAX over the synthetic Airline table;
2. answers COUNT/SUM/AVG/MIN/MAX over a rectangle with the ``Aggregate``
   executor and checks them against materialize-then-reduce;
3. finds the 5 nearest flights to a (Distance, ArrTime) point with
   ``knn`` and the 5 longest flights in a rectangle with ``TopK``;
4. shows the same executors answered by the sharded engine — partial
   accumulators are gathered, never candidate id streams — bit-identical
   to the flat index;
5. reads the new per-op stats counters (``aggregates``, ``knn_queries``,
   ``rings_expanded``).

Run with::

    python examples/aggregates_and_knn.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Aggregate,
    COAXIndex,
    EngineConfig,
    Interval,
    Rectangle,
    ShardedCOAX,
    TopK,
    generate_airline_dataset,
)


def main() -> None:
    table, _ = generate_airline_dataset()
    index = COAXIndex(table)
    print("build")
    print("-----")
    print(index.build_report.describe())
    print()

    # -- aggregates: the kernel folds candidate runs, no id materialisation
    sort_dim = index.build_report.primary_sort_dimension
    values = np.sort(np.asarray(table.column(sort_dim), dtype=np.float64))
    query = Rectangle(
        {sort_dim: Interval(float(values[len(values) // 4]), float(values[len(values) // 2]))}
    )
    print(f"aggregates over {sort_dim!r} rectangle")
    print("---------------------------------")
    ids = index.range_query(query)
    airtime = np.asarray(table.column("AirTime"), dtype=np.float64)
    for op in ("count", "sum", "avg", "min", "max"):
        spec = Aggregate(op, None if op == "count" else "AirTime")
        value = index.aggregate(query, spec)
        reduced = {
            "count": float(len(ids)),
            "sum": float(np.sum(airtime[ids])),
            "avg": float(np.mean(airtime[ids])),
            "min": float(np.min(airtime[ids])),
            "max": float(np.max(airtime[ids])),
        }[op]
        assert np.isclose(value, reduced, rtol=1e-9)
        print(f"  {op:5s} = {value:,.2f}  (matches materialize-then-reduce)")
    print()

    # -- kNN: expanding-ring search with FD translation, exact by contract
    point = {"Distance": 700.0, "ArrTime": 900.0}
    neighbours = index.knn(point, 5)
    print("5 nearest flights to", point)
    for row_id in neighbours:
        print(
            f"  row {row_id}: Distance={table.column('Distance')[row_id]:.0f}"
            f" ArrTime={table.column('ArrTime')[row_id]:.0f}"
        )
    print()

    # -- top-k by a column inside a rectangle
    longest = index.topk(query, TopK(5, column="AirTime", largest=True))
    print("5 longest flights in the rectangle")
    for row_id in longest:
        print(f"  row {row_id}: AirTime={table.column('AirTime')[row_id]:.0f}")
    print()

    # -- the sharded engine answers the same specs from partial accumulators
    engine = ShardedCOAX(table, config=EngineConfig(n_shards=4))
    try:
        sharded_count = engine.aggregate(query, Aggregate("count", None))
        flat_count = index.aggregate(query, Aggregate("count", None))
        assert sharded_count == flat_count
        assert np.array_equal(engine.knn(point, 5), neighbours)
        print(f"sharded engine agrees: COUNT={sharded_count:,.0f}, same 5 neighbours")
        stats = engine.stats
        print(
            f"engine stats: aggregates={stats.aggregates}"
            f" knn_queries={stats.knn_queries} rings_expanded={stats.rings_expanded}"
        )
    finally:
        engine.close()


if __name__ == "__main__":
    main()
