#!/usr/bin/env python
"""Serving front end: coalescing TCP server, pipelining client, backpressure.

The engine's batch read path amortises planning, Equation-2 translation
and result merging across a whole batch — but network clients send
queries one at a time. The serving layer (``repro.serve``, DESIGN.md §11)
closes that gap with adaptive micro-batch coalescing: single queries from
many connections accumulate for at most a couple of milliseconds (less
when the stream is hot, not at all when it is idle) and run through
``batch_range_query_attributed`` as one engine call. This example:

1. builds a sharded engine over the synthetic airline table and starts a
   ``CoalescingQueryServer`` on an ephemeral loopback port;
2. runs a single ad-hoc query through a ``ServeClient`` — an idle server
   passes it straight through, no coalescing delay — and reads the
   per-query ``stats`` attribution off the wire;
3. simulates a burst of concurrent clients and shows the coalescer's
   counters: batches formed, mean batch size, pass-throughs;
4. verifies every served result against the engine queried directly;
5. demonstrates typed backpressure: a deliberately tiny admission queue
   fast-rejects overflow queries with ``overloaded`` + ``retry_after_ms``
   instead of queueing without bound, and a shut-down engine answers
   ``shutting_down``.

Run with::

    python examples/serve_client.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import EngineConfig, Interval, Rectangle, ShardedCOAX
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.queries import WorkloadConfig, generate_knn_queries
from repro.serve import (
    CoalescerConfig,
    CoalescingQueryServer,
    ServeClient,
    ServerConfig,
    ServerOverloadedError,
    ServerShuttingDownError,
)


def build_engine() -> ShardedCOAX:
    table, _ = generate_airline_dataset(AirlineConfig(n_rows=40_000, seed=3))
    return ShardedCOAX(table, config=EngineConfig(n_shards=4, workers=1))


async def single_query(engine: ShardedCOAX) -> None:
    print("=== 1+2. One ad-hoc query through the server ===")
    async with CoalescingQueryServer(engine) as server:
        print(f"serving on 127.0.0.1:{server.port}")
        async with await ServeClient.connect("127.0.0.1", server.port) as client:
            query = Rectangle(
                {"Distance": Interval(500, 800), "AirTime": Interval(60, 120)}
            )
            result = await client.query(query)
            direct = engine.range_query(query)
            assert np.array_equal(np.sort(result.row_ids), np.sort(direct))
            print(f"rows matched : {len(result.row_ids)} (== direct query)")
            print(f"stats        : {result.stats}")
            print(f"server meta  : {result.server}  <- lone query, batch of 1")
    print()


async def concurrent_burst(engine: ShardedCOAX) -> None:
    print("=== 3+4. Concurrent clients coalesce into micro-batches ===")
    table = engine.shards[0].table  # any shard shares the schema
    dims = tuple(engine.shards[0].build_report.indexed_dimensions)
    queries = list(
        generate_knn_queries(
            table,
            WorkloadConfig(n_queries=32, k_neighbours=200, dimensions=dims, seed=9),
        )
    )
    expected = engine.batch_range_query(queries)

    async with CoalescingQueryServer(engine) as server:

        async def one_client(client_no: int) -> None:
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                for i in range(client_no, len(queries), 16):
                    result = await client.query(queries[i])
                    assert np.array_equal(
                        np.sort(result.row_ids), np.sort(expected[i])
                    ), f"served result diverged on query {i}"

        await asyncio.gather(*(one_client(i) for i in range(16)))
        snapshot = server.snapshot()
        print(f"queries served : {snapshot['dispatched']:.0f}")
        print(f"engine batches : {snapshot['batches']:.0f}")
        print(f"mean batch     : {snapshot['coalescer_mean_batch']:.2f}")
        print(f"pass-throughs  : {snapshot['coalescer_passthrough']:.0f}")
        print("every served result verified against the direct engine query")
    print()


async def backpressure(engine: ShardedCOAX) -> None:
    print("=== 5. Typed backpressure ===")
    config = ServerConfig(
        coalescer=CoalescerConfig(
            max_batch=4096,
            max_queue=4,  # deliberately tiny admission bound
            max_window_s=0.1,
            min_window_s=0.08,
            idle_gap_factor=1e9,  # never pass through, force queueing
        )
    )
    query = Rectangle({"Distance": Interval(500, 800)})
    async with CoalescingQueryServer(engine, config=config) as server:
        async with await ServeClient.connect("127.0.0.1", server.port) as client:
            futures = [await client.submit(query) for _ in range(10)]
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
            served = sum(1 for o in outcomes if not isinstance(o, Exception))
            rejections = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
            print("submitted 10 with a queue bound of 4:")
            print(f"  served    : {served}")
            print(f"  rejected  : {len(rejections)} (typed 'overloaded')")
            if rejections:
                print(f"  retry hint: {rejections[0].retry_after_ms:.1f} ms")

    # A server over a shut-down engine answers 'shutting_down', not a crash.
    async with CoalescingQueryServer(engine) as server:
        async with await ServeClient.connect("127.0.0.1", server.port) as client:
            engine.shutdown()
            try:
                await client.query(query)
            except ServerShuttingDownError as exc:
                print(f"after engine.shutdown(): ServerShuttingDownError({exc})")


async def main() -> None:
    engine = build_engine()
    print(f"engine: {engine.n_rows} rows, {engine.n_shards} shards\n")
    await single_query(engine)
    await concurrent_burst(engine)
    await backpressure(engine)


if __name__ == "__main__":
    asyncio.run(main())
