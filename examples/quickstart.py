#!/usr/bin/env python
"""Quickstart: build a COAX index and run a few queries.

This walks through the full public API on a small synthetic dataset with a
single soft functional dependency:

1. create a table with correlated attributes;
2. build a COAX index (soft-FD detection runs automatically);
3. inspect what the index learned;
4. run range and point queries and compare against a full scan;
5. look at the memory footprint compared to an R-Tree.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import COAXIndex, FullScanIndex, Interval, Rectangle, RTreeIndex, Table


def build_dataset(n_rows: int = 50_000, seed: int = 0) -> Table:
    """A sensor-style table: reading_id, timestamp (correlated), temperature."""
    rng = np.random.default_rng(seed)
    reading_id = np.cumsum(rng.integers(1, 4, size=n_rows)).astype(float)
    # Timestamps follow the reading id almost linearly (ingestion order), with
    # a small fraction of late backfills breaking the pattern.
    timestamp = 1_600_000_000 + reading_id * 30.0 + rng.normal(0.0, 20.0, size=n_rows)
    backfills = rng.random(n_rows) < 0.05
    timestamp[backfills] = 1_600_000_000 + rng.uniform(0, reading_id[-1] * 30.0, size=int(backfills.sum()))
    temperature = rng.normal(21.0, 4.0, size=n_rows)
    return Table({"reading_id": reading_id, "timestamp": timestamp, "temperature": temperature})


def main() -> None:
    table = build_dataset()
    print(f"dataset: {table.n_rows} rows, attributes {list(table.schema)}\n")

    # ------------------------------------------------------------------
    # Build COAX: detection, partitioning and index construction in one go.
    # ------------------------------------------------------------------
    index = COAXIndex(table)
    print("what COAX learned")
    print("-----------------")
    print(index.build_report.describe())
    print()

    # ------------------------------------------------------------------
    # Range query mixing an indexed and a predicted attribute.
    # ------------------------------------------------------------------
    query = Rectangle(
        {
            "timestamp": Interval(1_600_300_000, 1_600_600_000),
            "temperature": Interval(18.0, 24.0),
        }
    )
    matches = index.range_query(query)
    expected = table.select(query)
    print(f"range query on (timestamp, temperature): {len(matches)} rows "
          f"(full scan agrees: {np.array_equal(np.sort(matches), expected)})")

    result = index.query(query)
    print(f"  answered from primary index: {len(result.primary_row_ids)} rows, "
          f"outlier index: {len(result.outlier_row_ids)} rows")

    # ------------------------------------------------------------------
    # Point query for one existing record.
    # ------------------------------------------------------------------
    record = table.row(1234)
    point_matches = index.point_query(record)
    print(f"point query for row 1234 found rows: {point_matches.tolist()}")

    # ------------------------------------------------------------------
    # Memory comparison.
    # ------------------------------------------------------------------
    rtree = RTreeIndex(table, node_capacity=10)
    scan = FullScanIndex(table)
    print("\nindex directory sizes")
    print("---------------------")
    print(f"COAX      : {index.directory_bytes():>10} bytes  {index.memory_breakdown()}")
    print(f"R-Tree    : {rtree.directory_bytes():>10} bytes")
    print(f"Full scan : {scan.directory_bytes():>10} bytes (no structure at all)")


if __name__ == "__main__":
    main()
