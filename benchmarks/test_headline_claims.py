"""Headline claims — memory reduction and query-work reduction.

Abstract: "we reduce the execution time by 25% while reducing the memory
footprint of the index by four orders of magnitude".  On the scaled Python
substrate the asserted, substrate-independent versions of those claims are:

* COAX's index directory is at least an order of magnitude smaller than
  every conventional competitor that indexes all dimensions, and ~50x+
  below the R-Tree (the gap widens with dataset size — the paper's four
  orders of magnitude are measured at 80M rows);
* COAX examines fewer rows per range query than the R-Tree and the full
  grid, i.e. it does less work per lookup, which is what the 25% runtime
  improvement reflects on the paper's C substrate.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import execute_workload

DATASETS = ("Airline", "OSM")


@pytest.mark.parametrize("dataset", DATASETS)
def test_headline_memory_reduction(benchmark, dataset, indexes):
    built = indexes[dataset]
    coax_bytes = built["COAX"].directory_bytes()

    factors = {
        name: built[name].directory_bytes() / max(coax_bytes, 1)
        for name in ("R-Tree", "Full Grid", "Column Files")
    }
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["coax_dir_bytes"] = coax_bytes
    benchmark.extra_info.update({f"reduction_vs_{k}": round(v, 1) for k, v in factors.items()})

    benchmark(lambda: built["COAX"].directory_bytes())

    assert factors["R-Tree"] > 50.0
    assert factors["Full Grid"] > 3.0


@pytest.mark.parametrize("dataset", DATASETS)
def test_headline_query_work_reduction(
    benchmark, dataset, indexes, airline_range_workload, osm_range_workload
):
    workload = airline_range_workload if dataset == "Airline" else osm_range_workload
    built = indexes[dataset]

    work = {}
    for name in ("COAX", "R-Tree", "Full Grid", "Full Scan"):
        index = built[name]
        index.stats.reset()
        execute_workload(index, workload)
        work[name] = index.stats.rows_examined / max(index.stats.queries, 1)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info.update({f"rows_per_q_{k}": round(v, 1) for k, v in work.items()})

    benchmark(execute_workload, built["COAX"], workload)

    # COAX does less work per lookup than every all-dimension competitor.
    assert work["COAX"] < work["Full Scan"] * 0.5
    assert work["COAX"] < work["Full Grid"]
    assert work["COAX"] <= 1.1 * work["R-Tree"]
