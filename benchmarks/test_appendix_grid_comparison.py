"""Appendix G — square-grid scanning cost versus the soft-FD index.

Measures, on synthetic linear data with a controlled margin, how many rows a
square 2D grid examines for a Y-range query compared to the translated scan
of a soft-FD index, and checks the appendix's qualitative conclusion: the
narrower the margin, the larger the advantage of the soft-FD index over a
grid of equivalent memory budget, and the analytic cell count (Equation 14)
grows as the margin shrinks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel
from repro.indexes.uniform_grid import UniformGridIndex
from repro.stats.theory import grid_cells_scanned

N_ROWS = 30_000
SLOPE = 2.0
QUERY_WIDTH = 30.0
EPSILONS = (2.0, 8.0, 32.0)


def _linear_table(epsilon: float, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1000.0, size=N_ROWS)
    y = SLOPE * x + rng.uniform(-epsilon, epsilon, size=N_ROWS)
    return Table({"x": x, "y": y})


def _queries(table: Table, n: int = 15, seed: int = 1):
    rng = np.random.default_rng(seed)
    y = table.column("y")
    queries = []
    for _ in range(n):
        low = rng.uniform(y.min(), y.max() - QUERY_WIDTH)
        queries.append(Rectangle({"y": Interval(low, low + QUERY_WIDTH)}))
    return queries


def _soft_fd_index(table: Table, epsilon: float) -> COAXIndex:
    groups = [
        FDGroup(
            predictor="x",
            dependents=("y",),
            models={"y": LinearFDModel(SLOPE, 0.0, epsilon, epsilon)},
        )
    ]
    return COAXIndex(table, groups=groups, config=COAXConfig(primary_cells_per_dim=1))


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_appendix_g_soft_fd_vs_grid_rows_examined(benchmark, epsilon):
    table = _linear_table(epsilon)
    queries = _queries(table)
    soft_fd = _soft_fd_index(table, epsilon)
    grid = UniformGridIndex(table, cells_per_dim=64)

    def run_soft_fd():
        total = 0
        for query in queries:
            total += len(soft_fd.range_query(query))
        return total

    soft_fd.stats.reset()
    grid.stats.reset()
    total = benchmark(run_soft_fd)
    grid_total = sum(len(grid.range_query(query)) for query in queries)
    assert total == grid_total  # both exact

    soft_rows = soft_fd.stats.rows_examined / max(soft_fd.stats.queries, 1)
    grid_rows = grid.stats.rows_examined / max(grid.stats.queries, 1)
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["softfd_rows_per_query"] = round(soft_rows, 1)
    benchmark.extra_info["grid_rows_per_query"] = round(grid_rows, 1)
    benchmark.extra_info["analytic_grid_cells"] = round(
        grid_cells_scanned(1000.0, SLOPE * 1000.0 + 2 * epsilon, epsilon, SLOPE, QUERY_WIDTH), 1
    )

    # With a margin narrower than the query, the soft-FD index scans no more
    # than the grid.  For very wide margins the appendix itself notes that
    # "S_s may be smaller or bigger than S_Grid", so no ordering is asserted.
    if epsilon <= QUERY_WIDTH:
        assert soft_rows <= 1.2 * grid_rows


def test_appendix_g_advantage_grows_as_margin_shrinks():
    ratios = []
    for epsilon in EPSILONS:
        table = _linear_table(epsilon)
        queries = _queries(table)
        soft_fd = _soft_fd_index(table, epsilon)
        grid = UniformGridIndex(table, cells_per_dim=64)
        soft_fd.stats.reset()
        grid.stats.reset()
        for query in queries:
            soft_fd.range_query(query)
            grid.range_query(query)
        ratios.append(grid.stats.rows_examined / max(soft_fd.stats.rows_examined, 1))
    # Narrower margins (smaller epsilon) -> bigger advantage for soft-FD.
    assert ratios[0] > ratios[-1]


def test_appendix_g_analytic_cell_count_monotone_in_margin():
    counts = [
        grid_cells_scanned(1000.0, 2000.0, epsilon, SLOPE, QUERY_WIDTH) for epsilon in EPSILONS
    ]
    assert counts == sorted(counts, reverse=True)
