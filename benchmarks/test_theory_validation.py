"""Section 7 — effectiveness (Eq. 5) and the CSM theorems, validated by simulation.

Benchmarks the segmentation machinery and asserts that the measured
quantities converge to the closed-form predictions in the regime the
theorems assume (sigma much smaller than epsilon).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments.theory import measure_effectiveness
from repro.stats.csm import segment_stream, simulate_gap_stream
from repro.stats.theory import (
    expected_keys_per_segment,
    expected_segment_count,
    keys_per_segment_variance,
)

STREAM_LENGTH = 200_000
SIGMA = 1.0


@pytest.mark.parametrize("epsilon", (10.0, 20.0, 40.0))
def test_theorem_71_and_73_segment_moments(benchmark, epsilon):
    rng = np.random.default_rng(0)
    gaps = simulate_gap_stream(STREAM_LENGTH, mean=3.0, std=SIGMA, rng=rng)

    lengths = benchmark(segment_stream, gaps, epsilon, slope=3.0)

    complete = np.array(lengths[:-1], dtype=float)
    measured_mean = complete.mean()
    measured_var = complete.var()
    predicted_mean = expected_keys_per_segment(epsilon, SIGMA)
    predicted_var = keys_per_segment_variance(epsilon, SIGMA)

    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["predicted_mean_keys"] = round(predicted_mean, 1)
    benchmark.extra_info["measured_mean_keys"] = round(float(measured_mean), 1)
    benchmark.extra_info["predicted_variance"] = round(predicted_var, 1)
    benchmark.extra_info["measured_variance"] = round(float(measured_var), 1)

    # Theorem 7.1: expected keys per segment -> eps^2 / sigma^2.
    assert measured_mean == pytest.approx(predicted_mean, rel=0.3)
    # Theorem 7.3: variance -> 2 eps^4 / (3 sigma^4); higher moments converge
    # more slowly, so the tolerance is wider.
    assert measured_var == pytest.approx(predicted_var, rel=0.6)


@pytest.mark.parametrize("epsilon", (10.0, 20.0, 40.0))
def test_theorem_74_segment_count(benchmark, epsilon):
    rng = np.random.default_rng(1)
    gaps = simulate_gap_stream(STREAM_LENGTH, mean=2.0, std=SIGMA, rng=rng)
    lengths = benchmark(segment_stream, gaps, epsilon, slope=2.0)
    predicted = expected_segment_count(STREAM_LENGTH, epsilon, SIGMA)

    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["predicted_segments"] = round(predicted, 1)
    benchmark.extra_info["measured_segments"] = len(lengths)

    assert len(lengths) == pytest.approx(predicted, rel=0.3)


def test_theorem_72_optimal_slope_is_gap_mean():
    """The segmentation covers the most keys when the slope equals the gap mean."""
    rng = np.random.default_rng(2)
    gaps = simulate_gap_stream(100_000, mean=3.0, std=1.0, rng=rng)
    epsilon = 15.0
    capacity_at_mean = np.mean(segment_stream(gaps, epsilon, slope=3.0)[:-1])
    for off_slope in (2.7, 3.3):
        capacity_off = np.mean(segment_stream(gaps, epsilon, slope=off_slope)[:-1])
        assert capacity_at_mean > capacity_off


def test_equation_5_effectiveness(benchmark):
    rows = benchmark(measure_effectiveness, n_rows=40_000, seed=3)
    for row in rows:
        benchmark.extra_info[f"qwidth_{row['query_width']}"] = (
            f"predicted={row['predicted']}, measured={row['measured']}"
        )
        assert row["relative_error"] < 0.15
    # Effectiveness rises towards 1 as the query gets wider relative to eps.
    measured = [row["measured"] for row in rows]
    assert measured == sorted(measured)
