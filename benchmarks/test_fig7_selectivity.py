"""Figure 7 — range-query runtime versus selectivity on the Airline data.

The paper sweeps average selectivities of {35K, 150K, 750K, 1.5M} points on
a 7M-row subset (0.5%, 2.1%, 10.7%, 21.4% of the data) and compares COAX,
the R-Tree and Column Files.  The benchmarks keep the same fractions of the
scaled dataset.  Shape assertions: every index stays exact, the work of all
indexes grows with selectivity, and COAX never examines more rows than the
R-Tree.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import execute_workload
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.queries import WorkloadConfig, generate_selectivity_queries
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.rtree import RTreeIndex

#: Selectivities as fractions of the dataset (paper: 35K/150K/750K/1.5M of 7M).
SELECTIVITY_FRACTIONS = (0.005, 0.021, 0.107, 0.214)
INDEX_NAMES = ("COAX", "R-Tree", "Column Files")


@pytest.fixture(scope="module")
def fig7_indexes(airline_table):
    return {
        "COAX": COAXIndex(airline_table, config=COAXConfig()),
        "R-Tree": RTreeIndex(airline_table, node_capacity=10),
        "Column Files": ColumnFilesIndex(airline_table, cells_per_dim=8),
    }


@pytest.fixture(scope="module")
def fig7_workloads(airline_table):
    workloads = {}
    for fraction in SELECTIVITY_FRACTIONS:
        target = max(10, int(fraction * airline_table.n_rows))
        workloads[fraction] = generate_selectivity_queries(
            airline_table, target, WorkloadConfig(n_queries=10, seed=42)
        )
    return workloads


@pytest.fixture(scope="module")
def fig7_ground_truth(airline_table, fig7_workloads):
    return {
        fraction: sum(len(airline_table.select(q)) for q in workload)
        for fraction, workload in fig7_workloads.items()
    }


@pytest.mark.parametrize("index_name", INDEX_NAMES)
@pytest.mark.parametrize("fraction", SELECTIVITY_FRACTIONS)
def test_fig7_selectivity_sweep(
    benchmark, fraction, index_name, fig7_indexes, fig7_workloads, fig7_ground_truth, airline_table
):
    index = fig7_indexes[index_name]
    workload = fig7_workloads[fraction]

    index.stats.reset()
    total = benchmark(execute_workload, index, workload)
    assert total == fig7_ground_truth[fraction]

    queries_run = max(index.stats.queries, 1)
    rows_per_query = index.stats.rows_examined / queries_run
    benchmark.extra_info["index"] = index_name
    benchmark.extra_info["selectivity_fraction"] = fraction
    benchmark.extra_info["target_points"] = int(fraction * airline_table.n_rows)
    benchmark.extra_info["rows_examined_per_query"] = round(rows_per_query, 1)


def test_fig7_coax_examines_no_more_than_rtree(fig7_indexes, fig7_workloads):
    """Across the whole sweep COAX's scanned volume stays at or below the R-Tree's."""
    coax = fig7_indexes["COAX"]
    rtree = fig7_indexes["R-Tree"]
    for workload in fig7_workloads.values():
        coax.stats.reset()
        rtree.stats.reset()
        execute_workload(coax, workload)
        execute_workload(rtree, workload)
        assert coax.stats.rows_examined <= 1.1 * rtree.stats.rows_examined


def test_fig7_work_grows_with_selectivity(fig7_indexes, fig7_workloads):
    coax = fig7_indexes["COAX"]
    measured = []
    for fraction in SELECTIVITY_FRACTIONS:
        coax.stats.reset()
        execute_workload(coax, fig7_workloads[fraction])
        measured.append(coax.stats.rows_examined)
    assert measured == sorted(measured)
