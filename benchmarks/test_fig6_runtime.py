"""Figure 6 — query runtime on Airline and OSM, range and point queries.

One benchmark per (dataset, workload, index) triple.  Each benchmark times
the execution of the whole workload against a pre-built index and records
the directory size and the work (rows examined per query) in extra_info.
Shape assertions check the substrate-independent properties the figure
shows: every index returns exactly the full-scan results, and COAX examines
far less data than the full scan and no more than the conventional
competitors.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import execute_workload

DATASETS = ("Airline", "OSM")
WORKLOADS = ("range", "point")
INDEX_NAMES = ("COAX", "R-Tree", "Full Grid", "Column Files", "Full Scan")


def _workload_for(dataset, kind, airline_range, airline_point, osm_range, osm_point):
    return {
        ("Airline", "range"): airline_range,
        ("Airline", "point"): airline_point,
        ("OSM", "range"): osm_range,
        ("OSM", "point"): osm_point,
    }[(dataset, kind)]


@pytest.mark.parametrize("index_name", INDEX_NAMES)
@pytest.mark.parametrize("workload_kind", WORKLOADS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_query_runtime(
    benchmark,
    dataset,
    workload_kind,
    index_name,
    indexes,
    ground_truth,
    airline_range_workload,
    airline_point_workload,
    osm_range_workload,
    osm_point_workload,
):
    index = indexes[dataset][index_name]
    workload = _workload_for(
        dataset,
        workload_kind,
        airline_range_workload,
        airline_point_workload,
        osm_range_workload,
        osm_point_workload,
    )

    index.stats.reset()
    total_results = benchmark(execute_workload, index, workload)

    # Exactness: the paper's runtime comparison is only meaningful because
    # every index returns the same results.
    assert total_results == ground_truth[(dataset, workload_kind)]

    queries_run = max(index.stats.queries, 1)
    rows_per_query = index.stats.rows_examined / queries_run
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["workload"] = workload_kind
    benchmark.extra_info["index"] = index_name
    benchmark.extra_info["dir_bytes"] = index.directory_bytes()
    benchmark.extra_info["rows_examined_per_query"] = round(rows_per_query, 1)

    if index_name == "COAX":
        scan_rows = indexes[dataset]["Full Scan"].n_rows
        # COAX's pruning: it must examine well under half of the data per
        # query, and its directory must undercut the R-Tree by a wide margin.
        assert rows_per_query < 0.5 * scan_rows
        assert index.directory_bytes() < indexes[dataset]["R-Tree"].directory_bytes() / 10
