"""Figure 8 — runtime versus memory-overhead trade-off.

Sweeps each structure's main size knob (grid cells for COAX and Column
Files, node capacity for the R-Tree) on the Airline and OSM data, timing the
range workload at every setting and recording the directory size.  The
paper's qualitative claims asserted here: COAX's best setting needs a
directory orders of magnitude below the R-Tree's smallest one, and the
R-Tree's directory shrinks as node capacity grows (the tuning behaviour
behind the figure).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import execute_workload
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.table import Table
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.rtree import RTreeIndex

CELL_SWEEP = (2, 4, 8, 16)
CAPACITY_SWEEP = (4, 8, 12, 24)
DATASETS = ("Airline", "OSM")


def _table_for(dataset: str, airline_table: Table, osm_table: Table) -> Table:
    return airline_table if dataset == "Airline" else osm_table


def _workload_for(dataset, airline_range_workload, osm_range_workload):
    return airline_range_workload if dataset == "Airline" else osm_range_workload


@pytest.mark.parametrize("cells", CELL_SWEEP)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_coax_sweep(
    benchmark, dataset, cells, airline_table, osm_table, airline_range_workload, osm_range_workload
):
    table = _table_for(dataset, airline_table, osm_table)
    workload = _workload_for(dataset, airline_range_workload, osm_range_workload)
    config = COAXConfig(primary_cells_per_dim=cells, outlier_cells_per_dim=max(2, cells // 2))
    index = COAXIndex(table, config=config)
    benchmark(execute_workload, index, workload)
    breakdown = index.memory_breakdown()
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "index": "COAX (total)",
            "knob": f"cells={cells}",
            "dir_bytes": index.directory_bytes(),
            "primary_bytes": breakdown["primary"],
            "outlier_bytes": breakdown["outlier"],
        }
    )


@pytest.mark.parametrize("cells", CELL_SWEEP)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_column_files_sweep(
    benchmark, dataset, cells, airline_table, osm_table, airline_range_workload, osm_range_workload
):
    table = _table_for(dataset, airline_table, osm_table)
    workload = _workload_for(dataset, airline_range_workload, osm_range_workload)
    index = ColumnFilesIndex(table, cells_per_dim=cells, max_cells=4 * table.n_rows)
    benchmark(execute_workload, index, workload)
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "index": "Column Files",
            "knob": f"cells={cells}",
            "dir_bytes": index.directory_bytes(),
        }
    )


@pytest.mark.parametrize("capacity", CAPACITY_SWEEP)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_rtree_sweep(
    benchmark, dataset, capacity, airline_table, osm_table, airline_range_workload, osm_range_workload
):
    table = _table_for(dataset, airline_table, osm_table)
    workload = _workload_for(dataset, airline_range_workload, osm_range_workload)
    index = RTreeIndex(table, node_capacity=capacity)
    benchmark(execute_workload, index, workload)
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "index": "R-Tree",
            "knob": f"capacity={capacity}",
            "dir_bytes": index.directory_bytes(),
        }
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_coax_memory_orders_of_magnitude_below_rtree(dataset, airline_table, osm_table):
    table = _table_for(dataset, airline_table, osm_table)
    coax_best = min(
        COAXIndex(
            table,
            config=COAXConfig(primary_cells_per_dim=cells, outlier_cells_per_dim=max(2, cells // 2)),
        ).directory_bytes()
        for cells in (2, 4, 8)
    )
    rtree_smallest = min(
        RTreeIndex(table, node_capacity=capacity).directory_bytes() for capacity in CAPACITY_SWEEP
    )
    assert rtree_smallest > 50 * coax_best


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_rtree_directory_shrinks_with_capacity(dataset, airline_table, osm_table):
    table = _table_for(dataset, airline_table, osm_table)
    sizes = [RTreeIndex(table, node_capacity=c).directory_bytes() for c in CAPACITY_SWEEP]
    assert sizes == sorted(sizes, reverse=True)
