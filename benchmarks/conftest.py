"""Shared fixtures for the benchmark suites.

The benchmarks regenerate the paper's tables and figures at a laptop scale
(default 20k rows; set the environment variable ``COAX_BENCH_ROWS`` to scale
up).  Datasets, workloads and the more expensive index builds are
session-scoped so pytest-benchmark timing loops only measure query
execution, not setup.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.osm import OSMConfig, generate_osm_dataset
from repro.data.queries import (
    WorkloadConfig,
    generate_knn_queries,
    generate_point_queries,
)
from repro.data.table import Table
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.uniform_grid import UniformGridIndex

#: Default benchmark scale; override with COAX_BENCH_ROWS.
BENCH_ROWS = int(os.environ.get("COAX_BENCH_ROWS", "20000"))
BENCH_QUERIES = int(os.environ.get("COAX_BENCH_QUERIES", "20"))


@pytest.fixture(scope="session")
def airline_table() -> Table:
    table, _ = generate_airline_dataset(AirlineConfig(n_rows=BENCH_ROWS, seed=7))
    return table


@pytest.fixture(scope="session")
def osm_table() -> Table:
    table, _ = generate_osm_dataset(OSMConfig(n_rows=BENCH_ROWS, seed=11))
    return table


@pytest.fixture(scope="session")
def airline_range_workload(airline_table):
    return generate_knn_queries(
        airline_table, WorkloadConfig(n_queries=BENCH_QUERIES, k_neighbours=200, seed=1)
    )


@pytest.fixture(scope="session")
def airline_point_workload(airline_table):
    return generate_point_queries(airline_table, WorkloadConfig(n_queries=BENCH_QUERIES, seed=2))


@pytest.fixture(scope="session")
def osm_range_workload(osm_table):
    return generate_knn_queries(
        osm_table, WorkloadConfig(n_queries=BENCH_QUERIES, k_neighbours=200, seed=3)
    )


@pytest.fixture(scope="session")
def osm_point_workload(osm_table):
    return generate_point_queries(osm_table, WorkloadConfig(n_queries=BENCH_QUERIES, seed=4))


@pytest.fixture(scope="session")
def indexes(airline_table, osm_table):
    """Every competitor of Figure 6 built once per dataset."""
    config = COAXConfig()
    built = {}
    for name, table in (("Airline", airline_table), ("OSM", osm_table)):
        built[name] = {
            "COAX": COAXIndex(table, config=config),
            "R-Tree": RTreeIndex(table, node_capacity=10),
            "Full Grid": UniformGridIndex(table, cells_per_dim=6),
            "Column Files": ColumnFilesIndex(table, cells_per_dim=8),
            "Full Scan": FullScanIndex(table),
        }
    return built


@pytest.fixture(scope="session")
def ground_truth(airline_table, osm_table, airline_range_workload, airline_point_workload,
                 osm_range_workload, osm_point_workload):
    """Exact result counts per dataset and workload, used to verify benchmarks."""
    return {
        ("Airline", "range"): sum(len(airline_table.select(q)) for q in airline_range_workload),
        ("Airline", "point"): sum(len(airline_table.select(q)) for q in airline_point_workload),
        ("OSM", "range"): sum(len(osm_table.select(q)) for q in osm_range_workload),
        ("OSM", "point"): sum(len(osm_table.select(q)) for q in osm_point_workload),
    }
