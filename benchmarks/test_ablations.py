"""Ablation benchmarks for COAX's design choices (DESIGN.md section 5).

Not paper artefacts; these quantify the impact of the choices the paper
makes implicitly: margin estimation, outlier-index structure, bucketing
parameters and the linear-vs-spline model extension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import execute_workload
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig
from repro.fd.model import SplineFDModel

MARGIN_SETTINGS = {
    "robust-3sigma": DetectionConfig(margin_method="robust", margin_sigmas=3.0),
    "robust-2sigma": DetectionConfig(margin_method="robust", margin_sigmas=2.0),
    "quantile-90": DetectionConfig(margin_method="quantile", target_coverage=0.9),
}

OUTLIER_KINDS = ("sorted_cell_grid", "uniform_grid", "rtree", "full_scan")

BUCKETING_SETTINGS = {
    "sample-2k-chunks-16": BucketingConfig(sample_count=2_000, bucket_chunks=16),
    "sample-10k-chunks-32": BucketingConfig(sample_count=10_000, bucket_chunks=32),
    "sample-20k-chunks-64": BucketingConfig(sample_count=20_000, bucket_chunks=64),
}


@pytest.mark.parametrize("setting", sorted(MARGIN_SETTINGS))
def test_ablation_margins(benchmark, setting, airline_table, airline_range_workload):
    config = COAXConfig(detection=MARGIN_SETTINGS[setting])
    index = COAXIndex(airline_table, config=config)
    benchmark(execute_workload, index, airline_range_workload)
    benchmark.extra_info["setting"] = setting
    benchmark.extra_info["n_groups"] = len(index.groups)
    benchmark.extra_info["primary_ratio"] = round(index.primary_ratio, 3)
    # Every margin policy must still detect the airline dependencies.
    assert len(index.groups) >= 1


@pytest.mark.parametrize("kind", OUTLIER_KINDS)
def test_ablation_outlier_index(benchmark, kind, airline_table, airline_range_workload):
    index = COAXIndex(airline_table, config=COAXConfig(outlier_index=kind))
    total = benchmark(execute_workload, index, airline_range_workload)
    benchmark.extra_info["outlier_index"] = kind
    benchmark.extra_info["outlier_dir_bytes"] = index.memory_breakdown()["outlier"]
    assert total == sum(len(airline_table.select(q)) for q in airline_range_workload)


@pytest.mark.parametrize("setting", sorted(BUCKETING_SETTINGS))
def test_ablation_bucketing(benchmark, setting, airline_table):
    detection = DetectionConfig(bucketing=BUCKETING_SETTINGS[setting], monte_carlo_rounds=4)

    index = benchmark(lambda: COAXIndex(airline_table, config=COAXConfig(detection=detection)))
    benchmark.extra_info["setting"] = setting
    benchmark.extra_info["n_groups"] = len(index.groups)
    benchmark.extra_info["primary_ratio"] = round(index.primary_ratio, 3)
    # Even the cheapest bucketing configuration finds both airline groups.
    assert len(index.groups) == 2


@pytest.mark.parametrize("epsilon", (10.0, 30.0, 100.0))
def test_ablation_spline_capacity(benchmark, epsilon):
    """Spline extension: segment count follows the Theorem 7.4 trend."""
    rng = np.random.default_rng(9)
    x = np.sort(rng.uniform(0.0, 1000.0, size=20_000))
    y = 0.002 * x**2 + 0.5 * x + rng.normal(0.0, 3.0, size=20_000)

    spline = benchmark(SplineFDModel.fit, x, y, epsilon=epsilon)

    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["n_segments"] = spline.n_segments
    benchmark.extra_info["model_bytes"] = spline.memory_bytes()
    assert float(np.mean(spline.within_margin(x, y))) > 0.95
