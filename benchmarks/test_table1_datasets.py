"""Table 1 — dataset characteristics and COAX build cost.

Regenerates the rows of Table 1 (dimensions, correlated dimensions, indexed
dimensions, primary-index ratio) on the synthetic stand-in datasets and
benchmarks the full COAX build (soft-FD detection + partition + index
construction) for each.
"""

from __future__ import annotations

import pytest

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig


@pytest.mark.parametrize("dataset", ["Airline", "OSM"])
def test_table1_build(benchmark, dataset, airline_table, osm_table):
    table = airline_table if dataset == "Airline" else osm_table
    index = benchmark(lambda: COAXIndex(table, config=COAXConfig()))
    report = index.build_report

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["n_rows"] = table.n_rows
    benchmark.extra_info["dimensions"] = table.n_dims
    benchmark.extra_info["correlated_dims"] = [group.n_attributes for group in report.groups]
    benchmark.extra_info["indexed_dims"] = len(report.indexed_dimensions)
    benchmark.extra_info["primary_ratio"] = round(report.primary_ratio, 3)

    if dataset == "Airline":
        # Paper Table 1: 8 dims, correlated groups (3, 3), 2-4 indexed, 92% ratio.
        assert table.n_dims == 8
        assert sorted(group.n_attributes for group in report.groups) == [3, 3]
        assert 2 <= len(report.indexed_dimensions) <= 4
        assert 0.85 <= report.primary_ratio <= 0.95
    else:
        # Paper Table 1: 4 dims, one correlated pair, 3 indexed, 73% ratio.
        assert table.n_dims == 4
        assert [group.n_attributes for group in report.groups] == [2]
        assert len(report.indexed_dimensions) == 3
        assert 0.65 <= report.primary_ratio <= 0.85
