"""Figure 4a — page-length distribution of the 2D grid layout.

Benchmarks the construction of a 2D uniform grid over the clustered OSM
coordinates and records the occupancy histogram statistics; asserts the
long-tailed page-size distribution the paper plots, and that quantile
boundaries reduce the spread (Figure 4b vs 4c).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes.grid_file import SortedCellGridIndex
from repro.indexes.uniform_grid import UniformGridIndex

CELLS_PER_DIM = 24
DIMS = ("Latitude", "Longitude")


def test_fig4a_uniform_grid_page_lengths(benchmark, osm_table):
    index = benchmark(
        lambda: UniformGridIndex(osm_table, cells_per_dim=CELLS_PER_DIM, dimensions=DIMS)
    )
    sizes = index.cell_sizes()
    mean_size = sizes.mean()

    benchmark.extra_info["n_cells"] = int(len(sizes))
    benchmark.extra_info["empty_cells"] = int(np.sum(sizes == 0))
    benchmark.extra_info["max_page"] = int(sizes.max())
    benchmark.extra_info["std_page"] = float(sizes.std())

    # The clustered data makes the distribution heavily skewed: many (near)
    # empty cells and a few pages an order of magnitude above the mean.
    assert np.sum(sizes <= mean_size / 2) > 0.3 * len(sizes)
    assert sizes.max() > 5 * mean_size


def test_fig4c_quantile_boundaries_reduce_spread(benchmark, osm_table):
    uniform = UniformGridIndex(osm_table, cells_per_dim=CELLS_PER_DIM, dimensions=DIMS)
    quantile = benchmark(
        lambda: SortedCellGridIndex(
            osm_table,
            cells_per_dim=CELLS_PER_DIM,
            dimensions=DIMS + ("Id",),
            sort_dimension="Id",
        )
    )
    uniform_sizes = uniform.cell_sizes()
    quantile_sizes = quantile.cell_sizes()

    benchmark.extra_info["uniform_std"] = float(uniform_sizes.std())
    benchmark.extra_info["quantile_std"] = float(quantile_sizes.std())

    assert quantile_sizes.std() < uniform_sizes.std()
