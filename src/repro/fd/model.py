"""Soft-FD prediction models.

A soft-FD model ``psi_hat : C_x -> C_d`` predicts the value of a dependent
attribute from the predictor attribute, together with lower/upper error
margins ``eps_LB``/``eps_UB`` such that every record in the primary index
satisfies ``psi_hat(p_x) - eps_LB <= p_d <= psi_hat(p_x) + eps_UB``
(Equation 1).  Query translation (Section 4) and the inlier/outlier split
(Algorithm 1) are both expressed in terms of this interface.

Two concrete models are provided:

* :class:`LinearFDModel` — the linear model the paper evaluates;
* :class:`SplineFDModel` — the piecewise-linear (spline) extension the paper
  describes as future work and analyses in Theorem 7.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.data.predicates import Interval

__all__ = ["FDModel", "LinearFDModel", "SplineFDModel", "SplineSegment"]


@runtime_checkable
class FDModel(Protocol):
    """Interface every soft-FD model implements."""

    #: Lower error margin (eps_LB >= 0).
    eps_lb: float
    #: Upper error margin (eps_UB >= 0).
    eps_ub: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted dependent values psi_hat(x)."""
        ...

    def residuals(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Displacements ``y - psi_hat(x)`` (Algorithm 1's displacement array)."""
        ...

    def within_margin(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean mask of records inside the margin band (primary-index records)."""
        ...

    def dependent_interval(self, x_interval: Interval) -> Interval:
        """Range of dependent values an inlier can take when x is in ``x_interval``."""
        ...

    def predictor_interval(self, y_interval: Interval) -> Interval:
        """Range of predictor values an inlier can take when y is in ``y_interval``."""
        ...

    def memory_bytes(self) -> int:
        """Bytes needed to store the model parameters."""
        ...


def _as_interval(low: float, high: float) -> Interval:
    """Build an interval, swapping the bounds if a negative slope reversed them."""
    if low > high:
        low, high = high, low
    return Interval(low, high)


@dataclass(frozen=True)
class LinearFDModel:
    """Linear soft-FD model ``psi_hat(x) = slope * x + intercept`` with margins."""

    slope: float
    intercept: float
    eps_lb: float
    eps_ub: float

    def __post_init__(self) -> None:
        if self.eps_lb < 0 or self.eps_ub < 0:
            raise ValueError("margins must be non-negative")
        if math.isnan(self.slope) or math.isnan(self.intercept):
            raise ValueError("model parameters must not be NaN")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """psi_hat(x) = slope * x + intercept."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    def residuals(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """y - psi_hat(x)."""
        return np.asarray(y, dtype=np.float64) - self.predict(x)

    def within_margin(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mask of records with ``-eps_LB <= residual <= eps_UB``."""
        residuals = self.residuals(x, y)
        return (residuals >= -self.eps_lb) & (residuals <= self.eps_ub)

    # ------------------------------------------------------------------
    # Query translation (Section 4, Equation 2)
    # ------------------------------------------------------------------
    def dependent_interval(self, x_interval: Interval) -> Interval:
        """Possible dependent values for inliers with x in ``x_interval``.

        For a positive slope this is
        ``[psi_hat(x_low) - eps_LB, psi_hat(x_high) + eps_UB]``; a negative
        slope flips the endpoints.
        """
        if x_interval.is_empty:
            return Interval.empty()
        low_pred = self._predict_scalar(x_interval.low)
        high_pred = self._predict_scalar(x_interval.high)
        band_low = min(low_pred, high_pred) - self.eps_lb
        band_high = max(low_pred, high_pred) + self.eps_ub
        return Interval(band_low, band_high)

    def predictor_interval(self, y_interval: Interval) -> Interval:
        """Possible predictor values for inliers with y in ``y_interval``.

        Inliers satisfy ``psi_hat(x) in [y - eps_UB, y + eps_LB]``; inverting
        the linear map gives the x-range.  A (near-)zero slope carries no
        information about x, so the unbounded interval is returned and the
        caller falls back to the direct constraints on x.
        """
        if y_interval.is_empty:
            return Interval.empty()
        if abs(self.slope) < 1e-12:
            return Interval.unbounded()
        lo_target = (-math.inf if math.isinf(y_interval.low) and y_interval.low < 0
                     else y_interval.low - self.eps_ub)
        hi_target = (math.inf if math.isinf(y_interval.high) and y_interval.high > 0
                     else y_interval.high + self.eps_lb)
        x_at_lo = self._invert_scalar(lo_target)
        x_at_hi = self._invert_scalar(hi_target)
        return _as_interval(x_at_lo, x_at_hi)

    def predictor_intervals(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`predictor_interval` over a batch of y-intervals.

        Takes parallel lower/upper bound arrays and returns the translated
        predictor bound arrays, computing the same IEEE operations as the
        scalar path so batch query translation stays bit-identical to the
        sequential one.  Empty inputs (``low > high``) come back as the
        canonical empty interval ``(+inf, -inf)``.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if abs(self.slope) < 1e-12:
            # A flat model carries no information about x (scalar path
            # returns the unbounded interval), except for empty inputs.
            out_low = np.where(lows > highs, np.inf, -np.inf)
            out_high = np.where(lows > highs, -np.inf, np.inf)
            return out_low, out_high
        lo_target = np.where(np.isneginf(lows), -np.inf, lows - self.eps_ub)
        hi_target = np.where(np.isposinf(highs), np.inf, highs + self.eps_lb)
        # (±inf - intercept) / slope keeps the sign bookkeeping of
        # ``_invert_scalar`` for free under IEEE arithmetic.
        x_at_lo = (lo_target - self.intercept) / self.slope
        x_at_hi = (hi_target - self.intercept) / self.slope
        out_low = np.minimum(x_at_lo, x_at_hi)
        out_high = np.maximum(x_at_lo, x_at_hi)
        empty = lows > highs
        if empty.any():
            out_low = np.where(empty, np.inf, out_low)
            out_high = np.where(empty, -np.inf, out_high)
        return out_low, out_high

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Four float64 parameters."""
        return 4 * 8

    def with_margins(self, eps_lb: float, eps_ub: float) -> "LinearFDModel":
        """Copy of the model with different margins."""
        return LinearFDModel(self.slope, self.intercept, eps_lb, eps_ub)

    def _predict_scalar(self, x: float) -> float:
        if math.isinf(x):
            if abs(self.slope) < 1e-12:
                return self.intercept
            return math.inf if (x > 0) == (self.slope > 0) else -math.inf
        return self.slope * x + self.intercept

    def _invert_scalar(self, y: float) -> float:
        if math.isinf(y):
            return math.inf if (y > 0) == (self.slope > 0) else -math.inf
        return (y - self.intercept) / self.slope


@dataclass(frozen=True)
class SplineSegment:
    """One piece of a piecewise-linear soft-FD model, valid on [x_low, x_high)."""

    x_low: float
    x_high: float
    slope: float
    intercept: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Linear prediction of this segment (callers handle segment routing)."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


class SplineFDModel:
    """Piecewise-linear soft-FD model (the paper's linear-spline extension).

    Segments partition the predictor range; each carries its own linear
    model, while the margins are shared.  Used for dependencies that a
    single line cannot model within a small margin — Theorem 7.4 predicts
    the number of segments needed.
    """

    def __init__(self, segments: Sequence[SplineSegment], eps_lb: float, eps_ub: float) -> None:
        if not segments:
            raise ValueError("a spline model needs at least one segment")
        if eps_lb < 0 or eps_ub < 0:
            raise ValueError("margins must be non-negative")
        ordered = sorted(segments, key=lambda segment: segment.x_low)
        for previous, current in zip(ordered, ordered[1:]):
            if current.x_low < previous.x_high - 1e-9:
                raise ValueError("spline segments must not overlap")
        self._segments: Tuple[SplineSegment, ...] = tuple(ordered)
        self._boundaries = np.array([segment.x_low for segment in ordered], dtype=np.float64)
        self.eps_lb = float(eps_lb)
        self.eps_ub = float(eps_ub)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epsilon: float,
        min_segment_points: int = 8,
    ) -> "SplineFDModel":
        """Greedy left-to-right segmentation with maximum residual ``epsilon``.

        Mirrors the segmentation analysed in Theorem 7.4: a segment grows
        until the best-fit line for its points can no longer keep every
        point within ``epsilon``, then a new segment starts.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be one-dimensional arrays of equal length")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if len(x) == 0:
            raise ValueError("cannot fit a spline to empty data")
        order = np.argsort(x, kind="stable")
        xs = x[order]
        ys = y[order]
        segments: List[SplineSegment] = []
        start = 0
        n = len(xs)
        while start < n:
            end = min(start + max(min_segment_points, 2), n)
            best = _fit_segment(xs[start:end], ys[start:end])
            # Grow the segment geometrically while it still fits, then back off.
            while end < n:
                candidate_end = min(n, max(end + 1, int((end - start) * 1.5) + start))
                candidate = _fit_segment(xs[start:candidate_end], ys[start:candidate_end])
                if candidate[2] <= epsilon:
                    end = candidate_end
                    best = candidate
                else:
                    break
            slope, intercept, _ = best
            x_low = float(xs[start])
            x_high = float(xs[end - 1]) if end - 1 > start else x_low
            segments.append(SplineSegment(x_low, max(x_high, x_low), slope, intercept))
            start = end
        model = cls(segments, eps_lb=epsilon, eps_ub=epsilon)
        return model

    # ------------------------------------------------------------------
    # FDModel interface
    # ------------------------------------------------------------------
    @property
    def segments(self) -> Tuple[SplineSegment, ...]:
        """The ordered spline segments."""
        return self._segments

    @property
    def n_segments(self) -> int:
        """Number of linear pieces."""
        return len(self._segments)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Piecewise-linear prediction."""
        x = np.asarray(x, dtype=np.float64)
        segment_ids = np.clip(
            np.searchsorted(self._boundaries, x, side="right") - 1, 0, len(self._segments) - 1
        )
        slopes = np.array([segment.slope for segment in self._segments])
        intercepts = np.array([segment.intercept for segment in self._segments])
        return slopes[segment_ids] * x + intercepts[segment_ids]

    def residuals(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """y - psi_hat(x)."""
        return np.asarray(y, dtype=np.float64) - self.predict(x)

    def within_margin(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mask of records with ``-eps_LB <= residual <= eps_UB``."""
        residuals = self.residuals(x, y)
        return (residuals >= -self.eps_lb) & (residuals <= self.eps_ub)

    def dependent_interval(self, x_interval: Interval) -> Interval:
        """Hull of the per-segment dependent bands overlapping ``x_interval``."""
        if x_interval.is_empty:
            return Interval.empty()
        hull = Interval.empty()
        for segment in self._segments:
            seg_interval = Interval(segment.x_low, segment.x_high)
            overlap = seg_interval.intersect(x_interval)
            if overlap.is_empty and not x_interval.is_unbounded:
                # The query range may extend beyond the trained span; clamp to
                # the nearest segment so extrapolation is still defined.
                continue
            effective = overlap if not overlap.is_empty else seg_interval
            linear = LinearFDModel(segment.slope, segment.intercept, self.eps_lb, self.eps_ub)
            hull = hull.union_hull(linear.dependent_interval(effective))
        if hull.is_empty:
            # Query range falls entirely outside the trained span: extrapolate
            # with the nearest segment.
            nearest = self._segments[0] if x_interval.high < self._segments[0].x_low else self._segments[-1]
            linear = LinearFDModel(nearest.slope, nearest.intercept, self.eps_lb, self.eps_ub)
            hull = linear.dependent_interval(x_interval)
        return hull

    def predictor_interval(self, y_interval: Interval) -> Interval:
        """Hull of predictor ranges whose band can overlap ``y_interval``."""
        if y_interval.is_empty:
            return Interval.empty()
        hull = Interval.empty()
        for segment in self._segments:
            linear = LinearFDModel(segment.slope, segment.intercept, self.eps_lb, self.eps_ub)
            candidate = linear.predictor_interval(y_interval)
            restricted = candidate.intersect(Interval(segment.x_low, segment.x_high))
            if not restricted.is_empty:
                hull = hull.union_hull(restricted)
        if hull.is_empty:
            return Interval.empty()
        return hull

    def memory_bytes(self) -> int:
        """Four float64 values per segment plus the two shared margins."""
        return len(self._segments) * 4 * 8 + 2 * 8


def _fit_segment(xs: np.ndarray, ys: np.ndarray) -> Tuple[float, float, float]:
    """Least-squares line for a segment plus its maximum absolute residual."""
    if len(xs) == 1 or xs.std() == 0.0:
        intercept = float(ys.mean())
        return 0.0, intercept, float(np.abs(ys - intercept).max(initial=0.0))
    slope, intercept = np.polyfit(xs, ys, deg=1)
    residuals = ys - (slope * xs + intercept)
    return float(slope), float(intercept), float(np.abs(residuals).max(initial=0.0))
