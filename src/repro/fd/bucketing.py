"""Grid bucketing of a data sample (the training-set construction of Algorithm 1).

To keep soft-FD detection cheap, COAX does not regress over the full key
set.  It draws a sample, overlays a two-dimensional grid on each candidate
attribute pair, discards sparse cells, and uses the centres of the dense
cells — weighted by their counts — as the regression training set
(Section 5, Figure 3).  Keeping the populated grid around also lets new
records be absorbed later without rebuilding it from scratch, which is how
the paper argues updates can be supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["BucketingConfig", "BucketGrid", "build_training_set"]


@dataclass(frozen=True)
class BucketingConfig:
    """Tuning knobs of Algorithm 1's sampling and bucketing step."""

    #: Number of records sampled from the dataset (``sample_count``).
    sample_count: int = 20_000
    #: Number of grid divisions per axis (``bucket_chunks``).
    bucket_chunks: int = 64
    #: Minimum record count for a cell to contribute training points
    #: (``threshold``).  Expressed as an absolute count.
    cell_threshold: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample_count <= 0:
            raise ValueError("sample_count must be positive")
        if self.bucket_chunks < 2:
            raise ValueError("bucket_chunks must be at least 2")
        if self.cell_threshold < 1:
            raise ValueError("cell_threshold must be at least 1")


class BucketGrid:
    """A two-dimensional count grid over an (x, y) attribute pair.

    The grid is built once from a sample and can absorb more records later
    (:meth:`insert`), which keeps the training structure usable when the
    underlying table grows.
    """

    def __init__(
        self,
        x_edges: np.ndarray,
        y_edges: np.ndarray,
    ) -> None:
        x_edges = np.asarray(x_edges, dtype=np.float64)
        y_edges = np.asarray(y_edges, dtype=np.float64)
        if len(x_edges) < 2 or len(y_edges) < 2:
            raise ValueError("grids need at least one cell per axis")
        self._x_edges = x_edges
        self._y_edges = y_edges
        self._counts = np.zeros((len(x_edges) - 1, len(y_edges) - 1), dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sample(cls, x: np.ndarray, y: np.ndarray, bucket_chunks: int) -> "BucketGrid":
        """Grid spanning the sample range with ``bucket_chunks`` cells per axis."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        x_edges = _edges(x, bucket_chunks)
        y_edges = _edges(y, bucket_chunks)
        grid = cls(x_edges, y_edges)
        grid.insert(x, y)
        return grid

    def insert(self, x: np.ndarray, y: np.ndarray) -> None:
        """Add records to the counts (values outside the range clamp to edge cells)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError("x and y must have the same length")
        if len(x) == 0:
            return
        xi = np.clip(np.searchsorted(self._x_edges, x, side="right") - 1, 0, self.shape[0] - 1)
        yi = np.clip(np.searchsorted(self._y_edges, y, side="right") - 1, 0, self.shape[1] - 1)
        np.add.at(self._counts, (xi, yi), 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """(cells along x, cells along y)."""
        return self._counts.shape  # type: ignore[return-value]

    @property
    def counts(self) -> np.ndarray:
        """The raw per-cell counts (not a copy)."""
        return self._counts

    @property
    def total_count(self) -> int:
        """Number of records absorbed so far."""
        return int(self._counts.sum())

    def cell_centres(self) -> Tuple[np.ndarray, np.ndarray]:
        """Midpoints of the cells along x and along y."""
        x_mid = (self._x_edges[:-1] + self._x_edges[1:]) / 2.0
        y_mid = (self._y_edges[:-1] + self._y_edges[1:]) / 2.0
        return x_mid, y_mid

    def dense_cell_centres(self, threshold: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Centres and counts of cells whose count exceeds ``threshold``.

        Returns ``(x_centres, y_centres, weights)`` — the weighted training
        set of Algorithm 1 (each dense cell contributes its centre once with
        weight equal to its count, which is equivalent to repeating it
        ``count`` times as the pseudo-code does, but cheaper).
        """
        dense = np.argwhere(self._counts > threshold)
        if len(dense) == 0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
        x_mid, y_mid = self.cell_centres()
        weights = self._counts[dense[:, 0], dense[:, 1]].astype(np.float64)
        return x_mid[dense[:, 0]], y_mid[dense[:, 1]], weights

    def dense_fraction(self, threshold: int) -> float:
        """Fraction of absorbed records falling in dense cells."""
        total = self.total_count
        if total == 0:
            return 0.0
        dense_mass = int(self._counts[self._counts > threshold].sum())
        return dense_mass / total

    def memory_bytes(self) -> int:
        """Bytes used by the counts and the edge arrays."""
        return int(self._counts.nbytes + self._x_edges.nbytes + self._y_edges.nbytes)


def build_training_set(
    x: np.ndarray,
    y: np.ndarray,
    config: BucketingConfig,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, BucketGrid]:
    """Run the sampling + bucketing step of Algorithm 1 for one attribute pair.

    Returns ``(x_train, y_train, weights, grid)`` where the training points
    are dense-cell centres weighted by their counts.  When no cell reaches
    the threshold (tiny or extremely scattered samples), the raw sample is
    returned unweighted so the caller can still attempt a fit.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be one-dimensional arrays of equal length")
    n = len(x)
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty, empty, BucketGrid(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
    sample_size = min(config.sample_count, n)
    if sample_size < n:
        sample_ids = rng.choice(n, size=sample_size, replace=False)
        x_sample, y_sample = x[sample_ids], y[sample_ids]
    else:
        x_sample, y_sample = x, y
    grid = BucketGrid.from_sample(x_sample, y_sample, config.bucket_chunks)
    x_train, y_train, weights = grid.dense_cell_centres(config.cell_threshold)
    if len(x_train) < 2:
        # Not enough dense structure; fall back to the raw sample.
        return x_sample, y_sample, np.ones_like(x_sample), grid
    return x_train, y_train, weights, grid


def _edges(values: np.ndarray, bucket_chunks: int) -> np.ndarray:
    """Equi-width edges spanning the sample (Algorithm 1 uses max/chunks widths)."""
    if len(values) == 0:
        return np.linspace(0.0, 1.0, bucket_chunks + 1)
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        high = low + 1.0
    return np.linspace(low, high, bucket_chunks + 1)
