"""Soft-FD detection (Section 5).

COAX "recursively consider[s] unique pairs of attributes and use[s] a Monte
Carlo sampler to check whether a linear model fits the training records".
This module implements that check: for a candidate pair it runs the
bucketing step of Algorithm 1, fits a Bayesian linear model to the weighted
dense-cell centres, estimates margins, validates the fit stability with a
Monte Carlo resampling test, and scores the resulting soft FD by how large
a fraction of the data the primary index would retain and how narrow the
margin band is relative to the dependent attribute's range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.data.table import Table
from repro.fd.bayesian import BayesianLinearRegression
from repro.fd.bucketing import BucketingConfig, build_training_set
from repro.fd.margins import estimate_margins, estimate_margins_robust
from repro.fd.model import FDModel, LinearFDModel, SplineFDModel
from repro.stats.csm import build_centre_sequence

__all__ = ["DetectionConfig", "FDCandidate", "evaluate_pair", "detect_soft_fds"]


@dataclass(frozen=True)
class DetectionConfig:
    """Tuning knobs of the soft-FD detector."""

    bucketing: BucketingConfig = field(default_factory=BucketingConfig)
    #: How margins are derived from the residuals: "robust" (MAD-based,
    #: outlier-resistant, the default) or "quantile" (cover target_coverage
    #: of all residuals, the right choice when there are few outliers).
    margin_method: str = "robust"
    #: Number of robust standard deviations the margins span ("robust" method).
    margin_sigmas: float = 3.0
    #: Fraction of records the margins should cover ("quantile" method).
    target_coverage: float = 0.9
    #: Minimum fraction of records inside the margins for the FD to be usable.
    min_inlier_fraction: float = 0.6
    #: Maximum margin band width as a fraction of the dependent attribute's
    #: range; wider bands mean the "dependency" barely narrows the scan.
    max_relative_band: float = 0.35
    #: Number of Monte Carlo resampling rounds used to test fit stability.
    monte_carlo_rounds: int = 8
    #: Maximum allowed coefficient of variation of the slope across rounds.
    max_slope_variation: float = 0.25
    #: Force symmetric margins (eps_LB == eps_UB).
    symmetric_margins: bool = False
    #: When the linear model is rejected, also try a piecewise-linear
    #: (spline) soft-FD model — the paper's non-linear extension.
    allow_spline: bool = False
    #: Maximum number of spline segments before the dependency is considered
    #: too irregular to be worth modelling.
    max_spline_segments: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.margin_method not in ("robust", "quantile"):
            raise ValueError("margin_method must be 'robust' or 'quantile'")
        if self.margin_sigmas <= 0:
            raise ValueError("margin_sigmas must be positive")
        if not 0.0 < self.target_coverage <= 1.0:
            raise ValueError("target_coverage must be in (0, 1]")
        if not 0.0 <= self.min_inlier_fraction <= 1.0:
            raise ValueError("min_inlier_fraction must be in [0, 1]")
        if self.monte_carlo_rounds < 1:
            raise ValueError("monte_carlo_rounds must be at least 1")


@dataclass(frozen=True)
class FDCandidate:
    """A detected (or rejected) soft functional dependency predictor -> dependent."""

    predictor: str
    dependent: str
    model: FDModel
    #: Fraction of the evaluation sample inside the margin band.
    inlier_fraction: float
    #: Margin band width divided by the dependent attribute's range.
    relative_band: float
    #: Coefficient of variation of the slope across Monte Carlo rounds.
    slope_variation: float
    #: True when every acceptance criterion passed.
    accepted: bool

    @property
    def score(self) -> float:
        """Composite quality score in [0, 1]: high coverage and a narrow band."""
        narrowness = max(0.0, 1.0 - self.relative_band)
        return self.inlier_fraction * narrowness


def evaluate_pair(
    x: np.ndarray,
    y: np.ndarray,
    *,
    predictor: str,
    dependent: str,
    config: Optional[DetectionConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> FDCandidate:
    """Evaluate a single candidate soft FD ``predictor -> dependent``.

    Always returns a candidate; rejection reasons are reflected in the
    ``accepted`` flag and the recorded metrics so callers (and tests) can
    inspect why a pair was rejected.
    """
    config = config if config is not None else DetectionConfig()
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)

    x_train, y_train, weights, grid = build_training_set(x, y, config.bucketing, rng)
    regression = BayesianLinearRegression()
    posterior = regression.fit(x_train, y_train, weights)

    slope_variation = _monte_carlo_slope_variation(
        x_train, y_train, weights, posterior.slope, config, rng
    )

    # Margins come from the residuals of the *sample* (not just dense-cell
    # centres): Figure 3 draws them from the density of records around the
    # fitted line.
    sample_size = min(config.bucketing.sample_count, len(x))
    if sample_size < len(x):
        sample_ids = rng.choice(len(x), size=sample_size, replace=False)
        x_eval, y_eval = x[sample_ids], y[sample_ids]
    else:
        x_eval, y_eval = x, y
    base_model = LinearFDModel(posterior.slope, posterior.intercept, 0.0, 0.0)
    residuals = base_model.residuals(x_eval, y_eval)
    if config.margin_method == "robust":
        margins = estimate_margins_robust(
            residuals,
            n_sigmas=config.margin_sigmas,
            symmetric=config.symmetric_margins,
        )
    else:
        margins = estimate_margins(
            residuals,
            target_coverage=config.target_coverage,
            symmetric=config.symmetric_margins,
        )
    model = base_model.with_margins(margins.eps_lb, margins.eps_ub)

    inlier_fraction = float(np.mean(model.within_margin(x_eval, y_eval))) if len(x_eval) else 0.0
    y_range = float(y_eval.max() - y_eval.min()) if len(y_eval) else 0.0
    relative_band = (margins.width / y_range) if y_range > 0 else 1.0

    accepted = (
        inlier_fraction >= config.min_inlier_fraction
        and relative_band <= config.max_relative_band
        and slope_variation <= config.max_slope_variation
        and abs(model.slope) > 1e-12
    )
    candidate = FDCandidate(
        predictor=predictor,
        dependent=dependent,
        model=model,
        inlier_fraction=inlier_fraction,
        relative_band=relative_band,
        slope_variation=slope_variation,
        accepted=accepted,
    )
    if not accepted and config.allow_spline:
        spline_candidate = _evaluate_spline(
            x_eval, y_eval, predictor=predictor, dependent=dependent, config=config
        )
        if spline_candidate is not None and spline_candidate.score > candidate.score:
            return spline_candidate
    return candidate


def _evaluate_spline(
    x_eval: np.ndarray,
    y_eval: np.ndarray,
    *,
    predictor: str,
    dependent: str,
    config: DetectionConfig,
) -> Optional[FDCandidate]:
    """Try a piecewise-linear soft-FD model for a non-linear dependency.

    The margin comes from the noise of the data around its *local* trend:
    the CSM centre sequence smooths the dependency, and a robust scale of
    the deviations from the per-interval centres gives the epsilon a spline
    needs to keep the in-pattern records.  The candidate is rejected when
    the spline needs too many segments (no usable structure) or when the
    band stays too wide relative to the dependent range.
    """
    if len(x_eval) < 16:
        return None
    sequence = build_centre_sequence(x_eval, y_eval, n_intervals=min(256, max(16, len(x_eval) // 50)))
    if sequence.n_intervals < 4:
        return None
    # Deviation of every record from its interval centre = local noise.
    interval_ids = np.clip(
        np.searchsorted(sequence.positions, x_eval, side="right") - 1, 0, sequence.n_intervals - 1
    )
    local_residuals = y_eval - sequence.centres[interval_ids]
    margins = estimate_margins_robust(
        local_residuals, n_sigmas=config.margin_sigmas, symmetric=True
    )
    epsilon = max(margins.eps_ub, 1e-9)
    try:
        spline = SplineFDModel.fit(x_eval, y_eval, epsilon=epsilon)
    except ValueError:
        return None
    if spline.n_segments > config.max_spline_segments:
        return None
    inlier_fraction = float(np.mean(spline.within_margin(x_eval, y_eval)))
    y_range = float(y_eval.max() - y_eval.min()) if len(y_eval) else 0.0
    relative_band = ((spline.eps_lb + spline.eps_ub) / y_range) if y_range > 0 else 1.0
    accepted = (
        inlier_fraction >= config.min_inlier_fraction
        and relative_band <= config.max_relative_band
    )
    if not accepted:
        return None
    return FDCandidate(
        predictor=predictor,
        dependent=dependent,
        model=spline,
        inlier_fraction=inlier_fraction,
        relative_band=relative_band,
        slope_variation=0.0,
        accepted=True,
    )


def detect_soft_fds(
    table: Table,
    *,
    config: Optional[DetectionConfig] = None,
    columns: Optional[Sequence[str]] = None,
) -> List[FDCandidate]:
    """Evaluate every unordered attribute pair of ``table`` in both directions.

    For each pair {A, B}, both A -> B and B -> A are evaluated and only the
    better-scoring accepted direction is kept, since indexing either
    attribute lets the other be predicted.  Returns the accepted candidates
    sorted by descending score.
    """
    config = config if config is not None else DetectionConfig()
    names = list(columns) if columns is not None else list(table.schema)
    rng = np.random.default_rng(config.seed)
    accepted: List[FDCandidate] = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a, b = names[i], names[j]
            forward = evaluate_pair(
                table.column(a), table.column(b),
                predictor=a, dependent=b, config=config, rng=rng,
            )
            backward = evaluate_pair(
                table.column(b), table.column(a),
                predictor=b, dependent=a, config=config, rng=rng,
            )
            best = _better_candidate(forward, backward)
            if best is not None and best.accepted:
                accepted.append(best)
    accepted.sort(key=lambda candidate: candidate.score, reverse=True)
    return accepted


def _better_candidate(
    forward: FDCandidate, backward: FDCandidate
) -> Optional[FDCandidate]:
    """Pick the better direction of a pair (None when neither is accepted)."""
    options = [c for c in (forward, backward) if c.accepted]
    if not options:
        return None
    return max(options, key=lambda candidate: candidate.score)


def _monte_carlo_slope_variation(
    x_train: np.ndarray,
    y_train: np.ndarray,
    weights: np.ndarray,
    reference_slope: float,
    config: DetectionConfig,
    rng: np.random.Generator,
) -> float:
    """Coefficient of variation of the slope across bootstrap resamples.

    This is the "Monte Carlo sampler [that] check[s] whether a linear model
    fits the training records": if the slope changes wildly between random
    subsets of the training set, there is no stable linear relationship.
    """
    n = len(x_train)
    if n < 4:
        return float("inf") if n == 0 else 0.0
    slopes: List[float] = []
    subset_size = max(4, n // 2)
    for _ in range(config.monte_carlo_rounds):
        subset = rng.choice(n, size=subset_size, replace=True)
        posterior = BayesianLinearRegression().fit(
            x_train[subset], y_train[subset], weights[subset]
        )
        slopes.append(posterior.slope)
    slopes_array = np.array(slopes)
    scale = max(abs(reference_slope), abs(float(slopes_array.mean())), 1e-12)
    return float(slopes_array.std() / scale)
