"""Grouping correlated attributes and selecting predictors.

The final step of Section 5: "we merge all groups that have an attribute in
common and pick one attribute in each group to be the predictor responsible
for estimating the remaining attributes in its group."  Pairs are merged
with a union-find structure; inside each connected component the predictor
is the attribute that predicts the other members best, and a model is
(re)fitted from the chosen predictor to every other member so the group is
always a star centred on its predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fd.detection import FDCandidate
from repro.fd.model import FDModel

__all__ = [
    "FDGroup",
    "UnionFind",
    "build_groups",
    "per_model_inlier_masks",
    "combined_inlier_mask",
]


class UnionFind:
    """Minimal union-find over hashable items (attribute names)."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        """Register an item as its own singleton set."""
        if item not in self._parent:
            self._parent[item] = item

    def find(self, item: str) -> str:
        """Representative of the set containing ``item`` (with path compression)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def components(self) -> List[List[str]]:
        """All disjoint sets as lists of their members."""
        groups: Dict[str, List[str]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return [sorted(members) for members in groups.values()]


@dataclass(frozen=True)
class FDGroup:
    """One group of correlated attributes centred on a predictor.

    ``models`` maps every dependent attribute to the soft-FD model that
    predicts it from the predictor attribute.
    """

    predictor: str
    dependents: Tuple[str, ...]
    models: Dict[str, FDModel] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [d for d in self.dependents if d not in self.models]
        if missing:
            raise ValueError(f"missing models for dependents: {missing}")
        if self.predictor in self.dependents:
            raise ValueError("the predictor cannot also be a dependent")

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes of the group, predictor first."""
        return (self.predictor,) + self.dependents

    @property
    def n_attributes(self) -> int:
        """Size of the group."""
        return 1 + len(self.dependents)

    def model_for(self, dependent: str) -> FDModel:
        """Model predicting ``dependent`` from the group's predictor."""
        try:
            return self.models[dependent]
        except KeyError as exc:
            raise KeyError(f"{dependent!r} is not a dependent of this group") from exc

    def memory_bytes(self) -> int:
        """Bytes occupied by the group's models."""
        return sum(model.memory_bytes() for model in self.models.values())

    def inlier_mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised margin check of a whole batch against this group.

        ``columns`` maps attribute names to equal-length arrays (a table, a
        delta buffer, an insert batch).  Returns the boolean mask of rows
        inside the margin band of *every* model of the group — one
        ``within_margin`` call per model instead of a Python loop per row.
        """
        predictor_values = np.asarray(columns[self.predictor], dtype=np.float64)
        mask = np.ones(len(predictor_values), dtype=bool)
        for dependent in self.dependents:
            model = self.models[dependent]
            dependent_values = np.asarray(columns[dependent], dtype=np.float64)
            mask &= model.within_margin(predictor_values, dependent_values)
        return mask


def per_model_inlier_masks(
    groups: Sequence["FDGroup"],
    columns: Mapping[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Per ``predictor->dependent`` model: mask of rows inside its margins.

    The batch-margin primitive shared by the build-time partitioner and the
    delta store's insert routing: every model is evaluated once over the
    whole batch.
    """
    masks: Dict[str, np.ndarray] = {}
    for group in groups:
        # repro-lint: allow[materialize] zero-copy for float64 ndarray/memmap input; coerces list-valued insert batches on the write path
        predictor_values = np.asarray(columns[group.predictor], dtype=np.float64)
        for dependent in group.dependents:
            model = group.model_for(dependent)
            # repro-lint: allow[materialize] zero-copy for float64 ndarray/memmap input; coerces list-valued insert batches on the write path
            dependent_values = np.asarray(columns[dependent], dtype=np.float64)
            masks[f"{group.predictor}->{dependent}"] = model.within_margin(
                predictor_values, dependent_values
            )
    return masks


def combined_inlier_mask(
    groups: Sequence["FDGroup"],
    columns: Mapping[str, np.ndarray],
    *,
    n_rows: Optional[int] = None,
) -> np.ndarray:
    """Mask of rows inside every margin of every group (primary-index rows).

    With no groups every row is an inlier, which is why ``n_rows`` may be
    passed explicitly (an empty group list cannot reveal the batch length).
    """
    if n_rows is None:
        for array in columns.values():
            n_rows = len(array)
            break
        else:
            n_rows = 0
    mask = np.ones(int(n_rows), dtype=bool)
    for group in groups:
        mask &= group.inlier_mask(columns)
    return mask


#: Callback used by :func:`build_groups` to (re)fit a model for a specific
#: directed pair.  Returns ``None`` when no acceptable model exists.
PairFitter = Callable[[str, str], Optional[FDCandidate]]


def build_groups(
    candidates: Sequence[FDCandidate],
    fit_pair: PairFitter,
) -> List[FDGroup]:
    """Merge accepted candidates into groups and pick one predictor per group.

    ``fit_pair(predictor, dependent)`` is invoked whenever a model is needed
    that is not already present among ``candidates`` (e.g. when the component
    was formed by a chain A -> B -> C and the chosen predictor is A, a model
    A -> C must be fitted).  Attributes that cannot be predicted from the
    chosen predictor with an accepted model are dropped from the group (they
    stay ordinary indexed attributes), so a group never silently degrades
    result correctness.
    """
    accepted = [c for c in candidates if c.accepted]
    if not accepted:
        return []

    union_find = UnionFind()
    by_pair: Dict[Tuple[str, str], FDCandidate] = {}
    for candidate in accepted:
        union_find.union(candidate.predictor, candidate.dependent)
        by_pair[(candidate.predictor, candidate.dependent)] = candidate

    groups: List[FDGroup] = []
    for members in union_find.components():
        if len(members) < 2:
            continue
        group = _build_single_group(members, by_pair, fit_pair)
        if group is not None:
            groups.append(group)
    groups.sort(key=lambda group: (-group.n_attributes, group.predictor))
    return groups


def _build_single_group(
    members: List[str],
    by_pair: Dict[Tuple[str, str], FDCandidate],
    fit_pair: PairFitter,
) -> Optional[FDGroup]:
    """Choose the predictor for one connected component and assemble its models."""
    best_group: Optional[FDGroup] = None
    best_score = -1.0
    for predictor in members:
        models: Dict[str, FDModel] = {}
        total_score = 0.0
        for dependent in members:
            if dependent == predictor:
                continue
            candidate = by_pair.get((predictor, dependent))
            if candidate is None or not candidate.accepted:
                candidate = fit_pair(predictor, dependent)
            if candidate is None or not candidate.accepted:
                continue
            models[dependent] = candidate.model
            total_score += candidate.score
        if not models:
            continue
        # Prefer predictors that cover more dependents; break ties by score.
        score = len(models) * 10.0 + total_score
        if score > best_score:
            best_score = score
            best_group = FDGroup(
                predictor=predictor,
                dependents=tuple(sorted(models)),
                models=models,
            )
    return best_group
