"""Error-margin estimation for soft-FD models.

The margins ``eps_LB`` and ``eps_UB`` (Equation 1) decide which records live
in the primary index and which fall to the outlier index.  The paper chooses
them from "the density of the data records around the model" (Figure 3);
we implement that as a residual-quantile rule: the margins are the smallest
asymmetric band around the fitted line that covers a target fraction of the
records.  A fixed-width alternative is available for the theory experiments
where ``eps`` is an explicit parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MarginEstimate", "estimate_margins", "estimate_margins_robust", "fixed_margins"]


@dataclass(frozen=True)
class MarginEstimate:
    """Estimated margins plus the coverage they achieve on the residual sample."""

    eps_lb: float
    eps_ub: float
    coverage: float

    @property
    def width(self) -> float:
        """Total band width (eps_LB + eps_UB)."""
        return self.eps_lb + self.eps_ub


def estimate_margins(
    residuals: np.ndarray,
    *,
    target_coverage: float = 0.9,
    symmetric: bool = False,
) -> MarginEstimate:
    """Margins covering ``target_coverage`` of the residuals.

    Asymmetric margins use the lower and upper residual quantiles so that a
    skewed residual distribution (e.g. flight delays are mostly positive)
    does not waste band width on the empty side.  ``symmetric=True`` forces
    ``eps_LB == eps_UB`` (the setting of the theoretical analysis).
    """
    residuals = np.asarray(residuals, dtype=np.float64)
    if not 0.0 < target_coverage <= 1.0:
        raise ValueError("target_coverage must be in (0, 1]")
    if len(residuals) == 0:
        return MarginEstimate(0.0, 0.0, 0.0)
    if symmetric:
        band = float(np.quantile(np.abs(residuals), target_coverage))
        eps_lb = eps_ub = band
    else:
        tail = (1.0 - target_coverage) / 2.0
        lower = float(np.quantile(residuals, tail))
        upper = float(np.quantile(residuals, 1.0 - tail))
        eps_lb = max(0.0, -lower)
        eps_ub = max(0.0, upper)
    coverage = float(np.mean((residuals >= -eps_lb) & (residuals <= eps_ub)))
    return MarginEstimate(eps_lb=eps_lb, eps_ub=eps_ub, coverage=coverage)


def estimate_margins_robust(
    residuals: np.ndarray,
    *,
    n_sigmas: float = 3.0,
    symmetric: bool = True,
) -> MarginEstimate:
    """Margins from a robust residual scale (outlier-resistant).

    The soft FDs COAX targets can have a *large* minority of outliers (the
    paper mentions 25%), which would inflate quantile-based margins: to cover
    90% of all residuals one has to swallow most of the outliers.  Instead,
    this estimator measures the noise of the records that do follow the
    dependency via the median absolute deviation (MAD), which tolerates up to
    50% contamination, and sets the margins to ``n_sigmas`` of the implied
    Gaussian scale around the robust centre.
    """
    residuals = np.asarray(residuals, dtype=np.float64)
    if n_sigmas <= 0:
        raise ValueError("n_sigmas must be positive")
    if len(residuals) == 0:
        return MarginEstimate(0.0, 0.0, 0.0)
    centre = float(np.median(residuals))
    mad = float(np.median(np.abs(residuals - centre)))
    sigma = 1.4826 * mad
    if sigma == 0.0:
        # More than half of the residuals are identical; fall back to the
        # spread of the non-zero deviations so the band is not degenerate.
        nonzero = np.abs(residuals - centre)
        nonzero = nonzero[nonzero > 0]
        sigma = float(nonzero.mean()) if len(nonzero) else 0.0
    half_width = n_sigmas * sigma
    # Inliers are residuals in [centre - half_width, centre + half_width],
    # i.e. eps_LB = half_width - centre and eps_UB = half_width + centre.
    eps_lb = max(0.0, half_width - centre)
    eps_ub = max(0.0, half_width + centre)
    if symmetric:
        eps_lb = eps_ub = max(eps_lb, eps_ub)
    coverage = float(np.mean((residuals >= -eps_lb) & (residuals <= eps_ub)))
    return MarginEstimate(eps_lb=eps_lb, eps_ub=eps_ub, coverage=coverage)


def fixed_margins(epsilon: float) -> MarginEstimate:
    """Symmetric fixed margins (used by the theory and ablation experiments)."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    return MarginEstimate(eps_lb=epsilon, eps_ub=epsilon, coverage=float("nan"))
