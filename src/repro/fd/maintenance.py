"""Drift-aware adaptive maintenance of the learned soft-FD models.

The paper's premise is that models learned at build time keep paying off at
query time.  Under a drifting insert stream that stops being true: the
linear relationship the model captured moves, the margin band no longer
covers new records, translated queries widen or miss, and the
primary/outlier split degrades.  The paper itself provides the two
ingredients to close that loop — a Bayesian regression whose posterior "can
help supporting updates on the index" (Section 5), and Equation 9's mean
first exit time of a drifting Brownian motion out of the margin band
(Theorem 7.2) — and this module wires them together:

* a :class:`ModelMonitor` per ``predictor->dependent`` model streams every
  inserted batch into a :class:`~repro.fd.bayesian.BayesianLinearRegression`
  posterior and tracks the outside-margin fraction (cheap: the delta store
  already records a per-model margin mask for every appended row) plus the
  residual drift trend of the stream;
* at every compaction the monitor turns those statistics into one of three
  refresh tiers, predicted by Equation 9
  (:func:`repro.stats.theory.mean_first_exit_time_with_drift`):

  - **reuse** — the model still fits; compaction stays the fast incremental
    fold it always was;
  - **re-estimate margins** — drift is about to push the residual walk out
    of the band (the exit capacity fell below the configured fraction of
    the driftless ``eps^2/sigma^2``), so the margins are widened from the
    observed residuals.  Widening is *monotone* (bands only grow), so every
    record already in a primary index stays inside its band — no
    re-partition is needed and correctness is untouched;
  - **refit** — the band has effectively escaped (outside fraction way
    above the build baseline, or the posterior line itself moved), so the
    model is replaced by the refreshed posterior's line with fresh margins
    and the affected rows are re-partitioned (margins may *shrink* here,
    which is only sound together with a re-partition).

:class:`MaintenanceManager` aggregates the per-model monitors behind the
two calls the index layer needs: ``observe_batch`` on the write path and
``refresh`` at compaction.  The sharded engine shares ONE manager across
all shards and applies the refreshed groups to every shard in the same
compaction, so the shards' translation semantics can never diverge.

Only :class:`~repro.fd.model.LinearFDModel` is monitored; a group using a
spline model is left untouched (its monitor always decides "reuse").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.config import MaintenanceConfig
from repro.fd.bayesian import BayesianLinearRegression
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel
from repro.stats.theory import (
    expected_keys_per_segment,
    mean_first_exit_time_with_drift,
)

__all__ = [
    "ModelMonitor",
    "MaintenanceManager",
    "MaintenanceOutcome",
    "RefreshDecision",
    "REUSE",
    "REMARGIN",
    "REFIT",
]

#: The three refresh tiers, in increasing order of invasiveness.
REUSE = "reuse"
REMARGIN = "remargin"
REFIT = "refit"

#: Minimum *accepted* (near-band) observations before drift/posterior
#: statistics are trusted; below this only the outside fraction can act.
_MIN_TREND_OBSERVATIONS = 8

#: Numerical floor for margins/scales so Equation 9 stays defined for
#: degenerate (zero-width or noise-free) bands.
_TINY = 1e-12


@dataclass(frozen=True)
class RefreshDecision:
    """One model's refresh decision plus the statistics that produced it."""

    model: str
    action: str
    #: Streamed observations since the last refresh (all rows).
    n_streamed: int
    #: Fraction of streamed rows outside the margin band.
    outside_fraction: float
    #: Build-time outside fraction (the data's inherent outlier share).
    baseline_outside: float
    #: Residual drift per streamed row (slope of the residual trend).
    drift: float
    #: Residual volatility around the drift trend.
    sigma: float
    #: Equation 9: expected rows before the residual walk exits the band.
    exit_capacity: float
    #: ``exit_capacity`` relative to the driftless ``eps^2/sigma^2``.
    capacity_ratio: float

    @property
    def outside_excess(self) -> float:
        """Outside fraction beyond the build-time baseline."""
        return self.outside_fraction - self.baseline_outside


@dataclass(frozen=True)
class MaintenanceOutcome:
    """Result of one :meth:`MaintenanceManager.refresh` pass."""

    #: Most invasive action any model decided (drives the compaction path).
    action: str
    #: The groups to use from now on (unchanged objects when ``reuse``).
    groups: Tuple[FDGroup, ...]
    #: Per-model decisions keyed by ``predictor->dependent``.
    decisions: Dict[str, RefreshDecision]

    @property
    def requires_rebuild(self) -> bool:
        """Whether adopting ``groups`` needs a reclaim-rebuild.

        ``refit`` replaces models, which re-partitions rows between the
        primary and outlier structures — only a rebuild applies that.  A
        ``remargin`` merely widens bands and is structure-free.  Callers
        that rebuild *anyway* (e.g. a workload-adaptive re-layout in
        :meth:`repro.core.engine.ShardedCOAX.compact`) may fold either
        tier into their rebuild: building with the refreshed ``groups``
        subsumes both the refit re-partition and the margin widening, so
        the two maintenance dimensions compose in one pass.
        """
        return self.action == REFIT


class ModelMonitor:
    """Streaming health monitor of one linear soft-FD model.

    ``observe`` is called once per inserted batch with the predictor and
    dependent columns plus the margin mask the delta store recorded; it
    advances three groups of sufficient statistics:

    * two Bayesian posteriors over (slope, intercept, noise): the *banded*
      one is fed only with rows within ``update_band_factor`` band widths
      of the current line, so a burst of genuine outliers cannot hijack a
      refreshed model; the *wide* one absorbs every finite row and is the
      refit fallback when the stream jumped so far that nothing lands
      near the old line any more (the banded posterior is then empty);
    * the residual drift trend — a least-squares line of residual against
      stream position over the same near-band rows, giving the drift ``d``
      and volatility ``sigma`` Equation 9 needs;
    * the outside-margin counters over *all* rows (the observable that
      says the band is already failing).

    Everything is O(batch) NumPy work on data the insert path has already
    materialised; no model is ever re-evaluated outside the delta store's
    existing margin check.
    """

    #: Length of the flat persistence state vector: 4 counters/epoch + 5
    #: trend sums + the two regressions' 8 sufficient statistics each.
    STATE_LENGTH = 9 + 2 * BayesianLinearRegression.STATE_LENGTH

    def __init__(self, name: str, model: LinearFDModel, baseline_outside: float) -> None:
        self._name = name
        self._model = model
        self._baseline_outside = float(baseline_outside)
        self._regression = BayesianLinearRegression()
        self._wide_regression = BayesianLinearRegression()
        self._n_streamed = 0
        self._n_outside = 0
        self._n_accepted = 0
        # Residual-vs-stream-position trend sums (t is the running index
        # of accepted observations within the current epoch).
        self._sum_t = 0.0
        self._sum_t2 = 0.0
        self._sum_r = 0.0
        self._sum_tr = 0.0
        self._sum_r2 = 0.0
        #: Completed refresh epochs (diagnostics only).
        self.epoch = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """``predictor->dependent`` name of the monitored model."""
        return self._name

    @property
    def model(self) -> LinearFDModel:
        """The model currently monitored."""
        return self._model

    @property
    def n_streamed(self) -> int:
        """Rows streamed since the last refresh."""
        return self._n_streamed

    @property
    def outside_fraction(self) -> float:
        """Fraction of streamed rows outside the margin band."""
        return self._n_outside / self._n_streamed if self._n_streamed else 0.0

    @property
    def posterior(self):
        """Refreshed posterior summary of the streamed observations."""
        return self._regression.posterior()

    def _band_width(self) -> float:
        return max(self._model.eps_lb + self._model.eps_ub, _TINY)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def observe(
        self, x: np.ndarray, y: np.ndarray, inside_mask: np.ndarray
    ) -> None:
        """Absorb one inserted batch (vectorised, O(batch))."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        inside_mask = np.asarray(inside_mask, dtype=bool)
        n = len(x)
        if n == 0:
            return
        self._n_streamed += n
        self._n_outside += int(n - np.count_nonzero(inside_mask))
        residuals = self._model.residuals(x, y)
        finite = np.isfinite(residuals)
        if finite.any():
            self._wide_regression.update(x[finite], y[finite])
        accept = finite & (np.abs(residuals) <= self.accept_band())
        n_accepted = int(np.count_nonzero(accept))
        if n_accepted == 0:
            return
        self._regression.update(x[accept], y[accept])
        t = self._n_accepted + np.arange(n_accepted, dtype=np.float64)
        r = residuals[accept]
        self._n_accepted += n_accepted
        self._sum_t += float(t.sum())
        self._sum_t2 += float((t * t).sum())
        self._sum_r += float(r.sum())
        self._sum_tr += float((t * r).sum())
        self._sum_r2 += float((r * r).sum())

    def accept_band(self) -> float:
        """Residual magnitude up to which a row feeds the posterior."""
        return self._config_band_factor * self._band_width()

    # The band factor is configured per decision call; keep the last one
    # seen so `accept_band` has a sensible default before any decide().
    _config_band_factor: float = 3.0

    def configure(self, config: MaintenanceConfig) -> None:
        """Adopt the acceptance band factor of ``config``."""
        self._config_band_factor = float(config.update_band_factor)

    # ------------------------------------------------------------------
    # Drift statistics and the decision
    # ------------------------------------------------------------------
    def drift_estimate(self) -> Tuple[float, float]:
        """``(drift per row, volatility)`` of the residual trend.

        A least-squares fit of residual against stream position over the
        accepted observations; volatility is the RMS deviation around that
        trend.  Returns ``(0, 0)`` while too few observations exist.
        """
        n = float(self._n_accepted)
        if n < _MIN_TREND_OBSERVATIONS:
            return 0.0, 0.0
        sxx = self._sum_t2 - self._sum_t * self._sum_t / n
        syy = self._sum_r2 - self._sum_r * self._sum_r / n
        sxy = self._sum_tr - self._sum_t * self._sum_r / n
        if sxx <= 0:
            return 0.0, 0.0
        drift = sxy / sxx
        sse = max(syy - drift * sxy, 0.0)
        sigma = float(np.sqrt(sse / max(n - 2.0, 1.0)))
        return float(drift), sigma

    def decide(self, config: MaintenanceConfig) -> RefreshDecision:
        """Pick the refresh tier from the statistics streamed so far."""
        self.configure(config)
        drift, sigma = self.drift_estimate()
        eps = max(self._band_width() / 2.0, _TINY)
        effective_sigma = max(sigma, _TINY)
        exit_capacity = mean_first_exit_time_with_drift(
            eps, effective_sigma, drift
        )
        capacity_ratio = (
            exit_capacity / expected_keys_per_segment(eps, effective_sigma)
            if sigma > 0.0
            else 1.0
        )
        decision = RefreshDecision(
            model=self._name,
            action=REUSE,
            n_streamed=self._n_streamed,
            outside_fraction=self.outside_fraction,
            baseline_outside=self._baseline_outside,
            drift=drift,
            sigma=sigma,
            exit_capacity=exit_capacity,
            capacity_ratio=capacity_ratio,
        )
        if self._n_streamed < config.min_observations:
            return decision
        action = REUSE
        if decision.outside_excess >= config.refit_outside_excess:
            action = REFIT
        elif self._n_accepted >= _MIN_TREND_OBSERVATIONS:
            posterior = self._regression.posterior()
            slope_shift = abs(posterior.slope - self._model.slope) / max(
                abs(self._model.slope), _TINY
            )
            intercept_bands = abs(
                posterior.intercept - self._model.intercept
            ) / self._band_width()
            if (
                slope_shift >= config.refit_slope_shift
                or intercept_bands >= config.refit_intercept_bands
            ):
                action = REFIT
        if action == REUSE and (
            capacity_ratio <= config.remargin_capacity_ratio
            or decision.outside_excess >= config.remargin_outside_excess
        ):
            action = REMARGIN
        return replace(decision, action=action)

    # ------------------------------------------------------------------
    # Refreshed models
    # ------------------------------------------------------------------
    def widened_model(self, config: MaintenanceConfig) -> LinearFDModel:
        """Current line with margins grown to cover the streamed residuals.

        The band extends to the observed residual mean plus/minus
        ``margin_sigmas`` volatilities, but never shrinks — monotone
        growth is what makes this tier safe without a re-partition.
        """
        n = float(max(self._n_accepted, 1))
        mean = self._sum_r / n
        _, sigma = self.drift_estimate()
        half = config.margin_sigmas * max(sigma, _TINY)
        eps_ub = max(self._model.eps_ub, mean + half)
        eps_lb = max(self._model.eps_lb, -(mean - half))
        return self._model.with_margins(eps_lb, eps_ub)

    def refitted_model(self, config: MaintenanceConfig) -> LinearFDModel:
        """Fresh model from the refreshed posterior (margins may shrink).

        Only sound together with a re-partition of the affected rows: a
        primary-index record outside the new band would otherwise be
        missed by translated queries.

        Prefers the outlier-robust banded posterior; when the stream
        jumped so far that (almost) nothing landed near the old line, the
        wide posterior over all rows is the fallback — its margins are
        inflated by whatever outliers it swallowed, which the *next*
        refresh epoch tightens again through the banded posterior.
        """
        if self._n_accepted >= _MIN_TREND_OBSERVATIONS:
            posterior = self._regression.posterior()
        else:
            posterior = self._wide_regression.posterior()
        band = max(config.margin_sigmas * posterior.noise_std, _TINY)
        return LinearFDModel(posterior.slope, posterior.intercept, band, band)

    def mark_refreshed(self, model: LinearFDModel) -> None:
        """Start a new epoch monitoring ``model`` (counters reset)."""
        self._model = model
        self._regression.reset()
        self._wide_regression.reset()
        self._n_streamed = 0
        self._n_outside = 0
        self._n_accepted = 0
        self._sum_t = self._sum_t2 = 0.0
        self._sum_r = self._sum_tr = self._sum_r2 = 0.0
        self.epoch += 1

    def rebind(self, model: LinearFDModel, baseline_outside: float) -> None:
        """Track a structurally rebuilt index without dropping statistics.

        Used when a reclaiming compaction rebuilds the index with the
        *same* models: the monitor keeps its streamed state but follows
        the new model object and the re-computed build baseline.
        """
        self._model = model
        self._baseline_outside = float(baseline_outside)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_vector(self) -> np.ndarray:
        """Flat float64 state for an ``.npz`` archive."""
        return np.concatenate(
            [
                [
                    float(self._n_streamed),
                    float(self._n_outside),
                    float(self._n_accepted),
                    self._sum_t,
                    self._sum_t2,
                    self._sum_r,
                    self._sum_tr,
                    self._sum_r2,
                    float(self.epoch),
                ],
                self._regression.sufficient_statistics(),
                self._wide_regression.sufficient_statistics(),
            ]
        )

    def load_state_vector(self, state: np.ndarray) -> None:
        """Inverse of :meth:`state_vector`."""
        state = np.asarray(state, dtype=np.float64).ravel()
        if len(state) != self.STATE_LENGTH:
            raise ValueError(
                f"monitor state must have {self.STATE_LENGTH} entries, "
                f"got {len(state)}"
            )
        self._n_streamed = int(state[0])
        self._n_outside = int(state[1])
        self._n_accepted = int(state[2])
        self._sum_t = float(state[3])
        self._sum_t2 = float(state[4])
        self._sum_r = float(state[5])
        self._sum_tr = float(state[6])
        self._sum_r2 = float(state[7])
        self.epoch = int(state[8])
        split = 9 + BayesianLinearRegression.STATE_LENGTH
        self._regression.load_sufficient_statistics(state[9:split])
        self._wide_regression.load_sufficient_statistics(state[split:])


class MaintenanceManager:
    """One :class:`ModelMonitor` per linear model of a group list.

    The index layer calls :meth:`observe_batch` on every insert/update
    (with the per-model masks the delta store recorded) and
    :meth:`refresh` at compaction; everything else is plumbing so the
    sharded engine can share a single manager across shards and
    persistence can round-trip the monitor state.
    """

    def __init__(
        self,
        groups: Sequence[FDGroup],
        config: MaintenanceConfig,
        baseline_inlier_fraction: Mapping[str, float],
    ) -> None:
        self._config = config
        self._monitors: Dict[str, ModelMonitor] = {}
        for group in groups:
            for dependent in group.dependents:
                model = group.model_for(dependent)
                if not isinstance(model, LinearFDModel):
                    continue  # spline models are not maintained (yet)
                name = f"{group.predictor}->{dependent}"
                monitor = ModelMonitor(
                    name, model, 1.0 - baseline_inlier_fraction.get(name, 1.0)
                )
                monitor.configure(config)
                self._monitors[name] = monitor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> MaintenanceConfig:
        """The refresh thresholds in effect."""
        return self._config

    @property
    def model_names(self) -> Tuple[str, ...]:
        """Names of the monitored models."""
        return tuple(self._monitors)

    def monitor(self, name: str) -> ModelMonitor:
        """The monitor of one model."""
        return self._monitors[name]

    @property
    def n_streamed(self) -> int:
        """Rows streamed since the last refresh (max across models)."""
        return max(
            (monitor.n_streamed for monitor in self._monitors.values()),
            default=0,
        )

    # ------------------------------------------------------------------
    # Streaming and refresh
    # ------------------------------------------------------------------
    def observe_batch(
        self,
        columns: Mapping[str, np.ndarray],
        model_masks: Mapping[str, np.ndarray],
    ) -> None:
        """Stream one inserted batch into every monitored model.

        ``model_masks`` are the per-model margin masks recorded for the
        batch (the delta store computes them for routing anyway, so
        monitoring adds no extra model evaluation).
        """
        for name, monitor in self._monitors.items():
            predictor, dependent = name.split("->", 1)
            monitor.observe(columns[predictor], columns[dependent], model_masks[name])

    def decide(self) -> Dict[str, RefreshDecision]:
        """Per-model refresh decisions without applying anything."""
        return {
            name: monitor.decide(self._config)
            for name, monitor in self._monitors.items()
        }

    def refresh(self, groups: Sequence[FDGroup]) -> MaintenanceOutcome:
        """Decide per model and build the refreshed groups — pure.

        Models deciding ``remargin`` get monotonically widened margins;
        models deciding ``refit`` are replaced by the refreshed
        posterior's line (the caller must re-partition in that case —
        the outcome's ``action`` is the most invasive tier decided).

        Nothing is mutated here: the caller adopts the outcome's groups
        (and completes any re-partition) and only then calls
        :meth:`commit`, so a failed refit rebuild leaves the monitors —
        like the index — exactly as they were.
        """
        decisions = self.decide()
        overall = REUSE
        if any(d.action == REFIT for d in decisions.values()):
            overall = REFIT
        elif any(d.action == REMARGIN for d in decisions.values()):
            overall = REMARGIN
        if overall == REUSE:
            return MaintenanceOutcome(REUSE, tuple(groups), decisions)
        refreshed_groups: List[FDGroup] = []
        for group in groups:
            models = dict(group.models)
            changed = False
            for dependent in group.dependents:
                name = f"{group.predictor}->{dependent}"
                decision = decisions.get(name)
                if decision is None or decision.action == REUSE:
                    continue
                monitor = self._monitors[name]
                if decision.action == REFIT:
                    models[dependent] = monitor.refitted_model(self._config)
                else:
                    models[dependent] = monitor.widened_model(self._config)
                changed = True
            if changed:
                refreshed_groups.append(
                    FDGroup(
                        predictor=group.predictor,
                        dependents=group.dependents,
                        models=models,
                    )
                )
            else:
                refreshed_groups.append(group)
        return MaintenanceOutcome(overall, tuple(refreshed_groups), decisions)

    def commit(self, outcome: MaintenanceOutcome) -> None:
        """Start a new monitoring epoch for every refreshed model.

        Call once the outcome's groups have actually been adopted (and
        any refit re-partition has committed); the refreshed models'
        monitors reset and start watching the new bands.
        """
        if outcome.action == REUSE:
            return
        models = {
            f"{group.predictor}->{dependent}": group.model_for(dependent)
            for group in outcome.groups
            for dependent in group.dependents
        }
        for name, decision in outcome.decisions.items():
            if decision.action == REUSE:
                continue
            monitor = self._monitors.get(name)
            if monitor is not None:
                monitor.mark_refreshed(models[name])

    def rebind(
        self,
        groups: Sequence[FDGroup],
        baseline_inlier_fraction: Mapping[str, float],
    ) -> None:
        """Follow a structural rebuild that kept the same model set."""
        for group in groups:
            for dependent in group.dependents:
                name = f"{group.predictor}->{dependent}"
                monitor = self._monitors.get(name)
                model = group.model_for(dependent)
                if monitor is not None and isinstance(model, LinearFDModel):
                    monitor.rebind(
                        model, 1.0 - baseline_inlier_fraction.get(name, 1.0)
                    )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, np.ndarray]:
        """Per-model flat state vectors, keyed by model name."""
        return {
            name: monitor.state_vector()
            for name, monitor in self._monitors.items()
        }

    def load_state(self, payload: Mapping[str, np.ndarray]) -> None:
        """Restore monitor state saved by :meth:`state`.

        Models absent from ``payload`` keep their fresh state, so loading
        an archive written before a model existed degrades gracefully.
        """
        for name, monitor in self._monitors.items():
            if name in payload:
                monitor.load_state_vector(payload[name])
