"""Soft functional dependency learning.

This package implements the offline learning half of COAX (Section 5 of the
paper): drawing a sample, bucketing it on a grid to obtain a compact
training set of dense-cell centres (Algorithm 1), fitting Bayesian linear
models between attribute pairs, estimating error margins, detecting which
pairs constitute usable soft FDs, and merging correlated pairs into groups
with a single predictor attribute per group.
"""

from repro.fd.model import FDModel, LinearFDModel, SplineFDModel, SplineSegment
from repro.fd.bayesian import BayesianLinearRegression, PosteriorSummary
from repro.fd.bucketing import BucketGrid, BucketingConfig, build_training_set
from repro.fd.margins import MarginEstimate, estimate_margins
from repro.fd.detection import DetectionConfig, FDCandidate, detect_soft_fds, evaluate_pair
from repro.fd.groups import (
    FDGroup,
    build_groups,
    combined_inlier_mask,
    per_model_inlier_masks,
)

__all__ = [
    "FDModel",
    "LinearFDModel",
    "SplineFDModel",
    "SplineSegment",
    "BayesianLinearRegression",
    "PosteriorSummary",
    "BucketGrid",
    "BucketingConfig",
    "build_training_set",
    "MarginEstimate",
    "estimate_margins",
    "DetectionConfig",
    "FDCandidate",
    "detect_soft_fds",
    "evaluate_pair",
    "FDGroup",
    "build_groups",
    "combined_inlier_mask",
    "per_model_inlier_masks",
]
