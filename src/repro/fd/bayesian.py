"""Bayesian linear regression with a conjugate Normal-Inverse-Gamma prior.

The paper fits its soft-FD models with pymc3 and notes that "we have used a
Bayesian method for learning the regression model, [which] can help
supporting updates on the index, as we can use the previous gradient and
intercept and continuously adjust our existing model" (Section 5).  MCMC is
unnecessary for a linear model with Gaussian noise: the Normal-Inverse-Gamma
prior is conjugate, so the posterior over (slope, intercept, noise variance)
has a closed form and can be updated incrementally from sufficient
statistics.  This module provides exactly that, including weighted
observations (Algorithm 1 weights training points by bucket counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["PosteriorSummary", "BayesianLinearRegression"]


@dataclass(frozen=True)
class PosteriorSummary:
    """Posterior moments of the linear model ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    slope_std: float
    intercept_std: float
    noise_std: float
    n_observations: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Posterior-mean prediction."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


class BayesianLinearRegression:
    """Conjugate Bayesian simple linear regression.

    Model: ``y_i = w^T [1, x_i] + e_i`` with ``e_i ~ N(0, sigma^2)``,
    prior ``w | sigma^2 ~ N(m0, sigma^2 V0)`` and
    ``sigma^2 ~ InverseGamma(a0, b0)``.

    The class keeps only sufficient statistics, so :meth:`update` supports
    streaming/online refinement and :meth:`fit` is just "reset + update".
    Build-time soft-FD detection fits models through :meth:`fit`; at run
    time, :mod:`repro.fd.maintenance` streams every inserted batch into a
    per-model instance via :meth:`update` so the refreshed posterior is
    ready whenever drift forces a margin re-estimate or a model refit.
    The mutable posterior state round-trips through
    :meth:`sufficient_statistics` / :meth:`load_sufficient_statistics`
    (how persistence carries monitor state across save/load).
    """

    def __init__(
        self,
        *,
        prior_mean: Tuple[float, float] = (0.0, 0.0),
        prior_scale: float = 1e6,
        prior_shape: float = 1e-3,
        prior_rate: float = 1e-3,
    ) -> None:
        if prior_scale <= 0:
            raise ValueError("prior_scale must be positive")
        if prior_shape <= 0 or prior_rate <= 0:
            raise ValueError("prior_shape and prior_rate must be positive")
        self._m0 = np.array([prior_mean[1], prior_mean[0]], dtype=np.float64)  # [intercept, slope]
        self._V0_inv = np.eye(2) / prior_scale
        self._a0 = float(prior_shape)
        self._b0 = float(prior_rate)
        self.reset()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all observations and return to the prior."""
        self._precision = self._V0_inv.copy()  # repro-lint: allow[materialize] 2x2 prior matrix, O(1)
        self._precision_mean = self._V0_inv @ self._m0
        self._a = self._a0
        self._b = self._b0
        self._n = 0.0
        self._yty = 0.0
        self._m0_quad = float(self._m0 @ self._V0_inv @ self._m0)

    @property
    def n_observations(self) -> float:
        """Total (possibly weighted) number of observations absorbed."""
        return self._n

    #: Length of the flat state vector (precision 4, precision-mean 2,
    #: y'y 1, observation count 1).
    STATE_LENGTH = 8

    def sufficient_statistics(self) -> np.ndarray:
        """Flat copy of the mutable posterior state (for persistence).

        The prior hyper-parameters are *not* included — they are
        construction arguments, so a restored instance must be built with
        the same prior before :meth:`load_sufficient_statistics`.
        """
        return np.concatenate(
            [
                self._precision.ravel(),
                self._precision_mean,
                [self._yty, self._n],
            ]
        ).astype(np.float64)

    def load_sufficient_statistics(self, state: np.ndarray) -> None:
        """Inverse of :meth:`sufficient_statistics`."""
        state = np.asarray(state, dtype=np.float64).ravel()
        if len(state) != self.STATE_LENGTH:
            raise ValueError(
                f"posterior state must have {self.STATE_LENGTH} entries, "
                f"got {len(state)}"
            )
        self._precision = state[:4].reshape(2, 2).copy()  # repro-lint: allow[materialize] 8-entry posterior state, O(1)
        self._precision_mean = state[4:6].copy()  # repro-lint: allow[materialize] 8-entry posterior state, O(1)
        self._yty = float(state[6])
        self._n = float(state[7])

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def update(
        self,
        x: np.ndarray,
        y: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> "BayesianLinearRegression":
        """Absorb a batch of observations into the posterior.

        ``weights`` (if given) act as observation multiplicities, which is
        how Algorithm 1's bucket-count weighting enters the regression.
        Returns ``self`` to allow chaining.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape != y.shape:
            raise ValueError("x and y must have the same length")
        if len(x) == 0:
            return self
        if weights is None:
            weights = np.ones_like(x)
        else:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if weights.shape != x.shape:
                raise ValueError("weights must match the length of x")
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")

        design = np.column_stack([np.ones_like(x), x])  # columns: [1, x]
        weighted_design = design * weights[:, None]
        self._precision += design.T @ weighted_design
        self._precision_mean += weighted_design.T @ y
        self._yty += float(np.sum(weights * y * y))
        self._n += float(weights.sum())
        return self

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> PosteriorSummary:
        """Reset, absorb the batch and return the posterior summary."""
        self.reset()
        self.update(x, y, weights)
        return self.posterior()

    # ------------------------------------------------------------------
    # Posterior
    # ------------------------------------------------------------------
    def posterior(self) -> PosteriorSummary:
        """Current posterior moments."""
        precision = self._precision
        covariance = np.linalg.inv(precision)
        mean = covariance @ self._precision_mean
        a_n = self._a0 + self._n / 2.0
        quad_term = self._m0_quad + self._yty - float(mean @ precision @ mean)
        b_n = self._b0 + max(quad_term, 0.0) / 2.0
        # Posterior-mean noise variance (InverseGamma mean needs a_n > 1;
        # fall back to the mode for very small samples).
        if a_n > 1.0:
            noise_var = b_n / (a_n - 1.0)
        else:
            noise_var = b_n / (a_n + 1.0)
        coefficient_cov = covariance * noise_var
        intercept, slope = float(mean[0]), float(mean[1])
        return PosteriorSummary(
            slope=slope,
            intercept=intercept,
            slope_std=float(np.sqrt(max(coefficient_cov[1, 1], 0.0))),
            intercept_std=float(np.sqrt(max(coefficient_cov[0, 0], 0.0))),
            noise_std=float(np.sqrt(max(noise_var, 0.0))),
            n_observations=self._n,
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Posterior-mean prediction for new inputs."""
        return self.posterior().predict(x)

    def predictive_interval(self, x: np.ndarray, n_std: float = 2.0) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetric predictive band ``mean +/- n_std * noise_std``."""
        summary = self.posterior()
        centre = summary.predict(x)
        half_width = n_std * summary.noise_std
        return centre - half_width, centre + half_width
