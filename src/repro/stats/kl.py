"""Kullback-Leibler divergence from the uniform distribution.

Appendix B.3 of the paper uses the KL divergence between the empirical
distribution of the predictor attribute and a uniform distribution as a
prerequisite test for the CSM analysis: the closer the divergence is to
zero, the better the stochastic model (and hence the soft-FD index)
performs.  We expose both the raw divergence and a normalised score in
[0, 1] that the FD detector can use as a sanity check.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kl_divergence_from_uniform", "uniformity_score"]


def kl_divergence_from_uniform(values: np.ndarray, *, n_bins: int = 64) -> float:
    """KL divergence D(P || Uniform) of the histogram of ``values``.

    Follows Equation 7 of the paper with the continuous attribute discretised
    into ``n_bins`` equi-width bins (the unique-value formulation in the
    paper is impractical for continuous float attributes).  Returns 0.0 for
    degenerate inputs (empty or constant arrays map to a single bin, which by
    convention is maximally non-uniform, handled below).
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return 0.0
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        # A constant column is as far from uniform as a histogram can get.
        return math.log(n_bins)
    counts, _ = np.histogram(values, bins=n_bins, range=(low, high))
    total = counts.sum()
    probabilities = counts[counts > 0] / total
    uniform = 1.0 / n_bins
    return float(np.sum(probabilities * np.log(probabilities / uniform)))


def uniformity_score(values: np.ndarray, *, n_bins: int = 64) -> float:
    """Score in [0, 1]: 1 for perfectly uniform data, 0 for maximally skewed.

    The KL divergence from uniform over ``n_bins`` bins is bounded by
    ``log(n_bins)`` (all mass in one bin), so the score is simply
    ``1 - KL / log(n_bins)``.
    """
    divergence = kl_divergence_from_uniform(values, n_bins=n_bins)
    upper = math.log(n_bins)
    if upper <= 0.0:
        return 1.0
    return float(np.clip(1.0 - divergence / upper, 0.0, 1.0))
