"""Statistics and theory modules.

Contains the correlation measures used by soft-FD detection, the
Kullback-Leibler uniformity test from Appendix B.3, quantile helpers shared
by the grid indexes, the Centre-Sequence Model (CSM) of Appendix B, and the
closed-form results of Section 7 (effectiveness, Theorems 7.1-7.4, and the
Appendix G grid comparison).
"""

from repro.stats.correlation import (
    pearson_correlation,
    spearman_correlation,
    soft_fd_strength,
)
from repro.stats.kl import kl_divergence_from_uniform, uniformity_score
from repro.stats.quantiles import quantile_boundaries, empirical_cdf
from repro.stats.csm import CentreSequence, build_centre_sequence, segment_stream
from repro.stats.theory import (
    effectiveness_ratio,
    expected_keys_per_segment,
    keys_per_segment_variance,
    expected_segment_count,
    grid_cells_scanned,
    scanned_area,
    result_area,
)
from repro.stats.profile import ColumnProfile, TableProfile, profile_table

__all__ = [
    "pearson_correlation",
    "spearman_correlation",
    "soft_fd_strength",
    "kl_divergence_from_uniform",
    "uniformity_score",
    "quantile_boundaries",
    "empirical_cdf",
    "CentreSequence",
    "build_centre_sequence",
    "segment_stream",
    "effectiveness_ratio",
    "expected_keys_per_segment",
    "keys_per_segment_variance",
    "expected_segment_count",
    "grid_cells_scanned",
    "scanned_area",
    "result_area",
    "ColumnProfile",
    "TableProfile",
    "profile_table",
]
