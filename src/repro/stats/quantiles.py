"""Quantile helpers shared by the grid-based indexes.

The paper's index implementation chooses grid-cell boundaries "based on
quantiles along each dimension" (Section 6), and the Column Files baseline
"uses the CDF of the data to align/arrange its cell boundaries"
(Section 8.1.3).  Both rely on the utilities in this module.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["quantile_boundaries", "empirical_cdf", "uniform_boundaries"]


def quantile_boundaries(values: np.ndarray, n_cells: int) -> np.ndarray:
    """Cell boundaries that split ``values`` into ``n_cells`` equal-count cells.

    Returns an increasing array of ``n_cells + 1`` boundaries whose first and
    last entries are the data minimum and maximum.  Duplicate quantiles (from
    heavily repeated values) are de-duplicated by nudging, so the boundaries
    are always strictly increasing and usable with ``np.searchsorted``.
    """
    if n_cells < 1:
        raise ValueError("n_cells must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.linspace(0.0, 1.0, n_cells + 1)
    probs = np.linspace(0.0, 1.0, n_cells + 1)
    boundaries = np.quantile(values, probs)
    low, high = boundaries[0], boundaries[-1]
    if high <= low:
        high = low + 1.0
        return np.linspace(low, high, n_cells + 1)
    # Enforce strict monotonicity: any flat run gets spread by a tiny epsilon
    # relative to the column span so searchsorted still partitions the data.
    epsilon = (high - low) * 1e-12
    for i in range(1, len(boundaries)):
        if boundaries[i] <= boundaries[i - 1]:
            boundaries[i] = boundaries[i - 1] + epsilon
    boundaries[-1] = max(boundaries[-1], high)
    return boundaries


def uniform_boundaries(values: np.ndarray, n_cells: int) -> np.ndarray:
    """Equi-width boundaries between the minimum and maximum of ``values``."""
    if n_cells < 1:
        raise ValueError("n_cells must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.linspace(0.0, 1.0, n_cells + 1)
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        high = low + 1.0
    return np.linspace(low, high, n_cells + 1)


def empirical_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values plus their empirical CDF positions in [0, 1]."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return values, values
    order = np.sort(values)
    positions = np.arange(1, len(order) + 1, dtype=np.float64) / len(order)
    return order, positions
