"""Correlation measures used for soft-FD detection.

A soft functional dependency X -> Y means X determines Y with high
probability (Section 2).  For the linear models COAX fits, the practical
signal is the strength of the linear relationship after discounting the
records that would land in the outlier index; :func:`soft_fd_strength`
captures exactly that by combining the linear fit quality with the fraction
of records inside a candidate margin.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "pearson_correlation",
    "spearman_correlation",
    "soft_fd_strength",
    "fit_line",
]


def _validate_pair(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be one-dimensional arrays of equal length")
    return x, y


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient, 0.0 for degenerate inputs."""
    x, y = _validate_pair(x, y)
    if len(x) < 2:
        return 0.0
    x_std = x.std()
    y_std = y.std()
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (robust to monotone non-linearity)."""
    x, y = _validate_pair(x, y)
    if len(x) < 2:
        return 0.0
    x_ranks = np.argsort(np.argsort(x)).astype(np.float64)
    y_ranks = np.argsort(np.argsort(y)).astype(np.float64)
    return pearson_correlation(x_ranks, y_ranks)


def fit_line(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Ordinary least-squares line ``y = slope * x + intercept``."""
    x, y = _validate_pair(x, y)
    if len(x) == 0:
        return 0.0, 0.0
    if len(x) == 1 or x.std() == 0.0:
        return 0.0, float(y.mean())
    slope, intercept = np.polyfit(x, y, deg=1)
    return float(slope), float(intercept)


def soft_fd_strength(
    x: np.ndarray,
    y: np.ndarray,
    *,
    margin_quantile: float = 0.9,
) -> float:
    """Score in [0, 1] measuring how well a linear soft FD X -> Y holds.

    The score is the fraction of records whose residual from the OLS line
    falls within the ``margin_quantile`` residual band, weighted by how
    narrow that band is relative to the spread of Y.  A perfect linear
    dependency scores close to 1; independent attributes score close to 0.
    """
    x, y = _validate_pair(x, y)
    if len(x) < 3:
        return 0.0
    y_spread = float(y.max() - y.min())
    if y_spread == 0.0:
        # Y is constant: trivially determined by anything.
        return 1.0
    slope, intercept = fit_line(x, y)
    residuals = y - (slope * x + intercept)
    band = float(np.quantile(np.abs(residuals), margin_quantile))
    inside = float(np.mean(np.abs(residuals) <= band)) if band > 0 else float(
        np.mean(residuals == 0.0)
    )
    narrowness = 1.0 - min(1.0, 2.0 * band / y_spread)
    return float(np.clip(inside * narrowness, 0.0, 1.0))
