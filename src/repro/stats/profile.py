"""Dataset profiling: the "what would COAX do with my data?" report.

Before building an index it is useful to know which attributes correlate,
how skewed each attribute is (the CSM analysis assumes a roughly uniform
predictor, Appendix B.3), and how many dimensions COAX could eliminate.
:func:`profile_table` gathers exactly that into a plain report object that
examples, the CLI and downstream users can print or inspect programmatically
— without building any index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.table import Table
from repro.stats.correlation import pearson_correlation
from repro.stats.kl import uniformity_score

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package-level cycle
    from repro.fd.detection import DetectionConfig, FDCandidate
    from repro.fd.groups import FDGroup

__all__ = ["ColumnProfile", "TableProfile", "profile_table"]


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of one attribute."""

    name: str
    minimum: float
    maximum: float
    mean: float
    std: float
    n_distinct: int
    uniformity: float

    @property
    def is_nearly_constant(self) -> bool:
        """True when the column carries (almost) no information."""
        return self.n_distinct <= 1 or self.std == 0.0


@dataclass
class TableProfile:
    """Full profiling report of a table."""

    n_rows: int
    columns: List[ColumnProfile]
    #: Pearson correlation for every unordered attribute pair.
    correlations: Dict[Tuple[str, str], float]
    #: Accepted soft-FD candidates (best direction per pair).
    candidates: List["FDCandidate"]
    #: The groups COAX would form, predictor first.
    groups: List["FDGroup"]

    @property
    def n_dims(self) -> int:
        """Number of attributes profiled."""
        return len(self.columns)

    @property
    def predicted_attributes(self) -> Tuple[str, ...]:
        """Attributes COAX would predict instead of indexing."""
        predicted: List[str] = []
        for group in self.groups:
            predicted.extend(group.dependents)
        return tuple(sorted(predicted))

    @property
    def indexed_dimensions(self) -> int:
        """Dimensions left to index after removing the predicted attributes."""
        return self.n_dims - len(self.predicted_attributes)

    def column(self, name: str) -> ColumnProfile:
        """Profile of one attribute."""
        for profile in self.columns:
            if profile.name == name:
                return profile
        raise KeyError(f"unknown column {name!r}")

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"rows: {self.n_rows}", f"attributes: {self.n_dims}", "", "columns:"]
        for profile in self.columns:
            lines.append(
                f"  {profile.name:20s} range [{profile.minimum:.4g}, {profile.maximum:.4g}]  "
                f"std {profile.std:.4g}  distinct {profile.n_distinct}  "
                f"uniformity {profile.uniformity:.2f}"
            )
        strong = sorted(
            ((pair, value) for pair, value in self.correlations.items() if abs(value) >= 0.5),
            key=lambda item: -abs(item[1]),
        )
        lines.append("")
        lines.append("strong pairwise correlations (|r| >= 0.5):")
        if strong:
            for (left, right), value in strong:
                lines.append(f"  {left} ~ {right}: r = {value:+.3f}")
        else:
            lines.append("  (none)")
        lines.append("")
        lines.append("soft functional dependencies COAX would use:")
        if self.groups:
            for group in self.groups:
                lines.append(f"  {group.predictor} -> {', '.join(group.dependents)}")
            lines.append(
                f"dimensionality: {self.n_dims} -> {self.indexed_dimensions} indexed "
                f"({len(self.predicted_attributes)} predicted)"
            )
        else:
            lines.append("  (none detected — COAX would degenerate to a plain grid file)")
        return "\n".join(lines)


def _profile_column(name: str, values: np.ndarray) -> ColumnProfile:
    if len(values) == 0:
        return ColumnProfile(name, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
    return ColumnProfile(
        name=name,
        minimum=float(values.min()),
        maximum=float(values.max()),
        mean=float(values.mean()),
        std=float(values.std()),
        n_distinct=int(len(np.unique(values))),
        uniformity=uniformity_score(values),
    )


def profile_table(
    table: Table,
    *,
    columns: Optional[Sequence[str]] = None,
    detection: Optional["DetectionConfig"] = None,
    sample_rows: int = 20_000,
    seed: int = 0,
) -> TableProfile:
    """Profile ``table``: per-column statistics, correlations, soft FDs and groups.

    ``sample_rows`` caps the number of rows used for the pairwise statistics
    so profiling stays cheap on large tables (the soft-FD detector applies
    its own sampling on top, per Algorithm 1).
    """
    # Imported here (not at module level): repro.fd.detection itself uses
    # repro.stats.csm, so a module-level import would create a package cycle.
    from repro.fd.detection import DetectionConfig, detect_soft_fds, evaluate_pair
    from repro.fd.groups import build_groups

    names = list(columns) if columns is not None else list(table.schema)
    rng = np.random.default_rng(seed)
    sampled = table if table.n_rows <= sample_rows else table.sample(sample_rows, rng)

    column_profiles = [_profile_column(name, sampled.column(name)) for name in names]

    correlations: Dict[Tuple[str, str], float] = {}
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            left, right = names[i], names[j]
            correlations[(left, right)] = pearson_correlation(
                sampled.column(left), sampled.column(right)
            )

    config = detection or DetectionConfig()
    candidates = detect_soft_fds(sampled, config=config, columns=names)

    def fit_pair(predictor: str, dependent: str):
        return evaluate_pair(
            sampled.column(predictor),
            sampled.column(dependent),
            predictor=predictor,
            dependent=dependent,
            config=config,
        )

    groups = build_groups(candidates, fit_pair)
    return TableProfile(
        n_rows=table.n_rows,
        columns=column_profiles,
        correlations=correlations,
        candidates=candidates,
        groups=groups,
    )
