"""Closed-form results from Section 7 and Appendix G.

These are the analytical predictions the paper derives; the theory-
validation benchmarks compare them against measurements from the simulator
in :mod:`repro.stats.csm` and against real index runs.

* Equation 3/4/5 — result area, scanned area and effectiveness of the
  soft-FD index for a query of width ``q_y`` with margin ``eps``.
* Theorem 7.1 — expected keys covered by one linear segment: ``eps^2 / sigma^2``.
* Theorem 7.3 — variance of keys per segment: ``2 eps^4 / (3 sigma^4)``.
* Theorem 7.4 — number of segments for a stream of length n: ``n sigma^2 / eps^2``.
* Appendix G — number of grid cells scanned by an equivalent square grid.
"""

from __future__ import annotations

import math

__all__ = [
    "result_area",
    "scanned_area",
    "effectiveness_ratio",
    "expected_keys_per_segment",
    "keys_per_segment_variance",
    "expected_segment_count",
    "mean_first_exit_time_with_drift",
    "grid_cells_scanned",
    "box_aspect_ratio",
]


def result_area(query_width: float, epsilon: float, slope: float) -> float:
    """Area of the R-box (Equation 3): ``q_y * 2 eps / a``."""
    _validate_positive(epsilon=epsilon, slope=slope)
    if query_width < 0:
        raise ValueError("query_width must be non-negative")
    return query_width * 2.0 * epsilon / slope


def scanned_area(query_width: float, epsilon: float, slope: float) -> float:
    """Area of the S-box (Equation 4): ``2 eps (2 eps + q_y) / a``."""
    _validate_positive(epsilon=epsilon, slope=slope)
    if query_width < 0:
        raise ValueError("query_width must be non-negative")
    return 2.0 * epsilon * (2.0 * epsilon + query_width) / slope


def effectiveness_ratio(query_width: float, epsilon: float) -> float:
    """Effectiveness of the soft-FD model (Equation 5): ``q_y / (2 eps + q_y)``."""
    _validate_positive(epsilon=epsilon)
    if query_width < 0:
        raise ValueError("query_width must be non-negative")
    denominator = 2.0 * epsilon + query_width
    return query_width / denominator if denominator > 0 else 0.0


def expected_keys_per_segment(epsilon: float, sigma: float) -> float:
    """Theorem 7.1: expected keys covered by one linear segment."""
    _validate_positive(epsilon=epsilon, sigma=sigma)
    return epsilon**2 / sigma**2


def keys_per_segment_variance(epsilon: float, sigma: float) -> float:
    """Theorem 7.3: variance of keys covered by one linear segment."""
    _validate_positive(epsilon=epsilon, sigma=sigma)
    return 2.0 * epsilon**4 / (3.0 * sigma**4)


def expected_segment_count(n: int, epsilon: float, sigma: float) -> float:
    """Theorem 7.4: expected number of segments for a stream of length ``n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    _validate_positive(epsilon=epsilon, sigma=sigma)
    return n * sigma**2 / epsilon**2


def mean_first_exit_time_with_drift(epsilon: float, sigma: float, drift: float) -> float:
    """Equation 9: MFET of a Brownian motion with drift d out of [-eps, eps].

    Used by Theorem 7.2: the expected segment capacity as a function of the
    mismatch ``d = mu - a`` between the gap mean and the segment slope.  The
    driftless limit recovers Theorem 7.1.
    """
    _validate_positive(epsilon=epsilon, sigma=sigma)
    if drift == 0.0:
        return expected_keys_per_segment(epsilon, sigma)
    return (epsilon / drift) * math.tanh(epsilon * drift / sigma**2)


def box_aspect_ratio(
    x_range: float, y_range: float, epsilon: float, slope: float
) -> float:
    """Equation 15: ratio between the length and the width of the B-box."""
    _validate_positive(epsilon=epsilon, slope=slope)
    if x_range < 0 or y_range < 0:
        raise ValueError("ranges must be non-negative")
    length = math.hypot(x_range, y_range)
    width = 2.0 * epsilon / math.sqrt(1.0 + slope**2)
    return length / width if width > 0 else math.inf


def grid_cells_scanned(
    x_range: float,
    y_range: float,
    epsilon: float,
    slope: float,
    query_width: float,
    *,
    scan_factor: float = 1.0,
) -> float:
    """Equation 14 (Appendix G): cells an equivalent square grid must scan.

    ``scan_factor`` is the ``t`` in the paper — the square grid is sized so
    that its scanned area equals ``t`` times the soft-FD scanned area.
    """
    _validate_positive(epsilon=epsilon, slope=slope, scan_factor=scan_factor)
    if x_range <= 0 or y_range <= 0:
        raise ValueError("ranges must be positive")
    if query_width < 0:
        raise ValueError("query_width must be non-negative")
    whole_area = x_range * y_range
    s_scanned = scanned_area(query_width, epsilon, slope)
    if s_scanned <= 0:
        return math.inf
    return whole_area / (scan_factor * s_scanned)


def _validate_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
