"""Centre-Sequence Model (CSM) of Appendix B.

The CSM represents a two-dimensional dataset (predictor attribute X,
dependent attribute Y) as an equally-spaced sequence of interval centres:
the X axis is split into ``n`` intervals of equal width and each interval is
replaced by the mean Y value of the records falling into it.  The resulting
``(i, y_i)`` sequence is treated as a random walk with i.i.d. gaps, which is
what the stochastic analysis of Section 7 (Theorems 7.1-7.4) operates on.

This module provides:

* :func:`build_centre_sequence` — construct the CSM representation of data;
* :func:`segment_stream` — greedy segmentation of a gap stream with a fixed
  margin, used to validate Theorems 7.1, 7.3 and 7.4 empirically;
* :func:`simulate_gap_stream` — generate synthetic gap streams with chosen
  mean and variance for the theory-validation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "CentreSequence",
    "build_centre_sequence",
    "segment_stream",
    "simulate_gap_stream",
    "segment_lengths",
]


@dataclass(frozen=True)
class CentreSequence:
    """CSM representation of a two-dimensional dataset.

    ``positions`` are the X-axis interval midpoints; ``centres`` are the mean
    Y values per interval; ``counts`` the number of original records per
    interval.  Empty intervals are dropped (the skewed-data caveat of
    Figure 10), so the three arrays always have equal length.
    """

    positions: np.ndarray
    centres: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.positions) == len(self.centres) == len(self.counts)):
            raise ValueError("positions, centres and counts must have equal length")

    @property
    def n_intervals(self) -> int:
        """Number of non-empty intervals."""
        return len(self.positions)

    @property
    def gaps(self) -> np.ndarray:
        """First differences of the centre values (the random-walk increments)."""
        if len(self.centres) < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(self.centres)

    def gap_statistics(self) -> Tuple[float, float]:
        """(mean, standard deviation) of the gap distribution."""
        gaps = self.gaps
        if len(gaps) == 0:
            return 0.0, 0.0
        return float(gaps.mean()), float(gaps.std())

    def empty_fraction(self, n_requested: int) -> float:
        """Fraction of requested intervals that contained no data."""
        if n_requested <= 0:
            return 0.0
        return 1.0 - self.n_intervals / n_requested


def build_centre_sequence(
    x: np.ndarray,
    y: np.ndarray,
    n_intervals: int,
) -> CentreSequence:
    """Construct the CSM representation of ``(x, y)`` with ``n_intervals`` splits."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be one-dimensional arrays of equal length")
    if n_intervals < 1:
        raise ValueError("n_intervals must be at least 1")
    if len(x) == 0:
        empty = np.empty(0, dtype=np.float64)
        return CentreSequence(empty, empty, empty.astype(np.int64))
    low = float(x.min())
    high = float(x.max())
    if high <= low:
        return CentreSequence(
            np.array([low]), np.array([float(y.mean())]), np.array([len(x)], dtype=np.int64)
        )
    boundaries = np.linspace(low, high, n_intervals + 1)
    # Assign each record to an interval; the topmost boundary is inclusive.
    cell = np.clip(np.searchsorted(boundaries, x, side="right") - 1, 0, n_intervals - 1)
    sums = np.bincount(cell, weights=y, minlength=n_intervals)
    counts = np.bincount(cell, minlength=n_intervals)
    non_empty = counts > 0
    midpoints = (boundaries[:-1] + boundaries[1:]) / 2.0
    centres = np.zeros(n_intervals, dtype=np.float64)
    centres[non_empty] = sums[non_empty] / counts[non_empty]
    return CentreSequence(
        positions=midpoints[non_empty],
        centres=centres[non_empty],
        counts=counts[non_empty].astype(np.int64),
    )


def simulate_gap_stream(
    n: int,
    mean: float,
    std: float,
    rng: np.random.Generator,
    *,
    distribution: str = "normal",
) -> np.ndarray:
    """Synthetic i.i.d. gap stream with the requested mean and deviation.

    Used by the theory benchmarks to validate Theorems 7.1-7.4 under the
    exact assumptions of the stochastic analysis (i.i.d. gaps, sigma << eps).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if distribution == "normal":
        return rng.normal(mean, std, size=n)
    if distribution == "uniform":
        half_width = std * np.sqrt(3.0)
        return rng.uniform(mean - half_width, mean + half_width, size=n)
    if distribution == "exponential":
        # Shift an exponential so that both the mean and the std match.
        return mean - std + rng.exponential(std, size=n)
    raise ValueError(f"unknown distribution {distribution!r}")


def segment_stream(
    gaps: np.ndarray,
    epsilon: float,
    *,
    slope: Optional[float] = None,
) -> List[int]:
    """Greedy segmentation of a gap stream with margin ``epsilon``.

    Starting at position 0, a linear segment with the given ``slope``
    (defaulting to the gap mean, the optimum of Theorem 7.2) covers keys
    until the cumulative deviation ``|sum(gaps) - slope * i|`` first exceeds
    ``epsilon`` — the First Exit Time of the transformed random walk Z_i.
    A new segment then starts at that key.  Returns the list of segment
    lengths (number of keys covered by each segment).
    """
    gaps = np.asarray(gaps, dtype=np.float64)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if len(gaps) == 0:
        return []
    a = float(gaps.mean()) if slope is None else float(slope)
    lengths: List[int] = []
    deviation = 0.0
    current_length = 0
    for gap in gaps:
        deviation += gap - a
        current_length += 1
        if abs(deviation) > epsilon:
            lengths.append(current_length)
            deviation = 0.0
            current_length = 0
    if current_length:
        lengths.append(current_length)
    return lengths


def segment_lengths(
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    n_intervals: int,
) -> List[int]:
    """Segment lengths of the CSM sequence of a real dataset.

    Convenience wrapper combining :func:`build_centre_sequence` and
    :func:`segment_stream`; used by the spline-capacity benchmarks.
    """
    sequence = build_centre_sequence(x, y, n_intervals)
    return segment_stream(sequence.gaps, epsilon)
