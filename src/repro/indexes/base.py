"""Common interface of every multidimensional index in the library.

Indexes are constructed over a table (optionally restricted to a subset of
rows); query results are always arrays of *original* row ids so COAX can
merge primary- and outlier-index results with a plain union (Figure 1).
Every index also accounts for its *directory* memory (the structure on top
of the data: boundaries, cell offsets, tree nodes, model parameters)
separately from the data itself, which is what Figure 8 plots on its x axis.

Concurrency contract
--------------------

Indexes are not free-threaded data structures; they follow a
*single-writer* discipline instead:

* Every index owns a reentrant ``write_lock``.  Mutation entry points of
  the compound structures (``COAXIndex.insert_batch`` / ``delete_batch`` /
  ``update_batch`` / ``compact`` and the ``ShardedCOAX`` facade) acquire
  it for the whole batch, so two concurrent mutators serialise and no
  mutation can interleave with another half-way.
* Readers in the mutating thread need no locking (a mutation entry point
  never yields mid-batch).  Readers in *other* threads — the sharded
  engine's scatter workers overlapping queries with background shard
  maintenance — take the target's ``write_lock`` around the query, which
  guarantees they observe either the pre-batch or the post-batch state of
  a shard, never a half-applied insert/delete/compaction.
* The primitive per-structure operations (``delete_rows``,
  ``_append_rows``, absorb paths) do **not** lock themselves: they are
  always reached from an entry point that already holds the lock, and
  locking them individually would only hide torn multi-structure updates
  instead of preventing them.
"""

from __future__ import annotations

import threading

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

from repro.data.executors import (
    MATERIALIZE,
    Aggregate,
    AggregatePartial,
    Executor,
    TopK,
    point_distances,
    select_topk,
)
from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.indexes.kernels import live_candidate_mask

__all__ = [
    "IndexBuildError",
    "QueryStats",
    "MultidimensionalIndex",
    "register_index",
    "create_index",
    "available_indexes",
]


class IndexBuildError(RuntimeError):
    """Raised when an index cannot be built with the given parameters."""


@dataclass
class QueryStats:
    """Work counters accumulated across queries (reset with :meth:`reset`).

    Counter semantics (identical on the sequential and the batch path):

    * ``queries`` counts *logical* queries: one increment per query answered,
      never one per sub-index call or per batch.  A batch of ``n`` queries
      increments it by ``n`` (:meth:`record_batch`); a COAX query that fans
      out to the primary index, the outlier index and the delta store still
      counts once on the COAX facade (the sub-indexes keep their own stats).
    * ``rows_examined`` counts candidate rows actually scanned or gathered.
      Visiting an empty cell — or a cell whose sorted-key run turns out
      empty — contributes nothing here; it only shows up in
      ``cells_visited``.
    * ``rows_matched`` counts rows in the final, exactly filtered result.
    * ``cells_visited`` / ``nodes_visited`` count directory work: every
      enumerated grid cell (empty or not) respectively every tree node
      touched.
    * ``shards_pruned`` counts whole sub-indexes skipped by engine-level
      bounding-box pruning: the sharded engine increments it once per
      (query, shard) pair it never dispatched.  Unsharded indexes leave it
      at zero.

    Per-op counters (the executor surface):

    * ``aggregates`` counts logical :class:`~repro.data.executors.Aggregate`
      queries answered — like ``queries``, once per logical query at every
      facade that answered it, never once per sub-index or shard.
    * ``knn_queries`` counts logical :class:`~repro.data.executors.TopK`
      queries (both kNN point searches and by-column top-k).
    * ``rings_expanded`` counts grid-directory ring expansions performed by
      kNN searches (one per widening of the visited cell box beyond the
      seed cells); non-ring fallbacks contribute zero.

    Merge/split semantics of the per-op counters: :meth:`merge` sums all
    three exactly like every other counter (disjoint sub-index stats stay
    additive).  Per-query *attribution* of a batch (the serve
    dispatcher) assigns ``aggregates``/``knn_queries`` exactly — 1 to
    every query of that op, since they count logical queries — and
    splits the fan-out-shaped ``rings_expanded`` with
    :func:`~repro.core.results.split_counter_evenly`, the same
    sum-preserving largest-remainder split used for ``rows_examined``.
    """

    queries: int = 0
    rows_examined: int = 0
    rows_matched: int = 0
    cells_visited: int = 0
    nodes_visited: int = 0
    shards_pruned: int = 0
    aggregates: int = 0
    knn_queries: int = 0
    rings_expanded: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries = 0
        self.rows_examined = 0
        self.rows_matched = 0
        self.cells_visited = 0
        self.nodes_visited = 0
        self.shards_pruned = 0
        self.aggregates = 0
        self.knn_queries = 0
        self.rings_expanded = 0

    def record(
        self,
        *,
        rows_examined: int = 0,
        rows_matched: int = 0,
        cells_visited: int = 0,
        nodes_visited: int = 0,
        shards_pruned: int = 0,
        aggregates: int = 0,
        knn_queries: int = 0,
        rings_expanded: int = 0,
    ) -> None:
        """Accumulate the work of one query."""
        self.record_batch(
            1,
            rows_examined=rows_examined,
            rows_matched=rows_matched,
            cells_visited=cells_visited,
            nodes_visited=nodes_visited,
            shards_pruned=shards_pruned,
            aggregates=aggregates,
            knn_queries=knn_queries,
            rings_expanded=rings_expanded,
        )

    def record_batch(
        self,
        n_queries: int,
        *,
        rows_examined: int = 0,
        rows_matched: int = 0,
        cells_visited: int = 0,
        nodes_visited: int = 0,
        shards_pruned: int = 0,
        aggregates: int = 0,
        knn_queries: int = 0,
        rings_expanded: int = 0,
    ) -> None:
        """Accumulate the aggregate work of ``n_queries`` logical queries.

        The batch execution paths record once per batch with the summed
        counters, so batch and sequential execution of the same workload
        leave identical statistics.
        """
        self.queries += n_queries
        self.rows_examined += rows_examined
        self.rows_matched += rows_matched
        self.cells_visited += cells_visited
        self.nodes_visited += nodes_visited
        self.shards_pruned += shards_pruned
        self.aggregates += aggregates
        self.knn_queries += knn_queries
        self.rings_expanded += rings_expanded

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another stats object into this one; returns ``self``.

        Every counter is summed — including ``queries``, so merging the
        stats of disjoint sub-indexes that each answered their own logical
        queries keeps the per-query averages meaningful.  Callers
        aggregating *fan-out* work (one logical query scattered over many
        shards) should merge the per-shard deltas into a scratch
        ``QueryStats`` and then :meth:`record_batch` the merged counters
        with the *logical* query count, exactly what the sharded engine's
        gather step does — ``queries`` must count logical queries once,
        never once per shard visited.
        """
        self.queries += other.queries
        self.rows_examined += other.rows_examined
        self.rows_matched += other.rows_matched
        self.cells_visited += other.cells_visited
        self.nodes_visited += other.nodes_visited
        self.shards_pruned += other.shards_pruned
        self.aggregates += other.aggregates
        self.knn_queries += other.knn_queries
        self.rings_expanded += other.rings_expanded
        return self

    def snapshot(self) -> "QueryStats":
        """An independent copy of the current counter values.

        The live object keeps accumulating; the snapshot never changes.
        Monitors that need windowed rates pair this with :meth:`delta` —
        neither touches the live counters, so the documented cumulative
        semantics above are preserved for every other reader (no hidden
        resets).
        """
        return QueryStats(
            queries=self.queries,
            rows_examined=self.rows_examined,
            rows_matched=self.rows_matched,
            cells_visited=self.cells_visited,
            nodes_visited=self.nodes_visited,
            shards_pruned=self.shards_pruned,
            aggregates=self.aggregates,
            knn_queries=self.knn_queries,
            rings_expanded=self.rings_expanded,
        )

    def delta(self, since: "QueryStats") -> "QueryStats":
        """Counter increments since an earlier :meth:`snapshot`.

        Returns a new object holding ``self - since`` per counter; both
        inputs are left untouched.  Taking a snapshot before a window and
        calling ``stats.delta(before)`` after it yields exactly the work
        of that window even while other readers rely on the cumulative
        totals.  Negative values only arise when ``since`` postdates a
        :meth:`reset`, in which case the window spans the reset and has
        no meaningful delta.
        """
        return QueryStats(
            queries=self.queries - since.queries,
            rows_examined=self.rows_examined - since.rows_examined,
            rows_matched=self.rows_matched - since.rows_matched,
            cells_visited=self.cells_visited - since.cells_visited,
            nodes_visited=self.nodes_visited - since.nodes_visited,
            shards_pruned=self.shards_pruned - since.shards_pruned,
            aggregates=self.aggregates - since.aggregates,
            knn_queries=self.knn_queries - since.knn_queries,
            rings_expanded=self.rings_expanded - since.rings_expanded,
        )

    @property
    def mean_rows_examined(self) -> float:
        """Average rows examined per query."""
        return self.rows_examined / self.queries if self.queries else 0.0


class MultidimensionalIndex(ABC):
    """Abstract base class of all index structures.

    Subclasses index the rows given by ``row_ids`` (default: all rows of the
    table) over the attributes given by ``dimensions`` (default: the full
    schema).  Attributes outside ``dimensions`` are still checked when
    filtering candidates, so results are always exact with respect to the
    full query rectangle.
    """

    #: Short name used by the registry and benchmark reports.
    name: str = "abstract"

    def __init__(
        self,
        table: Table,
        *,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        self._table = table
        aligned = row_ids is None
        if row_ids is None:
            row_ids = np.arange(table.n_rows, dtype=np.int64)
        else:
            row_ids = np.asarray(row_ids, dtype=np.int64)
        self._row_ids = row_ids
        self._dimensions = tuple(dimensions) if dimensions else tuple(table.schema)
        for dim in self._dimensions:
            if dim not in table.schema:
                raise IndexBuildError(f"dimension {dim!r} is not in the table schema")
        # Local view of the indexed subset: queries work on positional ids
        # 0..len(row_ids)-1 and map back to original ids at the end.  An
        # index over the whole table references the table arrays directly
        # (zero-copy — in particular mmap-backed columns stay mapped);
        # subset-scoped indexes gather their covered rows once.
        if aligned:
            self._columns: Dict[str, np.ndarray] = {
                name: table.column(name) for name in table.schema
            }
        else:
            self._columns = {
                name: table.column(name)[row_ids] for name in table.schema
            }
        # Lazily built row-id -> position lookup (see :meth:`positions_of`).
        self._row_id_order: Optional[np.ndarray] = None
        self._sorted_row_ids: Optional[np.ndarray] = None
        # Tombstone bitmap over positional ids (``None`` until the first
        # delete, so delete-free indexes pay nothing on the read path).
        self._tombstone: Optional[np.ndarray] = None
        self._n_tombstoned = 0
        # Single-writer lock (see the module docstring's concurrency
        # contract).  Reentrant: mutation entry points nest (insert ->
        # auto-compact -> compact) without re-acquisition deadlocks.
        self._write_lock = threading.RLock()
        self.stats = QueryStats()

    def _init_restored(
        self,
        table: Table,
        *,
        row_ids: np.ndarray,
        columns: Dict[str, np.ndarray],
        dimensions: Sequence[str],
    ) -> None:
        """Adopt base-class state directly from persisted arrays.

        Structured (format v6) restore path: the caller supplies the
        covered row ids and the per-structure column arrays (typically
        memmap-backed) verbatim instead of re-gathering them from the
        table, so attaching is O(metadata).  Tombstones are re-applied by
        the caller afterwards via :meth:`delete_rows`.
        """
        self._table = table
        self._row_ids = np.asarray(row_ids, dtype=np.int64)
        self._dimensions = tuple(dimensions)
        self._columns = dict(columns)
        self._row_id_order = None
        self._sorted_row_ids = None
        self._tombstone = None
        self._n_tombstoned = 0
        self._write_lock = threading.RLock()
        self.stats = QueryStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The table the index was built over."""
        return self._table

    @property
    def row_ids(self) -> np.ndarray:
        """Original row ids covered by this index."""
        return self._row_ids

    @property
    def n_rows(self) -> int:
        """Number of indexed records (live and tombstoned)."""
        return len(self._row_ids)

    @property
    def n_tombstoned(self) -> int:
        """Number of covered records marked deleted but not yet reclaimed."""
        return self._n_tombstoned

    @property
    def n_live(self) -> int:
        """Number of covered records that are not tombstoned."""
        return len(self._row_ids) - self._n_tombstoned

    @property
    def tombstone_fraction(self) -> float:
        """Tombstoned share of the covered rows (compaction trigger metric)."""
        return self._n_tombstoned / len(self._row_ids) if len(self._row_ids) else 0.0

    @property
    def tombstone_mask(self) -> Optional[np.ndarray]:
        """Per-position deleted bitmap (``None`` while no row was deleted)."""
        return self._tombstone

    def live_row_ids(self) -> np.ndarray:
        """Original row ids of the covered records that are still live."""
        if self._tombstone is None:
            return self._row_ids
        return self._row_ids[~self._tombstone]

    @property
    def write_lock(self) -> threading.RLock:
        """Reentrant single-writer lock of this index.

        Mutation entry points hold it for the whole batch; cross-thread
        readers that must not observe a half-applied mutation (the sharded
        engine's scatter workers) take it around their query.  See the
        module docstring for the full contract.
        """
        return self._write_lock

    @property
    def dimensions(self) -> tuple:
        """Attributes the directory structure is built on."""
        return self._dimensions

    def column(self, name: str) -> np.ndarray:
        """Local (subset) copy of a column, aligned with positional ids."""
        return self._columns[name]

    def positions_of(self, row_ids: np.ndarray) -> np.ndarray:
        """Positional ids of ``row_ids`` within this index's subset.

        The stable argsort of the covered row ids is computed once and
        cached, so repeated id-to-position mapping (every COAX query needs
        it) costs one binary search instead of an ``O(n log n)`` sort per
        call.  Ids not covered by this index are silently dropped.  The
        cache is invalidated whenever the covered row set changes
        (:meth:`_append_rows`).
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0 or self.n_rows == 0:
            return np.empty(0, dtype=np.int64)
        if self._row_id_order is None or self._sorted_row_ids is None:
            self._row_id_order = np.argsort(self._row_ids, kind="stable")
            self._sorted_row_ids = self._row_ids[self._row_id_order]
        located = np.searchsorted(self._sorted_row_ids, row_ids)
        located = np.clip(located, 0, len(self._sorted_row_ids) - 1)
        valid = self._sorted_row_ids[located] == row_ids
        return self._row_id_order[located[valid]]

    # ------------------------------------------------------------------
    # Deletes (tombstones)
    # ------------------------------------------------------------------
    def delete_rows(self, row_ids: np.ndarray, *, assume_unique: bool = False) -> int:
        """Tombstone the given original row ids; return how many were live.

        Deletion is ``O(k log n)`` for ``k`` ids (one batched binary search
        through the cached row-id lookup plus one bitmap scatter) and takes
        effect immediately: every read path filters tombstoned positions
        alongside its exact post-filter, so no directory structure is
        touched.  Ids not covered by this index — and ids already
        tombstoned — are silently skipped, which makes the call idempotent.
        ``assume_unique`` skips the defensive de-duplication (duplicates
        would double-count the tombstones) when the caller already holds a
        unique id set — compound indexes fan one delete out to several
        sub-structures and should not pay the sort more than once.  The
        physical reclaim (dropping the rows from the directory and the
        column copies) is the job of compaction, not of the delete itself.
        """
        # repro-lint: allow[lock-discipline] single-structure primitive: the owning COAXIndex/engine entry point holds the write lock around every call (see the class concurrency contract)
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0 or self.n_rows == 0:
            return 0
        positions = self.positions_of(row_ids if assume_unique else np.unique(row_ids))
        if len(positions) == 0:
            return 0
        if self._tombstone is None:
            self._tombstone = np.zeros(self.n_rows, dtype=bool)
        newly = positions[~self._tombstone[positions]]
        self._tombstone[newly] = True
        self._n_tombstoned += len(newly)
        return int(len(newly))

    def rows_live(self, row_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``row_ids`` are covered and not tombstoned.

        One batched binary search through the cached row-id lookup —
        ``O(k log n)`` for ``k`` ids, like :meth:`delete_rows` — instead of
        materialising the live-id set.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0 or self.n_rows == 0:
            return np.zeros(len(row_ids), dtype=bool)
        if self._row_id_order is None or self._sorted_row_ids is None:
            self._row_id_order = np.argsort(self._row_ids, kind="stable")
            self._sorted_row_ids = self._row_ids[self._row_id_order]
        located = np.clip(
            np.searchsorted(self._sorted_row_ids, row_ids),
            0,
            len(self._sorted_row_ids) - 1,
        )
        found = self._sorted_row_ids[located] == row_ids
        if self._tombstone is None:
            return found
        # Not-found slots carry a clipped (but valid) position; `found`
        # masks them out of the result either way.
        return found & ~self._tombstone[self._row_id_order[located]]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query: Rectangle) -> np.ndarray:
        """Original row ids of records matching ``query`` exactly."""
        if query.is_empty or self.n_rows == 0:
            self.stats.record()
            return np.empty(0, dtype=np.int64)
        positions = self._range_query_positions(query)
        return self._row_ids[positions]

    def point_query(self, point: Mapping[str, float]) -> np.ndarray:
        """Original row ids of records equal to ``point`` on every given attribute."""
        return self.range_query(Rectangle.from_point(point))

    def count(self, query: Rectangle) -> int:
        """Number of matching records (convenience wrapper)."""
        return int(len(self.range_query(query)))

    def batch_range_query(self, queries: Sequence[Rectangle]) -> List[np.ndarray]:
        """Original row ids for every query of a batch.

        The base implementation executes the queries one by one; subclasses
        with batch-friendly layouts (or remote/async backends) can override
        it to share directory lookups across the batch.  Results are
        positionally aligned with ``queries``.
        """
        return [self.range_query(query) for query in queries]

    def batch_range_query_flat(
        self, queries: Sequence[Rectangle]
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Batch results as one flat array plus per-query counts.

        Returns ``(row_ids, counts)`` where ``row_ids`` concatenates every
        query's result in order and ``counts[i]`` is query ``i``'s result
        size — the zero-copy form compound indexes (COAX) consume when they
        merge sub-index results batch-wide, avoiding a split into per-query
        arrays that the caller would immediately re-concatenate.  Contents
        are identical to ``np.concatenate(batch_range_query(queries))``.
        """
        results = self.batch_range_query(queries)
        counts = np.array([len(result) for result in results], dtype=np.int64)
        if not results or int(counts.sum()) == 0:
            return np.empty(0, dtype=np.int64), counts
        return np.concatenate(results), counts

    # ------------------------------------------------------------------
    # Executors (aggregate / top-k consumers of the match set)
    # ------------------------------------------------------------------
    def execute(self, query: Rectangle, executor: Executor = MATERIALIZE):
        """Answer ``query`` through ``executor``.

        The one dispatch point every caller-facing layer shares:
        :class:`~repro.data.executors.MaterializeIds` returns the row-id
        array (exactly :meth:`range_query`), ``Aggregate`` returns the
        scalar, ``TopK`` returns the result row ids ordered by
        ``(key, row_id)`` — kNN mode ignores the rectangle.
        """
        kind = getattr(executor, "kind", "materialize")
        if kind == "aggregate":
            return self.aggregate(query, executor)
        if kind == "topk":
            if executor.is_knn:
                return self.knn(executor.point, executor.k, metric=executor.metric)
            return self.topk(query, executor)
        return self.range_query(query)

    def aggregate(self, query: Rectangle, spec: Aggregate):
        """Scalar aggregate of ``spec`` over the rows matching ``query``.

        COUNT returns an ``int``; SUM/MIN/MAX/AVG return a ``float``
        (NaN over an empty match set except SUM, which is 0.0).
        """
        result = self.batch_aggregate([query], spec)[0]
        return int(result) if spec.op == "count" else float(result)

    def batch_aggregate(self, queries: Sequence[Rectangle], spec: Aggregate) -> np.ndarray:
        """Per-query aggregate results, positionally aligned with ``queries``."""
        return self.batch_aggregate_partial(queries, spec).finalize(spec)

    def batch_aggregate_partial(
        self, queries: Sequence[Rectangle], spec: Aggregate
    ) -> AggregatePartial:
        """Fold every query's matching rows into per-query accumulators.

        The mergeable form compound indexes and the sharded engine
        consume: partials over disjoint row subsets merge component-wise
        (see :class:`~repro.data.executors.AggregatePartial`).  The base
        implementation folds column values at the matching *positions* —
        the original row ids are never gathered, which is the executor
        contract subclasses must preserve when they override this with a
        pushdown (the grid folds candidate runs before the post-filter).
        """
        partial = AggregatePartial.identity(len(queries))
        values = self._columns[spec.column] if spec.column is not None else None
        for slot, query in enumerate(queries):
            if query.is_empty or self.n_rows == 0:
                self.stats.record()
                continue
            positions = self._range_query_positions(query)
            if len(positions) == 0:
                continue
            qids = np.full(len(positions), slot, dtype=np.int64)
            partial.fold_values(qids, None if values is None else values[positions])
        self.stats.record_batch(0, aggregates=len(queries))
        return partial

    def knn(self, point: Mapping[str, float], k: int, *, metric: str = "l2") -> np.ndarray:
        """Row ids of the ``k`` live rows nearest to ``point``.

        Ordered by ``(distance, row_id)`` — ties always break toward the
        smaller row id, so results are reproducible across shardings and
        against the full-scan oracle.
        """
        _, ids = self.knn_partial(point, k, metric=metric)
        return ids

    def knn_partial(
        self, point: Mapping[str, float], k: int, *, metric: str = "l2"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Local kNN candidates as a mergeable ``(keys, ids)`` pair.

        Keys are monotone distance keys (squared L2 / L∞), so per-subset
        candidate sets merge exactly with
        :func:`~repro.data.executors.merge_topk`.  The base implementation
        scans every live row; grid subclasses override it with the
        expanding-ring directory search.
        """
        if self.n_rows == 0:
            self.stats.record(knn_queries=1)
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        keys = point_distances(self._columns, None, point, metric)
        ids = self._row_ids
        if self._tombstone is not None:
            live = ~self._tombstone
            keys = keys[live]
            ids = ids[live]
        self.stats.record(rows_examined=len(ids), knn_queries=1)
        return select_topk(keys, ids, k)

    def topk(self, query: Rectangle, spec: TopK) -> np.ndarray:
        """Row ids of the k smallest/largest matching rows by ``spec.column``."""
        _, ids = self.topk_partial(query, spec)
        return ids

    def topk_partial(
        self, query: Rectangle, spec: TopK
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Local by-column top-k candidates as a mergeable ``(keys, ids)`` pair."""
        if query.is_empty or self.n_rows == 0:
            self.stats.record(knn_queries=1)
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        positions = self._range_query_positions(query)
        self.stats.record_batch(0, knn_queries=1)
        if len(positions) == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        keys = self._columns[spec.column][positions].astype(np.float64, copy=False)
        return select_topk(keys, self._row_ids[positions], spec.k, largest=spec.largest)

    @abstractmethod
    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        """Positional ids (into the local subset) of exactly matching records."""

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @abstractmethod
    def directory_bytes(self) -> int:
        """Bytes of index structure on top of the data (Figure 8 x-axis)."""

    def data_bytes(self) -> int:
        """Bytes of the record data covered by this index."""
        return int(sum(array.nbytes for array in self._columns.values()))

    def total_bytes(self) -> int:
        """Directory plus data bytes."""
        return self.directory_bytes() + self.data_bytes()

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _append_rows(self, table: Table, new_row_ids: np.ndarray) -> None:
        """Extend the covered row set with ``new_row_ids`` of ``table``.

        ``table`` becomes the index's backing table (it must contain the old
        rows under their old ids plus the new ones).  Only the flat row
        bookkeeping is updated here — directory structures are the
        subclass's responsibility (see ``SortedCellGridIndex.absorb_rows``).
        """
        new_row_ids = np.asarray(new_row_ids, dtype=np.int64)
        # Invalidate the row-id lookup *before* mutating the row set: if a
        # column concatenate below raises, a stale cache must never survive
        # to serve positions over the partially updated arrays.
        self._invalidate_row_lookup()
        self._table = table
        self._row_ids = np.concatenate([self._row_ids, new_row_ids])
        if self._tombstone is not None:
            self._tombstone = np.concatenate(
                [self._tombstone, np.zeros(len(new_row_ids), dtype=bool)]
            )
        for name in table.schema:
            self._columns[name] = np.concatenate(
                [self._columns[name], table.column(name)[new_row_ids]]
            )

    def _invalidate_row_lookup(self) -> None:
        """Drop the cached row-id ordering; any path that changes the
        covered row set (absorbs, rebuilds, future merge paths) must call
        this so :meth:`positions_of` rebuilds against the new rows."""
        self._row_id_order = None
        self._sorted_row_ids = None

    def _filter_candidates(
        self,
        candidates: np.ndarray,
        query: Rectangle,
        skip_dims: Sequence[str] = (),
    ) -> np.ndarray:
        """Exact post-filter of candidate positional ids against the query.

        ``skip_dims`` names constraints the caller has already proven for
        every candidate (an exact bisection, or the grid filter-pruning
        invariant), so their column gathers are skipped.  Tombstoned
        candidates are dropped here as well — even when every dimension is
        skipped — so deletes are visible on every read path that funnels
        through the exact filter.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        if len(candidates) == 0:
            return candidates
        live = live_candidate_mask(candidates, self._tombstone)
        mask = live if live is not None else np.ones(len(candidates), dtype=bool)
        for name, interval in query.items():
            if name in skip_dims:
                continue
            values = self._columns[name][candidates]
            mask &= (values >= interval.low) & (values <= interval.high)
        return candidates[mask]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_rows={self.n_rows}, dims={list(self._dimensions)})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[MultidimensionalIndex]] = {}


def register_index(cls: Type[MultidimensionalIndex]) -> Type[MultidimensionalIndex]:
    """Class decorator adding an index type to the global registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("registered indexes must define a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def create_index(name: str, table: Table, **kwargs) -> MultidimensionalIndex:
    """Instantiate a registered index by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown index {name!r}; available: {sorted(_REGISTRY)}") from exc
    return cls(table, **kwargs)


def available_indexes() -> List[str]:
    """Names of all registered index types."""
    return sorted(_REGISTRY)
