"""Quantile-boundary grid file with a sorted dimension per cell (Section 6).

This is the index layout COAX builds its primary index on: a Grid File
variant where

* cell boundaries along every grid dimension are chosen from quantiles of
  the data (equal-depth, not equal-width), using the same number of grid
  lines for every attribute;
* cell addresses are laid out in the original attribute order;
* each cell stores its records contiguously, sorted by one designated
  attribute, so that attribute needs no grid lines at all — lookups on it
  use binary search inside the cell ("Sorting the rows inside pages means
  that we can reduce the dimensionality of the grid by one").

The same structure doubles as the Column Files baseline (see
:mod:`repro.indexes.column_files`).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle, batch_bounds
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index
from repro.indexes.kernels import (
    SMALL_QUERY_CELLS,
    axis_cell_ranges,
    axis_filter_needed,
    enumerate_cells,
    enumerate_cells_batch,
    gather_ranges,
    live_candidate_mask,
    observed_axis_spans,
    row_major_strides,
    segment_bisect,
)
from repro.indexes.uniform_grid import MAX_TOTAL_CELLS, _capped_cells_per_dim
from repro.stats.quantiles import quantile_boundaries

__all__ = ["SortedCellGridIndex"]


@register_index
class SortedCellGridIndex(MultidimensionalIndex):
    """Grid file with quantile boundaries and an in-cell sorted dimension."""

    name = "sorted_cell_grid"

    def __init__(
        self,
        table: Table,
        *,
        cells_per_dim: int = 8,
        max_cells: Optional[int] = None,
        sort_dimension: Optional[str] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        if cells_per_dim < 1:
            raise IndexBuildError("cells_per_dim must be at least 1")
        self._sort_dimension = sort_dimension or self._dimensions[-1]
        if self._sort_dimension not in self._table.schema:
            raise IndexBuildError(f"sort dimension {self._sort_dimension!r} not in schema")
        # Grid lines cover every indexed dimension except the sorted one.
        self._grid_dimensions: Tuple[str, ...] = tuple(
            dim for dim in self._dimensions if dim != self._sort_dimension
        )
        n_grid_dims = len(self._grid_dimensions)
        # Same directory-size discipline as the uniform grid: by default the
        # total cell count may not exceed the number of indexed records.
        budget = max_cells if max_cells is not None else max(16, self.n_rows)
        budget = min(budget, MAX_TOTAL_CELLS)
        self._cells_per_dim = _capped_cells_per_dim(cells_per_dim, n_grid_dims, budget)
        self._shape: Tuple[int, ...] = tuple([self._cells_per_dim] * n_grid_dims)
        self._cell_strides: Tuple[int, ...] = row_major_strides(self._shape)
        self._boundaries: List[np.ndarray] = [
            quantile_boundaries(self._columns[dim], self._cells_per_dim)
            for dim in self._grid_dimensions
        ]
        self._compute_axis_spans()
        self._build_cells()

    # ------------------------------------------------------------------
    # Structured restore (format v6)
    # ------------------------------------------------------------------
    @classmethod
    def _restore(
        cls,
        table: Table,
        *,
        row_ids: np.ndarray,
        columns: Dict[str, np.ndarray],
        dimensions: Sequence[str],
        sort_dimension: str,
        cells_per_dim: int,
        boundaries: Sequence[np.ndarray],
        axis_lows: Sequence[float],
        axis_highs: Sequence[float],
        row_order: np.ndarray,
        offsets: np.ndarray,
        sorted_keys: np.ndarray,
    ) -> "SortedCellGridIndex":
        """Reattach a grid from persisted derived state — no rebuild.

        The quantile boundaries, the (cell, sort-key) row permutation and
        the per-cell offsets are adopted verbatim, so the restored grid is
        bit-identical to the saved one by construction and attaching costs
        O(metadata) plus mapping the arrays (nothing when they are
        memmaps).  Column arrays are taken as given — memmap-backed ones
        stay mapped.
        """
        index = cls.__new__(cls)
        index._init_restored(
            table, row_ids=row_ids, columns=columns, dimensions=dimensions
        )
        index._sort_dimension = sort_dimension
        index._grid_dimensions = tuple(
            dim for dim in index._dimensions if dim != sort_dimension
        )
        index._cells_per_dim = int(cells_per_dim)
        index._shape = tuple([index._cells_per_dim] * len(index._grid_dimensions))
        index._cell_strides = row_major_strides(index._shape)
        index._boundaries = [np.asarray(b, dtype=np.float64) for b in boundaries]
        index._axis_lows = [float(v) for v in axis_lows]
        index._axis_highs = [float(v) for v in axis_highs]
        index._row_order = np.asarray(row_order, dtype=np.int64)
        index._offsets = np.asarray(offsets, dtype=np.int64)
        index._sorted_keys = np.asarray(sorted_keys, dtype=np.float64)
        return index

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_cells(self) -> None:
        n_cells = int(np.prod(self._shape)) if self._shape else 1
        if self.n_rows == 0:
            self._row_order = np.empty(0, dtype=np.int64)
            self._offsets = np.zeros(n_cells + 1, dtype=np.int64)
            self._sorted_keys = np.empty(0, dtype=np.float64)
            return
        if self._grid_dimensions:
            cell_coordinates = [
                self._cell_of(self._columns[dim], axis)
                for axis, dim in enumerate(self._grid_dimensions)
            ]
            flat = np.ravel_multi_index(cell_coordinates, self._shape)
        else:
            flat = np.zeros(self.n_rows, dtype=np.int64)
        sort_keys = self._columns[self._sort_dimension]
        # Order rows by (cell id, sort key): records cluster per cell and are
        # sorted inside the cell, exactly the paper's page layout.
        order = np.lexsort((sort_keys, flat)).astype(np.int64)
        counts = np.bincount(flat, minlength=n_cells)
        self._row_order = order
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._sorted_keys = sort_keys[order]

    def _cell_of(self, values: np.ndarray, axis: int) -> np.ndarray:
        boundaries = self._boundaries[axis]
        return np.clip(
            np.searchsorted(boundaries, values, side="right") - 1, 0, self._cells_per_dim - 1
        )

    def _compute_axis_spans(self) -> None:
        """Observed [min, max] per grid dimension, kept current by absorbs
        (see :func:`repro.indexes.kernels.observed_axis_spans`)."""
        self._axis_lows, self._axis_highs = observed_axis_spans(
            self._columns, self._grid_dimensions
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def absorb_rows(self, table: Table, new_row_ids: np.ndarray) -> None:
        """Merge new rows of ``table`` into the existing grid in place.

        This is the incremental half of COAX compaction: the quantile
        boundaries learned at build time are kept (no re-quantiling), the
        new rows are assigned to cells with the existing directory, sorted
        by (cell, sort key) once, and merged into the per-cell sorted runs
        with one binary search per touched cell.  Sorting work is
        ``O(k log k + k log n)`` for ``k`` new rows; the merged arrays are
        then rewritten in one ``O(n + k)`` copy (``np.insert``), so the win
        over a rebuild is avoiding the full ``O((n + k) log (n + k))``
        re-sort and the re-quantiling, not the linear copy.

        ``table`` must contain the previously covered rows under their old
        ids plus the new rows under ``new_row_ids``.
        """
        new_row_ids = np.asarray(new_row_ids, dtype=np.int64)
        old_n = self.n_rows
        if len(new_row_ids) == 0:
            self._table = table
            return
        self._append_rows(table, new_row_ids)
        if old_n == 0:
            # The grid was built over no data, so its boundaries carry no
            # information; learn them from the first absorbed batch.
            self._boundaries = [
                quantile_boundaries(self._columns[dim], self._cells_per_dim)
                for dim in self._grid_dimensions
            ]
            self._compute_axis_spans()
            self._build_cells()
            return
        k = len(new_row_ids)
        for axis, dim in enumerate(self._grid_dimensions):
            new_values = self._columns[dim][old_n:]
            self._axis_lows[axis] = min(self._axis_lows[axis], float(new_values.min()))
            self._axis_highs[axis] = max(self._axis_highs[axis], float(new_values.max()))
        new_positions = old_n + np.arange(k, dtype=np.int64)
        if self._grid_dimensions:
            cell_coordinates = [
                self._cell_of(self._columns[dim][old_n:], axis)
                for axis, dim in enumerate(self._grid_dimensions)
            ]
            flat = np.ravel_multi_index(cell_coordinates, self._shape)
        else:
            flat = np.zeros(k, dtype=np.int64)
        keys = self._columns[self._sort_dimension][old_n:]
        order = np.lexsort((keys, flat)).astype(np.int64)
        flat_sorted = flat[order]
        keys_sorted = keys[order]
        positions_sorted = new_positions[order]
        insert_at = np.empty(k, dtype=np.int64)
        # flat_sorted is sorted, so each touched cell is one contiguous run.
        touched_cells, run_starts = np.unique(flat_sorted, return_index=True)
        run_ends = np.append(run_starts[1:], k)
        for cell, run_start, run_end in zip(touched_cells, run_starts, run_ends):
            start, stop = int(self._offsets[cell]), int(self._offsets[cell + 1])
            insert_at[run_start:run_end] = start + np.searchsorted(
                self._sorted_keys[start:stop],
                keys_sorted[run_start:run_end],
                side="right",
            )
        self._row_order = np.insert(self._row_order, insert_at, positions_sorted)
        self._sorted_keys = np.insert(self._sorted_keys, insert_at, keys_sorted)
        n_cells = self.n_cells
        counts = np.bincount(flat, minlength=n_cells)
        self._offsets[1:] += np.cumsum(counts)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _cell_range(self, axis: int, low: float, high: float) -> Tuple[int, int]:
        boundaries = self._boundaries[axis]
        lo_cell = int(np.clip(np.searchsorted(boundaries, low, side="right") - 1, 0, self._cells_per_dim - 1))
        hi_cell = int(np.clip(np.searchsorted(boundaries, high, side="right") - 1, 0, self._cells_per_dim - 1))
        return lo_cell, hi_cell

    def _axis_filter_needed(self, axis: int, low: float, high: float, lo_cell: int, hi_cell: int) -> bool:
        """Scalar filter-pruning check for one grid axis
        (see :func:`repro.indexes.kernels.axis_filter_needed`)."""
        return axis_filter_needed(
            low,
            high,
            lo_cell,
            hi_cell,
            self._boundaries[axis],
            self._cells_per_dim,
            self._axis_lows[axis],
            self._axis_highs[axis],
        )

    def _pruned_filter_dims(
        self, query: Rectangle, lo_cells: Sequence[int], hi_cells: Sequence[int]
    ) -> List[str]:
        """Grid dimensions whose exact post-filter is provably redundant.

        The filter-pruning invariant (see :meth:`_axis_filter_needed`):
        when a query interval fully covers every visited cell along an
        axis, no candidate row can violate it, so its column gather is
        skipped.  Constraints on non-indexed attributes are never pruned.
        """
        pruned: List[str] = []
        for axis, dim in enumerate(self._grid_dimensions):
            if not query.constrains(dim):
                continue
            interval = query.interval(dim)
            if not self._axis_filter_needed(
                axis, interval.low, interval.high, int(lo_cells[axis]), int(hi_cells[axis])
            ):
                pruned.append(dim)
        return pruned

    def _axis_cell_spans(self, query: Rectangle) -> Tuple[List[int], List[int]]:
        """Inclusive per-axis cell ranges the query overlaps."""
        lo_cells: List[int] = []
        hi_cells: List[int] = []
        for axis, dim in enumerate(self._grid_dimensions):
            interval = query.interval(dim)
            lo_cell, hi_cell = self._cell_range(axis, interval.low, interval.high)
            lo_cells.append(lo_cell)
            hi_cells.append(hi_cell)
        return lo_cells, hi_cells

    def _bisect_cells(
        self, cells: np.ndarray, lows: np.ndarray, highs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cell ``[first, last)`` key runs for per-cell sort-key bounds.

        One batched bisection over all cells (of one query or of a whole
        batch) instead of two Python-dispatched ``searchsorted`` calls per
        cell.  The upper search starts from the lower result — valid because
        ``last >= first`` whenever the interval is non-empty.
        """
        starts = self._offsets[cells]
        stops = self._offsets[cells + 1]
        first = segment_bisect(self._sorted_keys, starts, stops, lows, side="left")
        last = segment_bisect(self._sorted_keys, first, stops, highs, side="right")
        return first, last

    #: Hybrid switch between the scalar per-cell path and the batched
    #: kernels (shared grid-family constant; results are identical on both
    #: sides).
    SMALL_QUERY_CELLS = SMALL_QUERY_CELLS

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        sort_interval = query.interval(self._sort_dimension)
        lo_cells, hi_cells = self._axis_cell_spans(query)
        n_cells = 1
        for lo_cell, hi_cell in zip(lo_cells, hi_cells):
            n_cells *= hi_cell - lo_cell + 1
        skip_dims: List[str] = [self._sort_dimension]  # the bisection is exact
        if n_cells <= self.SMALL_QUERY_CELLS:
            # Scalar path: enumerate the few cells with plain integer
            # stride math and scan each between two bounding binary
            # searches (Section 6) — lowest constant cost for point-like
            # queries.  Pruning analysis is not worth its overhead here.
            strides = self._cell_strides
            chunks: List[np.ndarray] = []
            rows_examined = 0
            offsets = self._offsets
            keys = self._sorted_keys
            for combo in itertools.product(
                *(
                    range(lo_cell, hi_cell + 1)
                    for lo_cell, hi_cell in zip(lo_cells, hi_cells)
                )
            ):
                flat = sum(index * stride for index, stride in zip(combo, strides))
                start, stop = int(offsets[flat]), int(offsets[flat + 1])
                if stop <= start:
                    continue
                cell_keys = keys[start:stop]
                first = start + int(np.searchsorted(cell_keys, sort_interval.low, side="left"))
                last = start + int(np.searchsorted(cell_keys, sort_interval.high, side="right"))
                if last > first:
                    chunks.append(self._row_order[first:last])
                    rows_examined += last - first
            candidates = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
        else:
            cells = enumerate_cells(lo_cells, hi_cells, self._shape)
            # Kernel path: one batched bisection over the whole cell
            # hyper-rectangle plus one gathered copy of all surviving runs.
            first, last = self._bisect_cells(
                cells,
                np.full(len(cells), sort_interval.low),
                np.full(len(cells), sort_interval.high),
            )
            gathered, _ = gather_ranges(first, last)
            candidates = self._row_order[gathered]
            rows_examined = len(candidates)
            skip_dims.extend(self._pruned_filter_dims(query, lo_cells, hi_cells))
        matches = self._filter_candidates(candidates, query, skip_dims)
        self.stats.record(
            rows_examined=rows_examined,
            rows_matched=len(matches),
            cells_visited=n_cells,
        )
        return matches

    # ------------------------------------------------------------------
    # Batch query
    # ------------------------------------------------------------------
    def batch_range_query(self, queries: Sequence[Rectangle]) -> List[np.ndarray]:
        """Original row ids for every query of a batch, sharing directory work.

        The batch path computes all queries' cell ranges with one vectorized
        boundary bisection per axis, bisects the sorted dimension of every
        (query, cell) pair in one batched kernel call, gathers all candidate
        runs at once and applies one vectorized post-filter pass per
        attribute over the whole batch.  Results are bit-identical to
        ``[range_query(q) for q in queries]``.
        """
        row_ids, counts = self.batch_range_query_flat(queries)
        return np.split(row_ids, np.cumsum(counts)[:-1]) if len(counts) else []

    def batch_range_query_flat(
        self, queries: Sequence[Rectangle]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat form of :meth:`batch_range_query` (see the base class)."""
        queries = list(queries)
        if not queries:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        n_queries = len(queries)
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        return self.batch_flat_from_bounds(bounds, n_queries, live, n_queries)

    def batch_flat_from_bounds(
        self,
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        n_queries: int,
        execute: np.ndarray,
        n_recorded: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat batch results for an already-columnar query batch.

        ``bounds`` is the per-attribute bound-matrix form of the batch (see
        :func:`repro.data.predicates.batch_bounds`); ``execute`` masks the
        queries to actually run (the rest report zero results), and
        ``n_recorded`` is how many logical queries the stats should count —
        compound callers like COAX route only a planner-chosen subset here
        while empty queries still count.  This array-level entry point lets
        COAX feed translated bound matrices straight into the grid kernels
        without materialising per-query rectangles.
        """
        if self.n_rows == 0:
            self.stats.record_batch(n_recorded)
            return np.empty(0, dtype=np.int64), np.zeros(n_queries, dtype=np.int64)
        matches, counts = self._batch_positions_from_bounds(
            bounds, n_queries, execute, n_recorded
        )
        return self._row_ids[matches], counts

    def _batch_positions_from_bounds(
        self,
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        n_queries: int,
        live: np.ndarray,
        n_recorded: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat positional matches plus per-query counts for a batch."""
        # Per-axis cell ranges for the whole batch: one searchsorted pair
        # per axis instead of one per (query, axis).
        n_axes = len(self._grid_dimensions)
        axis_lo = np.zeros((n_axes, n_queries), dtype=np.int64)
        axis_hi = np.full((n_axes, n_queries), -1, dtype=np.int64)
        filter_needed = np.zeros((n_axes, n_queries), dtype=bool)
        for axis, dim in enumerate(self._grid_dimensions):
            if dim in bounds:
                lows, highs = bounds[dim]
            else:
                lows = np.full(n_queries, -np.inf)
                highs = np.full(n_queries, np.inf)
            axis_lo[axis], axis_hi[axis] = axis_cell_ranges(
                self._boundaries[axis], lows, highs, self._cells_per_dim
            )
            # Vectorized filter-pruning check (see _axis_filter_needed): the
            # post-filter on this axis only matters for queries whose
            # interval does not cover every visited cell.  Phrased as the
            # negation of "provably covered" so NaN (from NaN-polluted
            # boundaries or spans) conservatively keeps the filter, exactly
            # like the scalar path.
            boundaries = self._boundaries[axis]
            lower_bound = np.where(
                axis_lo[axis] > 0, boundaries[axis_lo[axis]], self._axis_lows[axis]
            )
            upper_bound = np.where(
                axis_hi[axis] < self._cells_per_dim - 1,
                boundaries[np.minimum(axis_hi[axis] + 1, self._cells_per_dim)],
                self._axis_highs[axis],
            )
            filter_needed[axis] = ~((lows <= lower_bound) & (highs >= upper_bound))
        # Masked-out queries must enumerate no cells even when their grid
        # ranges are non-empty (the emptiness may come from another
        # attribute, or the planner routed them elsewhere) — and they must
        # not force a post-filter pass on any axis either.
        if not live.all():
            axis_hi[:, ~live] = -1
            filter_needed[:, ~live] = False
        all_cells, cells_per_query = enumerate_cells_batch(axis_lo, axis_hi, self._shape)
        if n_axes == 0:
            cells_per_query = live.astype(np.int64)
            all_cells = np.zeros(int(cells_per_query.sum()), dtype=np.int64)
        cell_qid = np.repeat(np.arange(n_queries, dtype=np.int64), cells_per_query)

        # One batched sorted-key bisection over every (query, cell) pair.
        if self._sort_dimension in bounds:
            sort_lows, sort_highs = bounds[self._sort_dimension]
        else:
            sort_lows = np.full(n_queries, -np.inf)
            sort_highs = np.full(n_queries, np.inf)
        first, last = self._bisect_cells(
            all_cells, sort_lows[cell_qid], sort_highs[cell_qid]
        )
        gathered, run_lengths = gather_ranges(first, last)
        candidates = self._row_order[gathered]
        row_qid = np.repeat(cell_qid, run_lengths)

        # One vectorized post-filter pass per attribute over the whole
        # batch.  The sort dimension is proven by the bisection; a grid
        # dimension is checked only if pruning failed for at least one
        # query, and only that query's bounds stay finite.  Tombstoned
        # rows are masked out of the gathered runs here — before the
        # fused-key merge — exactly like the scalar path's exact filter,
        # so the batch path stays one pass under deletes.  The candidate
        # set is compressed after every attribute that rejected something,
        # so later column gathers touch only the still-plausible rows —
        # same final set and order (mask selection is order-preserving),
        # substantially fewer gathered values on selective batches.
        n_examined = len(candidates)
        axis_of = {dim: axis for axis, dim in enumerate(self._grid_dimensions)}
        live = live_candidate_mask(candidates, self._tombstone)
        if live is not None and not live.all():
            candidates = candidates[live]
            row_qid = row_qid[live]
        for dim, (lows, highs) in bounds.items():
            if dim == self._sort_dimension:
                continue
            axis = axis_of.get(dim)
            if axis is not None:
                needed = filter_needed[axis]
                if not needed.any():
                    continue
                lows = np.where(needed, lows, -np.inf)
                highs = np.where(needed, highs, np.inf)
            values = self._columns[dim][candidates]
            mask = (values >= lows[row_qid]) & (values <= highs[row_qid])
            if not mask.all():
                candidates = candidates[mask]
                row_qid = row_qid[mask]
        matches = candidates
        counts = np.bincount(row_qid, minlength=n_queries)
        self.stats.record_batch(
            n_recorded,
            rows_examined=n_examined,
            rows_matched=len(matches),
            cells_visited=len(all_cells),
        )
        # row_qid is non-decreasing, so `matches` holds the per-query results
        # back to back, each in the exact order the sequential path produces.
        return matches, counts

    # ------------------------------------------------------------------
    # Memory and layout introspection
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Cell address table plus quantile boundaries.

        The row permutation and sorted-key copy model the physical
        clustering of records into sorted pages, so they count as data
        layout rather than directory overhead (consistently with the
        uniform-grid accounting).
        """
        boundary_bytes = int(sum(b.nbytes for b in self._boundaries))
        return int(self._offsets.nbytes) + boundary_bytes

    @property
    def sort_dimension(self) -> str:
        """The attribute kept sorted inside every cell."""
        return self._sort_dimension

    @property
    def grid_dimensions(self) -> Tuple[str, ...]:
        """The attributes with grid lines."""
        return self._grid_dimensions

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._shape)) if self._shape else 1

    def cell_sizes(self) -> np.ndarray:
        """Number of records per cell (page-length distribution, Figure 4a)."""
        return np.diff(self._offsets)
