"""Quantile-boundary grid file with a sorted dimension per cell (Section 6).

This is the index layout COAX builds its primary index on: a Grid File
variant where

* cell boundaries along every grid dimension are chosen from quantiles of
  the data (equal-depth, not equal-width), using the same number of grid
  lines for every attribute;
* cell addresses are laid out in the original attribute order;
* each cell stores its records contiguously, sorted by one designated
  attribute, so that attribute needs no grid lines at all — lookups on it
  use binary search inside the cell ("Sorting the rows inside pages means
  that we can reduce the dimensionality of the grid by one").

The same structure doubles as the Column Files baseline (see
:mod:`repro.indexes.column_files`).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index
from repro.indexes.uniform_grid import MAX_TOTAL_CELLS, _capped_cells_per_dim
from repro.stats.quantiles import quantile_boundaries

__all__ = ["SortedCellGridIndex"]


@register_index
class SortedCellGridIndex(MultidimensionalIndex):
    """Grid file with quantile boundaries and an in-cell sorted dimension."""

    name = "sorted_cell_grid"

    def __init__(
        self,
        table: Table,
        *,
        cells_per_dim: int = 8,
        max_cells: Optional[int] = None,
        sort_dimension: Optional[str] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        if cells_per_dim < 1:
            raise IndexBuildError("cells_per_dim must be at least 1")
        self._sort_dimension = sort_dimension or self._dimensions[-1]
        if self._sort_dimension not in self._table.schema:
            raise IndexBuildError(f"sort dimension {self._sort_dimension!r} not in schema")
        # Grid lines cover every indexed dimension except the sorted one.
        self._grid_dimensions: Tuple[str, ...] = tuple(
            dim for dim in self._dimensions if dim != self._sort_dimension
        )
        n_grid_dims = len(self._grid_dimensions)
        # Same directory-size discipline as the uniform grid: by default the
        # total cell count may not exceed the number of indexed records.
        budget = max_cells if max_cells is not None else max(16, self.n_rows)
        budget = min(budget, MAX_TOTAL_CELLS)
        self._cells_per_dim = _capped_cells_per_dim(cells_per_dim, n_grid_dims, budget)
        self._shape: Tuple[int, ...] = tuple([self._cells_per_dim] * n_grid_dims)
        self._boundaries: List[np.ndarray] = [
            quantile_boundaries(self._columns[dim], self._cells_per_dim)
            for dim in self._grid_dimensions
        ]
        self._build_cells()

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_cells(self) -> None:
        n_cells = int(np.prod(self._shape)) if self._shape else 1
        if self.n_rows == 0:
            self._row_order = np.empty(0, dtype=np.int64)
            self._offsets = np.zeros(n_cells + 1, dtype=np.int64)
            self._sorted_keys = np.empty(0, dtype=np.float64)
            return
        if self._grid_dimensions:
            cell_coordinates = [
                self._cell_of(self._columns[dim], axis)
                for axis, dim in enumerate(self._grid_dimensions)
            ]
            flat = np.ravel_multi_index(cell_coordinates, self._shape)
        else:
            flat = np.zeros(self.n_rows, dtype=np.int64)
        sort_keys = self._columns[self._sort_dimension]
        # Order rows by (cell id, sort key): records cluster per cell and are
        # sorted inside the cell, exactly the paper's page layout.
        order = np.lexsort((sort_keys, flat)).astype(np.int64)
        counts = np.bincount(flat, minlength=n_cells)
        self._row_order = order
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._sorted_keys = sort_keys[order]

    def _cell_of(self, values: np.ndarray, axis: int) -> np.ndarray:
        boundaries = self._boundaries[axis]
        return np.clip(
            np.searchsorted(boundaries, values, side="right") - 1, 0, self._cells_per_dim - 1
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def absorb_rows(self, table: Table, new_row_ids: np.ndarray) -> None:
        """Merge new rows of ``table`` into the existing grid in place.

        This is the incremental half of COAX compaction: the quantile
        boundaries learned at build time are kept (no re-quantiling), the
        new rows are assigned to cells with the existing directory, sorted
        by (cell, sort key) once, and merged into the per-cell sorted runs
        with one binary search per touched cell.  Sorting work is
        ``O(k log k + k log n)`` for ``k`` new rows; the merged arrays are
        then rewritten in one ``O(n + k)`` copy (``np.insert``), so the win
        over a rebuild is avoiding the full ``O((n + k) log (n + k))``
        re-sort and the re-quantiling, not the linear copy.

        ``table`` must contain the previously covered rows under their old
        ids plus the new rows under ``new_row_ids``.
        """
        new_row_ids = np.asarray(new_row_ids, dtype=np.int64)
        old_n = self.n_rows
        if len(new_row_ids) == 0:
            self._table = table
            return
        self._append_rows(table, new_row_ids)
        if old_n == 0:
            # The grid was built over no data, so its boundaries carry no
            # information; learn them from the first absorbed batch.
            self._boundaries = [
                quantile_boundaries(self._columns[dim], self._cells_per_dim)
                for dim in self._grid_dimensions
            ]
            self._build_cells()
            return
        k = len(new_row_ids)
        new_positions = old_n + np.arange(k, dtype=np.int64)
        if self._grid_dimensions:
            cell_coordinates = [
                self._cell_of(self._columns[dim][old_n:], axis)
                for axis, dim in enumerate(self._grid_dimensions)
            ]
            flat = np.ravel_multi_index(cell_coordinates, self._shape)
        else:
            flat = np.zeros(k, dtype=np.int64)
        keys = self._columns[self._sort_dimension][old_n:]
        order = np.lexsort((keys, flat)).astype(np.int64)
        flat_sorted = flat[order]
        keys_sorted = keys[order]
        positions_sorted = new_positions[order]
        insert_at = np.empty(k, dtype=np.int64)
        # flat_sorted is sorted, so each touched cell is one contiguous run.
        touched_cells, run_starts = np.unique(flat_sorted, return_index=True)
        run_ends = np.append(run_starts[1:], k)
        for cell, run_start, run_end in zip(touched_cells, run_starts, run_ends):
            start, stop = int(self._offsets[cell]), int(self._offsets[cell + 1])
            insert_at[run_start:run_end] = start + np.searchsorted(
                self._sorted_keys[start:stop],
                keys_sorted[run_start:run_end],
                side="right",
            )
        self._row_order = np.insert(self._row_order, insert_at, positions_sorted)
        self._sorted_keys = np.insert(self._sorted_keys, insert_at, keys_sorted)
        n_cells = self.n_cells
        counts = np.bincount(flat, minlength=n_cells)
        self._offsets[1:] += np.cumsum(counts)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _cell_range(self, axis: int, low: float, high: float) -> Tuple[int, int]:
        boundaries = self._boundaries[axis]
        lo_cell = int(np.clip(np.searchsorted(boundaries, low, side="right") - 1, 0, self._cells_per_dim - 1))
        hi_cell = int(np.clip(np.searchsorted(boundaries, high, side="right") - 1, 0, self._cells_per_dim - 1))
        return lo_cell, hi_cell

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        sort_interval = query.interval(self._sort_dimension)
        axis_ranges: List[np.ndarray] = []
        for axis, dim in enumerate(self._grid_dimensions):
            interval = query.interval(dim)
            lo_cell, hi_cell = self._cell_range(axis, interval.low, interval.high)
            axis_ranges.append(np.arange(lo_cell, hi_cell + 1))
        cells_visited = 0
        rows_examined = 0
        chunks: List[np.ndarray] = []
        combos = itertools.product(*axis_ranges) if axis_ranges else [()]
        for combo in combos:
            flat = int(np.ravel_multi_index(combo, self._shape)) if self._shape else 0
            start, stop = int(self._offsets[flat]), int(self._offsets[flat + 1])
            cells_visited += 1
            if stop <= start:
                continue
            # Binary search the sorted dimension inside the cell: a scan
            # between two bounding binary searches (Section 6).
            cell_keys = self._sorted_keys[start:stop]
            first = start + int(np.searchsorted(cell_keys, sort_interval.low, side="left"))
            last = start + int(np.searchsorted(cell_keys, sort_interval.high, side="right"))
            if last > first:
                chunks.append(self._row_order[first:last])
                rows_examined += last - first
        candidates = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        matches = self._filter_candidates(candidates, query)
        self.stats.record(
            rows_examined=rows_examined,
            rows_matched=len(matches),
            cells_visited=cells_visited,
        )
        return matches

    # ------------------------------------------------------------------
    # Memory and layout introspection
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Cell address table plus quantile boundaries.

        The row permutation and sorted-key copy model the physical
        clustering of records into sorted pages, so they count as data
        layout rather than directory overhead (consistently with the
        uniform-grid accounting).
        """
        boundary_bytes = int(sum(b.nbytes for b in self._boundaries))
        return int(self._offsets.nbytes) + boundary_bytes

    @property
    def sort_dimension(self) -> str:
        """The attribute kept sorted inside every cell."""
        return self._sort_dimension

    @property
    def grid_dimensions(self) -> Tuple[str, ...]:
        """The attributes with grid lines."""
        return self._grid_dimensions

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._shape)) if self._shape else 1

    def cell_sizes(self) -> np.ndarray:
        """Number of records per cell (page-length distribution, Figure 4a)."""
        return np.diff(self._offsets)
