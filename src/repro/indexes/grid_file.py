"""Quantile-boundary grid file with a sorted dimension per cell (Section 6).

This is the index layout COAX builds its primary index on: a Grid File
variant where

* cell boundaries along every grid dimension are chosen from quantiles of
  the data (equal-depth, not equal-width), using the same number of grid
  lines for every attribute;
* cell addresses are laid out in the original attribute order;
* each cell stores its records contiguously, sorted by one designated
  attribute, so that attribute needs no grid lines at all — lookups on it
  use binary search inside the cell ("Sorting the rows inside pages means
  that we can reduce the dimensionality of the grid by one").

The same structure doubles as the Column Files baseline (see
:mod:`repro.indexes.column_files`).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.executors import Aggregate, AggregatePartial, point_distances, select_topk
from repro.data.predicates import Rectangle, batch_bounds
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index
from repro.indexes.kernels import (
    SMALL_QUERY_CELLS,
    axis_cell_ranges,
    axis_filter_needed,
    enumerate_cells,
    enumerate_cells_batch,
    gather_ranges,
    live_candidate_mask,
    observed_axis_spans,
    prefix_sums,
    row_major_strides,
    segment_bisect,
    segment_reduce,
    segment_sum,
)
from repro.indexes.uniform_grid import MAX_TOTAL_CELLS, _capped_cells_per_dim
from repro.stats.quantiles import quantile_boundaries

__all__ = ["SortedCellGridIndex"]


@register_index
class SortedCellGridIndex(MultidimensionalIndex):
    """Grid file with quantile boundaries and an in-cell sorted dimension."""

    name = "sorted_cell_grid"

    def __init__(
        self,
        table: Table,
        *,
        cells_per_dim: int = 8,
        max_cells: Optional[int] = None,
        sort_dimension: Optional[str] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        if cells_per_dim < 1:
            raise IndexBuildError("cells_per_dim must be at least 1")
        self._sort_dimension = sort_dimension or self._dimensions[-1]
        if self._sort_dimension not in self._table.schema:
            raise IndexBuildError(f"sort dimension {self._sort_dimension!r} not in schema")
        # Grid lines cover every indexed dimension except the sorted one.
        self._grid_dimensions: Tuple[str, ...] = tuple(
            dim for dim in self._dimensions if dim != self._sort_dimension
        )
        n_grid_dims = len(self._grid_dimensions)
        # Same directory-size discipline as the uniform grid: by default the
        # total cell count may not exceed the number of indexed records.
        budget = max_cells if max_cells is not None else max(16, self.n_rows)
        budget = min(budget, MAX_TOTAL_CELLS)
        self._cells_per_dim = _capped_cells_per_dim(cells_per_dim, n_grid_dims, budget)
        self._shape: Tuple[int, ...] = tuple([self._cells_per_dim] * n_grid_dims)
        self._cell_strides: Tuple[int, ...] = row_major_strides(self._shape)
        self._boundaries: List[np.ndarray] = [
            quantile_boundaries(self._columns[dim], self._cells_per_dim)
            for dim in self._grid_dimensions
        ]
        self._compute_axis_spans()
        self._build_cells()

    # ------------------------------------------------------------------
    # Structured restore (format v6)
    # ------------------------------------------------------------------
    @classmethod
    def _restore(
        cls,
        table: Table,
        *,
        row_ids: np.ndarray,
        columns: Dict[str, np.ndarray],
        dimensions: Sequence[str],
        sort_dimension: str,
        cells_per_dim: int,
        boundaries: Sequence[np.ndarray],
        axis_lows: Sequence[float],
        axis_highs: Sequence[float],
        row_order: np.ndarray,
        offsets: np.ndarray,
        sorted_keys: np.ndarray,
    ) -> "SortedCellGridIndex":
        """Reattach a grid from persisted derived state — no rebuild.

        The quantile boundaries, the (cell, sort-key) row permutation and
        the per-cell offsets are adopted verbatim, so the restored grid is
        bit-identical to the saved one by construction and attaching costs
        O(metadata) plus mapping the arrays (nothing when they are
        memmaps).  Column arrays are taken as given — memmap-backed ones
        stay mapped.
        """
        index = cls.__new__(cls)
        index._init_restored(
            table, row_ids=row_ids, columns=columns, dimensions=dimensions
        )
        index._sort_dimension = sort_dimension
        index._grid_dimensions = tuple(
            dim for dim in index._dimensions if dim != sort_dimension
        )
        index._cells_per_dim = int(cells_per_dim)
        index._shape = tuple([index._cells_per_dim] * len(index._grid_dimensions))
        index._cell_strides = row_major_strides(index._shape)
        index._boundaries = [np.asarray(b, dtype=np.float64) for b in boundaries]
        index._axis_lows = [float(v) for v in axis_lows]
        index._axis_highs = [float(v) for v in axis_highs]
        index._row_order = np.asarray(row_order, dtype=np.int64)
        index._offsets = np.asarray(offsets, dtype=np.int64)
        index._sorted_keys = np.asarray(sorted_keys, dtype=np.float64)
        index._agg_prefix = {}
        return index

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_cells(self) -> None:
        # The aggregate prefix-sum cache is laid out over _row_order, so any
        # path that rebuilds or reshuffles the permutation must drop it.
        self._agg_prefix: Dict[str, np.ndarray] = {}
        n_cells = int(np.prod(self._shape)) if self._shape else 1
        if self.n_rows == 0:
            self._row_order = np.empty(0, dtype=np.int64)
            self._offsets = np.zeros(n_cells + 1, dtype=np.int64)
            self._sorted_keys = np.empty(0, dtype=np.float64)
            return
        if self._grid_dimensions:
            cell_coordinates = [
                self._cell_of(self._columns[dim], axis)
                for axis, dim in enumerate(self._grid_dimensions)
            ]
            flat = np.ravel_multi_index(cell_coordinates, self._shape)
        else:
            flat = np.zeros(self.n_rows, dtype=np.int64)
        sort_keys = self._columns[self._sort_dimension]
        # Order rows by (cell id, sort key): records cluster per cell and are
        # sorted inside the cell, exactly the paper's page layout.
        order = np.lexsort((sort_keys, flat)).astype(np.int64)
        counts = np.bincount(flat, minlength=n_cells)
        self._row_order = order
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._sorted_keys = sort_keys[order]

    def _cell_of(self, values: np.ndarray, axis: int) -> np.ndarray:
        boundaries = self._boundaries[axis]
        return np.clip(
            np.searchsorted(boundaries, values, side="right") - 1, 0, self._cells_per_dim - 1
        )

    def _compute_axis_spans(self) -> None:
        """Observed [min, max] per grid dimension, kept current by absorbs
        (see :func:`repro.indexes.kernels.observed_axis_spans`)."""
        self._axis_lows, self._axis_highs = observed_axis_spans(
            self._columns, self._grid_dimensions
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def absorb_rows(self, table: Table, new_row_ids: np.ndarray) -> None:
        """Merge new rows of ``table`` into the existing grid in place.

        This is the incremental half of COAX compaction: the quantile
        boundaries learned at build time are kept (no re-quantiling), the
        new rows are assigned to cells with the existing directory, sorted
        by (cell, sort key) once, and merged into the per-cell sorted runs
        with one binary search per touched cell.  Sorting work is
        ``O(k log k + k log n)`` for ``k`` new rows; the merged arrays are
        then rewritten in one ``O(n + k)`` copy (``np.insert``), so the win
        over a rebuild is avoiding the full ``O((n + k) log (n + k))``
        re-sort and the re-quantiling, not the linear copy.

        ``table`` must contain the previously covered rows under their old
        ids plus the new rows under ``new_row_ids``.
        """
        new_row_ids = np.asarray(new_row_ids, dtype=np.int64)
        old_n = self.n_rows
        if len(new_row_ids) == 0:
            self._table = table
            return
        self._append_rows(table, new_row_ids)
        if old_n == 0:
            # The grid was built over no data, so its boundaries carry no
            # information; learn them from the first absorbed batch.
            self._boundaries = [
                quantile_boundaries(self._columns[dim], self._cells_per_dim)
                for dim in self._grid_dimensions
            ]
            self._compute_axis_spans()
            self._build_cells()
            return
        k = len(new_row_ids)
        for axis, dim in enumerate(self._grid_dimensions):
            new_values = self._columns[dim][old_n:]
            self._axis_lows[axis] = min(self._axis_lows[axis], float(new_values.min()))
            self._axis_highs[axis] = max(self._axis_highs[axis], float(new_values.max()))
        new_positions = old_n + np.arange(k, dtype=np.int64)
        if self._grid_dimensions:
            cell_coordinates = [
                self._cell_of(self._columns[dim][old_n:], axis)
                for axis, dim in enumerate(self._grid_dimensions)
            ]
            flat = np.ravel_multi_index(cell_coordinates, self._shape)
        else:
            flat = np.zeros(k, dtype=np.int64)
        keys = self._columns[self._sort_dimension][old_n:]
        order = np.lexsort((keys, flat)).astype(np.int64)
        flat_sorted = flat[order]
        keys_sorted = keys[order]
        positions_sorted = new_positions[order]
        insert_at = np.empty(k, dtype=np.int64)
        # flat_sorted is sorted, so each touched cell is one contiguous run.
        touched_cells, run_starts = np.unique(flat_sorted, return_index=True)
        run_ends = np.append(run_starts[1:], k)
        for cell, run_start, run_end in zip(touched_cells, run_starts, run_ends):
            start, stop = int(self._offsets[cell]), int(self._offsets[cell + 1])
            insert_at[run_start:run_end] = start + np.searchsorted(
                self._sorted_keys[start:stop],
                keys_sorted[run_start:run_end],
                side="right",
            )
        self._row_order = np.insert(self._row_order, insert_at, positions_sorted)
        self._sorted_keys = np.insert(self._sorted_keys, insert_at, keys_sorted)
        self._agg_prefix = {}
        n_cells = self.n_cells
        counts = np.bincount(flat, minlength=n_cells)
        self._offsets[1:] += np.cumsum(counts)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _cell_range(self, axis: int, low: float, high: float) -> Tuple[int, int]:
        boundaries = self._boundaries[axis]
        lo_cell = int(np.clip(np.searchsorted(boundaries, low, side="right") - 1, 0, self._cells_per_dim - 1))
        hi_cell = int(np.clip(np.searchsorted(boundaries, high, side="right") - 1, 0, self._cells_per_dim - 1))
        return lo_cell, hi_cell

    def _axis_filter_needed(self, axis: int, low: float, high: float, lo_cell: int, hi_cell: int) -> bool:
        """Scalar filter-pruning check for one grid axis
        (see :func:`repro.indexes.kernels.axis_filter_needed`)."""
        return axis_filter_needed(
            low,
            high,
            lo_cell,
            hi_cell,
            self._boundaries[axis],
            self._cells_per_dim,
            self._axis_lows[axis],
            self._axis_highs[axis],
        )

    def _pruned_filter_dims(
        self, query: Rectangle, lo_cells: Sequence[int], hi_cells: Sequence[int]
    ) -> List[str]:
        """Grid dimensions whose exact post-filter is provably redundant.

        The filter-pruning invariant (see :meth:`_axis_filter_needed`):
        when a query interval fully covers every visited cell along an
        axis, no candidate row can violate it, so its column gather is
        skipped.  Constraints on non-indexed attributes are never pruned.
        """
        pruned: List[str] = []
        for axis, dim in enumerate(self._grid_dimensions):
            if not query.constrains(dim):
                continue
            interval = query.interval(dim)
            if not self._axis_filter_needed(
                axis, interval.low, interval.high, int(lo_cells[axis]), int(hi_cells[axis])
            ):
                pruned.append(dim)
        return pruned

    def _axis_cell_spans(self, query: Rectangle) -> Tuple[List[int], List[int]]:
        """Inclusive per-axis cell ranges the query overlaps."""
        lo_cells: List[int] = []
        hi_cells: List[int] = []
        for axis, dim in enumerate(self._grid_dimensions):
            interval = query.interval(dim)
            lo_cell, hi_cell = self._cell_range(axis, interval.low, interval.high)
            lo_cells.append(lo_cell)
            hi_cells.append(hi_cell)
        return lo_cells, hi_cells

    def _bisect_cells(
        self, cells: np.ndarray, lows: np.ndarray, highs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cell ``[first, last)`` key runs for per-cell sort-key bounds.

        One batched bisection over all cells (of one query or of a whole
        batch) instead of two Python-dispatched ``searchsorted`` calls per
        cell.  The upper search starts from the lower result — valid because
        ``last >= first`` whenever the interval is non-empty.
        """
        starts = self._offsets[cells]
        stops = self._offsets[cells + 1]
        first = segment_bisect(self._sorted_keys, starts, stops, lows, side="left")
        last = segment_bisect(self._sorted_keys, first, stops, highs, side="right")
        return first, last

    #: Hybrid switch between the scalar per-cell path and the batched
    #: kernels (shared grid-family constant; results are identical on both
    #: sides).
    SMALL_QUERY_CELLS = SMALL_QUERY_CELLS

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        sort_interval = query.interval(self._sort_dimension)
        lo_cells, hi_cells = self._axis_cell_spans(query)
        n_cells = 1
        for lo_cell, hi_cell in zip(lo_cells, hi_cells):
            n_cells *= hi_cell - lo_cell + 1
        skip_dims: List[str] = [self._sort_dimension]  # the bisection is exact
        if n_cells <= self.SMALL_QUERY_CELLS:
            # Scalar path: enumerate the few cells with plain integer
            # stride math and scan each between two bounding binary
            # searches (Section 6) — lowest constant cost for point-like
            # queries.  Pruning analysis is not worth its overhead here.
            strides = self._cell_strides
            chunks: List[np.ndarray] = []
            rows_examined = 0
            offsets = self._offsets
            keys = self._sorted_keys
            for combo in itertools.product(
                *(
                    range(lo_cell, hi_cell + 1)
                    for lo_cell, hi_cell in zip(lo_cells, hi_cells)
                )
            ):
                flat = sum(index * stride for index, stride in zip(combo, strides))
                start, stop = int(offsets[flat]), int(offsets[flat + 1])
                if stop <= start:
                    continue
                cell_keys = keys[start:stop]
                first = start + int(np.searchsorted(cell_keys, sort_interval.low, side="left"))
                last = start + int(np.searchsorted(cell_keys, sort_interval.high, side="right"))
                if last > first:
                    chunks.append(self._row_order[first:last])
                    rows_examined += last - first
            candidates = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
        else:
            cells = enumerate_cells(lo_cells, hi_cells, self._shape)
            # Kernel path: one batched bisection over the whole cell
            # hyper-rectangle plus one gathered copy of all surviving runs.
            first, last = self._bisect_cells(
                cells,
                np.full(len(cells), sort_interval.low),
                np.full(len(cells), sort_interval.high),
            )
            gathered, _ = gather_ranges(first, last)
            candidates = self._row_order[gathered]
            rows_examined = len(candidates)
            skip_dims.extend(self._pruned_filter_dims(query, lo_cells, hi_cells))
        matches = self._filter_candidates(candidates, query, skip_dims)
        self.stats.record(
            rows_examined=rows_examined,
            rows_matched=len(matches),
            cells_visited=n_cells,
        )
        return matches

    # ------------------------------------------------------------------
    # Batch query
    # ------------------------------------------------------------------
    def batch_range_query(self, queries: Sequence[Rectangle]) -> List[np.ndarray]:
        """Original row ids for every query of a batch, sharing directory work.

        The batch path computes all queries' cell ranges with one vectorized
        boundary bisection per axis, bisects the sorted dimension of every
        (query, cell) pair in one batched kernel call, gathers all candidate
        runs at once and applies one vectorized post-filter pass per
        attribute over the whole batch.  Results are bit-identical to
        ``[range_query(q) for q in queries]``.
        """
        row_ids, counts = self.batch_range_query_flat(queries)
        return np.split(row_ids, np.cumsum(counts)[:-1]) if len(counts) else []

    def batch_range_query_flat(
        self, queries: Sequence[Rectangle]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat form of :meth:`batch_range_query` (see the base class)."""
        queries = list(queries)
        if not queries:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        n_queries = len(queries)
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        return self.batch_flat_from_bounds(bounds, n_queries, live, n_queries)

    def batch_flat_from_bounds(
        self,
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        n_queries: int,
        execute: np.ndarray,
        n_recorded: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat batch results for an already-columnar query batch.

        ``bounds`` is the per-attribute bound-matrix form of the batch (see
        :func:`repro.data.predicates.batch_bounds`); ``execute`` masks the
        queries to actually run (the rest report zero results), and
        ``n_recorded`` is how many logical queries the stats should count —
        compound callers like COAX route only a planner-chosen subset here
        while empty queries still count.  This array-level entry point lets
        COAX feed translated bound matrices straight into the grid kernels
        without materialising per-query rectangles.
        """
        if self.n_rows == 0:
            self.stats.record_batch(n_recorded)
            return np.empty(0, dtype=np.int64), np.zeros(n_queries, dtype=np.int64)
        matches, counts = self._batch_positions_from_bounds(
            bounds, n_queries, execute, n_recorded
        )
        return self._row_ids[matches], counts

    def _batch_positions_from_bounds(
        self,
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        n_queries: int,
        live: np.ndarray,
        n_recorded: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat positional matches plus per-query counts for a batch."""
        # Per-axis cell ranges for the whole batch: one searchsorted pair
        # per axis instead of one per (query, axis).
        n_axes = len(self._grid_dimensions)
        axis_lo = np.zeros((n_axes, n_queries), dtype=np.int64)
        axis_hi = np.full((n_axes, n_queries), -1, dtype=np.int64)
        filter_needed = np.zeros((n_axes, n_queries), dtype=bool)
        for axis, dim in enumerate(self._grid_dimensions):
            if dim in bounds:
                lows, highs = bounds[dim]
            else:
                lows = np.full(n_queries, -np.inf)
                highs = np.full(n_queries, np.inf)
            axis_lo[axis], axis_hi[axis] = axis_cell_ranges(
                self._boundaries[axis], lows, highs, self._cells_per_dim
            )
            # Vectorized filter-pruning check (see _axis_filter_needed): the
            # post-filter on this axis only matters for queries whose
            # interval does not cover every visited cell.  Phrased as the
            # negation of "provably covered" so NaN (from NaN-polluted
            # boundaries or spans) conservatively keeps the filter, exactly
            # like the scalar path.
            boundaries = self._boundaries[axis]
            lower_bound = np.where(
                axis_lo[axis] > 0, boundaries[axis_lo[axis]], self._axis_lows[axis]
            )
            upper_bound = np.where(
                axis_hi[axis] < self._cells_per_dim - 1,
                boundaries[np.minimum(axis_hi[axis] + 1, self._cells_per_dim)],
                self._axis_highs[axis],
            )
            filter_needed[axis] = ~((lows <= lower_bound) & (highs >= upper_bound))
        # Masked-out queries must enumerate no cells even when their grid
        # ranges are non-empty (the emptiness may come from another
        # attribute, or the planner routed them elsewhere) — and they must
        # not force a post-filter pass on any axis either.
        if not live.all():
            axis_hi[:, ~live] = -1
            filter_needed[:, ~live] = False
        all_cells, cells_per_query = enumerate_cells_batch(axis_lo, axis_hi, self._shape)
        if n_axes == 0:
            cells_per_query = live.astype(np.int64)
            all_cells = np.zeros(int(cells_per_query.sum()), dtype=np.int64)
        cell_qid = np.repeat(np.arange(n_queries, dtype=np.int64), cells_per_query)

        # One batched sorted-key bisection over every (query, cell) pair.
        if self._sort_dimension in bounds:
            sort_lows, sort_highs = bounds[self._sort_dimension]
        else:
            sort_lows = np.full(n_queries, -np.inf)
            sort_highs = np.full(n_queries, np.inf)
        first, last = self._bisect_cells(
            all_cells, sort_lows[cell_qid], sort_highs[cell_qid]
        )
        gathered, run_lengths = gather_ranges(first, last)
        candidates = self._row_order[gathered]
        row_qid = np.repeat(cell_qid, run_lengths)

        # One vectorized post-filter pass per attribute over the whole
        # batch.  The sort dimension is proven by the bisection; a grid
        # dimension is checked only if pruning failed for at least one
        # query, and only that query's bounds stay finite.  Tombstoned
        # rows are masked out of the gathered runs here — before the
        # fused-key merge — exactly like the scalar path's exact filter,
        # so the batch path stays one pass under deletes.  The candidate
        # set is compressed after every attribute that rejected something,
        # so later column gathers touch only the still-plausible rows —
        # same final set and order (mask selection is order-preserving),
        # substantially fewer gathered values on selective batches.
        n_examined = len(candidates)
        axis_of = {dim: axis for axis, dim in enumerate(self._grid_dimensions)}
        live = live_candidate_mask(candidates, self._tombstone)
        if live is not None and not live.all():
            candidates = candidates[live]
            row_qid = row_qid[live]
        for dim, (lows, highs) in bounds.items():
            if dim == self._sort_dimension:
                continue
            axis = axis_of.get(dim)
            if axis is not None:
                needed = filter_needed[axis]
                if not needed.any():
                    continue
                lows = np.where(needed, lows, -np.inf)
                highs = np.where(needed, highs, np.inf)
            values = self._columns[dim][candidates]
            mask = (values >= lows[row_qid]) & (values <= highs[row_qid])
            if not mask.all():
                candidates = candidates[mask]
                row_qid = row_qid[mask]
        matches = candidates
        counts = np.bincount(row_qid, minlength=n_queries)
        self.stats.record_batch(
            n_recorded,
            rows_examined=n_examined,
            rows_matched=len(matches),
            cells_visited=len(all_cells),
        )
        # row_qid is non-decreasing, so `matches` holds the per-query results
        # back to back, each in the exact order the sequential path produces.
        return matches, counts

    # ------------------------------------------------------------------
    # Aggregate pushdown
    # ------------------------------------------------------------------
    def _column_prefix(self, column: str) -> np.ndarray:
        """Prefix sums of ``column`` in ``_row_order`` layout (lazy, cached).

        One ``O(n)`` gather+cumsum per column, amortised over every SUM/AVG
        pushdown: a covered candidate run ``[first, last)`` then folds to
        its exact total with one subtraction and zero value gathers.
        Invalidated whenever the row permutation changes.
        """
        prefix = self._agg_prefix.get(column)
        if prefix is None:
            prefix = prefix_sums(self._columns[column][self._row_order])
            self._agg_prefix[column] = prefix
        return prefix

    def batch_aggregate_partial(
        self, queries: Sequence[Rectangle], spec: Aggregate
    ) -> AggregatePartial:
        """Grid pushdown of :meth:`MultidimensionalIndex.batch_aggregate_partial`."""
        queries = list(queries)
        n_queries = len(queries)
        if not n_queries:
            return AggregatePartial.identity(0)
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        return self.batch_aggregate_from_bounds(bounds, n_queries, live, n_queries, spec)

    def batch_aggregate_from_bounds(
        self,
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        n_queries: int,
        execute: np.ndarray,
        n_recorded: int,
        spec: Aggregate,
    ) -> AggregatePartial:
        """Fold a columnar query batch into per-query aggregate accumulators.

        The run-level pushdown: candidate (query, cell) runs are found
        exactly like the materialising batch path, but a run that is
        *provably exact* — every overlapped grid axis either fully covered
        by the query interval (no post-filter) or the cell strictly
        interior to the query's cell box, no constrained non-grid
        attributes, no tombstones; the sorted dimension is always exact by
        bisection — is folded without gathering anything:

        * COUNT adds the run length;
        * SUM/AVG add the run total from the :meth:`_column_prefix` cache
          (one subtraction per run);
        * MIN/MAX gather the run's *values* (never its row ids) and fold
          them per run with :func:`repro.indexes.kernels.segment_reduce`.

        Only the remaining boundary/unprovable runs gather values and take
        the exact post-filter, so ``rows_examined`` — which counts gathered
        rows only — collapses for covered aggregates.  Row ids are never
        materialised on any branch, which the repro-lint materialize pass
        and the gather-interception test both enforce.
        """
        partial = AggregatePartial.identity(n_queries)
        if self.n_rows == 0:
            self.stats.record_batch(n_recorded, aggregates=n_recorded)
            return partial
        n_axes = len(self._grid_dimensions)
        axis_lo = np.zeros((n_axes, n_queries), dtype=np.int64)
        axis_hi = np.full((n_axes, n_queries), -1, dtype=np.int64)
        filter_needed = np.zeros((n_axes, n_queries), dtype=bool)
        for axis, dim in enumerate(self._grid_dimensions):
            if dim in bounds:
                lows, highs = bounds[dim]
            else:
                lows = np.full(n_queries, -np.inf)
                highs = np.full(n_queries, np.inf)
            axis_lo[axis], axis_hi[axis] = axis_cell_ranges(
                self._boundaries[axis], lows, highs, self._cells_per_dim
            )
            boundaries = self._boundaries[axis]
            lower_bound = np.where(
                axis_lo[axis] > 0, boundaries[axis_lo[axis]], self._axis_lows[axis]
            )
            upper_bound = np.where(
                axis_hi[axis] < self._cells_per_dim - 1,
                boundaries[np.minimum(axis_hi[axis] + 1, self._cells_per_dim)],
                self._axis_highs[axis],
            )
            filter_needed[axis] = ~((lows <= lower_bound) & (highs >= upper_bound))
        execute = np.asarray(execute, dtype=bool)
        if not execute.all():
            axis_hi[:, ~execute] = -1
            filter_needed[:, ~execute] = False
        all_cells, cells_per_query = enumerate_cells_batch(axis_lo, axis_hi, self._shape)
        if n_axes == 0:
            cells_per_query = execute.astype(np.int64)
            all_cells = np.zeros(int(cells_per_query.sum()), dtype=np.int64)
        cell_qid = np.repeat(np.arange(n_queries, dtype=np.int64), cells_per_query)

        if self._sort_dimension in bounds:
            sort_lows, sort_highs = bounds[self._sort_dimension]
        else:
            sort_lows = np.full(n_queries, -np.inf)
            sort_highs = np.full(n_queries, np.inf)
        first, last = self._bisect_cells(
            all_cells, sort_lows[cell_qid], sort_highs[cell_qid]
        )

        # Which runs are provably exact without the post-filter?  A query
        # is fold-eligible only if nothing outside the grid + sorted
        # dimensions constrains it and no tombstone hides inside the runs
        # (run lengths cannot see deletes).
        grid_dims = set(self._grid_dimensions)
        eligible = np.ones(n_queries, dtype=bool) if self._n_tombstoned == 0 else np.zeros(n_queries, dtype=bool)
        if self._n_tombstoned == 0:
            for dim, (lows, highs) in bounds.items():
                if dim == self._sort_dimension or dim in grid_dims:
                    continue
                eligible &= np.isinf(lows) & np.isinf(highs) & (lows < 0) & (highs > 0)
        covered_run = eligible[cell_qid]
        if n_axes and len(all_cells):
            for axis in range(n_axes):
                coords = (all_cells // self._cell_strides[axis]) % self._cells_per_dim
                interior = (coords > axis_lo[axis][cell_qid]) & (
                    coords < axis_hi[axis][cell_qid]
                )
                covered_run &= interior | ~filter_needed[axis][cell_qid]

        values = self._columns[spec.column] if spec.column is not None else None
        run_lengths_all = last - first
        folded = covered_run & (run_lengths_all > 0)
        folded_examined = 0
        if folded.any():
            fold_qids = cell_qid[folded]
            fold_first = first[folded]
            fold_last = last[folded]
            fold_lengths = run_lengths_all[folded]
            partial.add_run_counts(fold_qids, fold_lengths)
            if spec.op in ("sum", "avg") and spec.column is not None:
                prefix = self._column_prefix(spec.column)
                partial.add_run_totals(
                    fold_qids, segment_sum(prefix, fold_first, fold_last)
                )
            elif spec.op in ("min", "max"):
                gathered, lengths = gather_ranges(fold_first, fold_last)
                run_values = values[self._row_order[gathered]]
                folded_examined = len(run_values)
                extremes = segment_reduce(run_values, lengths, spec.op)
                if spec.op == "min":
                    np.minimum.at(partial.minimum, fold_qids, extremes)
                else:
                    np.maximum.at(partial.maximum, fold_qids, extremes)

        # Gather path for the boundary / unprovable runs: exactly the
        # materialising batch path's post-filter, folding *values* at the
        # surviving positions instead of returning their row ids.
        # ``rows_examined`` counts gathered candidate rows (here, plus the
        # MIN/MAX run-value gathers above) — the metric the agg-bench gate
        # compares against materialize-then-reduce.
        n_examined = int(folded_examined)
        remaining = ~covered_run
        if remaining.any():
            gathered, run_lengths = gather_ranges(first[remaining], last[remaining])
            candidates = self._row_order[gathered]
            row_qid = np.repeat(cell_qid[remaining], run_lengths)
            n_examined += len(candidates)
            live_mask = live_candidate_mask(candidates, self._tombstone)
            if live_mask is not None and not live_mask.all():
                candidates = candidates[live_mask]
                row_qid = row_qid[live_mask]
            axis_of = {dim: axis for axis, dim in enumerate(self._grid_dimensions)}
            for dim, (lows, highs) in bounds.items():
                if dim == self._sort_dimension:
                    continue
                axis = axis_of.get(dim)
                if axis is not None:
                    needed = filter_needed[axis]
                    if not needed.any():
                        continue
                    lows = np.where(needed, lows, -np.inf)
                    highs = np.where(needed, highs, np.inf)
                column = self._columns[dim][candidates]
                mask = (column >= lows[row_qid]) & (column <= highs[row_qid])
                if not mask.all():
                    candidates = candidates[mask]
                    row_qid = row_qid[mask]
            partial.fold_values(
                row_qid, values[candidates] if values is not None else None
            )
        self.stats.record_batch(
            n_recorded,
            rows_examined=n_examined,
            rows_matched=int(partial.count.sum()),
            cells_visited=len(all_cells),
            aggregates=n_recorded,
        )
        return partial

    # ------------------------------------------------------------------
    # kNN (expanding-ring search over the grid directory)
    # ------------------------------------------------------------------
    def knn_partial(
        self,
        point,
        k: int,
        *,
        metric: str = "l2",
        aux_axes: Optional[Dict[int, Tuple[float, float, float]]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expanding-ring kNN over the grid directory.

        The search keeps an inclusive cell box per grid axis.  An axis is
        *bounded* when the query point constrains it — directly (the axis
        attribute is in the point) or through an FD translation supplied
        as ``aux_axes[axis] = (coordinate, scale, slack)``, meaning every
        covered row satisfies ``|v_dep - y| >= scale·|v_axis - coordinate|
        - slack`` for the point's dependent attribute ``y``.  Bounded axes
        seed at the coordinate's cell; information-less axes start at full
        span (a row outside the box on such an axis could be at distance
        zero, so they may never prune).

        Each iteration scans the not-yet-visited cells of the box exactly
        (true distances on the real columns), then compares the running
        k-th distance key against ``d_min`` — the smallest distance any
        row *outside* the box could have, the minimum over bounded axes of
        the value gap between the point and the box edge's boundary
        (squared for L2, matching the monotone keys).  The search stops
        only when ``kth < d_min`` *strictly*: on equality an unvisited row
        could tie the key with a smaller row id, and the library-wide
        ``(key, row_id)`` tie-break must win.  Otherwise the box grows one
        cell toward the nearer side per bounded axis (one
        ``rings_expanded`` increment per growth round) until it covers the
        directory.
        """
        if self.n_rows == 0:
            self.stats.record(knn_queries=1)
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        n_axes = len(self._grid_dimensions)
        aux = dict(aux_axes or {})
        # (coordinate, scale, slack) per bounded axis; None = information-less.
        targets: List[Optional[Tuple[float, float, float]]] = []
        for axis, dim in enumerate(self._grid_dimensions):
            if dim in point:
                targets.append((float(point[dim]), 1.0, 0.0))
            elif axis in aux:
                targets.append(tuple(float(v) for v in aux[axis]))
            else:
                targets.append(None)
        lo = np.zeros(max(n_axes, 1), dtype=np.int64)
        hi = np.full(max(n_axes, 1), self._cells_per_dim - 1, dtype=np.int64)
        for axis in range(n_axes):
            target = targets[axis]
            if target is not None:
                cell = int(
                    np.clip(
                        np.searchsorted(self._boundaries[axis], target[0], side="right") - 1,
                        0,
                        self._cells_per_dim - 1,
                    )
                )
                lo[axis] = hi[axis] = cell
        visited = np.zeros(self.n_cells, dtype=bool)
        best_keys = np.empty(0, dtype=np.float64)
        best_ids = np.empty(0, dtype=np.int64)
        rows_examined = 0
        cells_seen = 0
        rings = 0
        while True:
            if n_axes:
                cells = enumerate_cells(lo.tolist(), hi.tolist(), self._shape)
            else:
                cells = np.zeros(1, dtype=np.int64)
            new_cells = cells[~visited[cells]]
            visited[new_cells] = True
            cells_seen += len(new_cells)
            if len(new_cells):
                gathered, _ = gather_ranges(
                    self._offsets[new_cells], self._offsets[new_cells + 1]
                )
                positions = self._row_order[gathered]
                live_mask = live_candidate_mask(positions, self._tombstone)
                if live_mask is not None:
                    positions = positions[live_mask]
                if len(positions):
                    rows_examined += len(positions)
                    keys = point_distances(self._columns, positions, point, metric)
                    best_keys, best_ids = select_topk(
                        np.concatenate([best_keys, keys]),
                        np.concatenate([best_ids, self._row_ids[positions]]),
                        k,
                    )
            # Smallest distance key any row outside the current box could
            # carry, and which bounded axes can still grow (and which side
            # of each is nearer).
            d_min = np.inf
            growable: List[Tuple[int, bool]] = []  # (axis, grow_left)
            for axis in range(n_axes):
                target = targets[axis]
                if target is None:
                    continue
                value, scale, slack = target
                boundaries = self._boundaries[axis]
                left_gap = (
                    max(0.0, value - float(boundaries[lo[axis]]))
                    if lo[axis] > 0
                    else np.inf
                )
                right_gap = (
                    max(0.0, float(boundaries[hi[axis] + 1]) - value)
                    if hi[axis] < self._cells_per_dim - 1
                    else np.inf
                )
                axis_gap = min(
                    max(0.0, scale * left_gap - slack) if np.isfinite(left_gap) else np.inf,
                    max(0.0, scale * right_gap - slack) if np.isfinite(right_gap) else np.inf,
                )
                d_min = min(d_min, axis_gap)
                if lo[axis] > 0 or hi[axis] < self._cells_per_dim - 1:
                    growable.append((axis, left_gap <= right_gap and lo[axis] > 0))
            d_min_key = d_min * d_min if (metric == "l2" and np.isfinite(d_min)) else d_min
            if len(best_ids) >= k and float(best_keys[k - 1]) < d_min_key:
                break
            if not growable:
                break
            rings += 1
            for axis, grow_left in growable:
                if grow_left:
                    lo[axis] -= 1
                elif hi[axis] < self._cells_per_dim - 1:
                    hi[axis] += 1
                else:
                    lo[axis] -= 1
        self.stats.record(
            rows_examined=rows_examined,
            cells_visited=cells_seen,
            knn_queries=1,
            rings_expanded=rings,
        )
        return best_keys, best_ids

    # ------------------------------------------------------------------
    # Memory and layout introspection
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Cell address table plus quantile boundaries.

        The row permutation and sorted-key copy model the physical
        clustering of records into sorted pages, so they count as data
        layout rather than directory overhead (consistently with the
        uniform-grid accounting).
        """
        boundary_bytes = int(sum(b.nbytes for b in self._boundaries))
        return int(self._offsets.nbytes) + boundary_bytes

    @property
    def sort_dimension(self) -> str:
        """The attribute kept sorted inside every cell."""
        return self._sort_dimension

    @property
    def grid_dimensions(self) -> Tuple[str, ...]:
        """The attributes with grid lines."""
        return self._grid_dimensions

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._shape)) if self._shape else 1

    def cell_sizes(self) -> np.ndarray:
        """Number of records per cell (page-length distribution, Figure 4a)."""
        return np.diff(self._offsets)
