"""Uniform ("full") grid baseline.

Section 8.1.3: "Uniform grid: or equivalently the full grid, is a hash
structure that breaks down each attribute into uniformly sized grid cells
between their minimum and maximum values.  The address for each cell is
stored independently and no adjacent cells are shared/merged explicitly.
In memory, addresses for all cells are sorted using the original ordering
of attributes in the dataset.  Furthermore, each cell stores points in a
contiguous block of virtual memory in a row store format."

The implementation clusters the rows by cell (CSR layout: a permutation of
row positions plus per-cell offsets).  The permutation models the physical
clustering of records into cells and is therefore *not* counted as directory
overhead; the directory is the per-cell address table plus the axis
boundaries, which is what grows exponentially with the number of dimensions
and limits how many cells the full grid can afford (Section 8.2.2).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index
from repro.stats.quantiles import uniform_boundaries

__all__ = ["UniformGridIndex"]

#: Hard cap on the total number of cells so a mis-tuned configuration cannot
#: exhaust memory; the paper applies the same kind of cap by refusing grids
#: whose directory exceeds the data size.
MAX_TOTAL_CELLS = 4_000_000


def _capped_cells_per_dim(requested: int, n_dims: int, budget_cells: int) -> int:
    """Largest per-dimension cell count not exceeding the total cell budget."""
    if n_dims <= 0:
        return max(1, int(requested))
    capped = int(requested)
    while capped > 1 and capped**n_dims > budget_cells:
        capped -= 1
    return max(1, capped)


@register_index
class UniformGridIndex(MultidimensionalIndex):
    """Equi-width grid over every indexed dimension."""

    name = "uniform_grid"

    def __init__(
        self,
        table: Table,
        *,
        cells_per_dim: int = 8,
        max_cells: Optional[int] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        if cells_per_dim < 1:
            raise IndexBuildError("cells_per_dim must be at least 1")
        n_dims = len(self._dimensions)
        # The paper limits every index to a directory no larger than the data
        # it covers (Section 8.2.1); by default the cell budget is therefore
        # one cell per indexed record, which caps the per-dimension cell
        # count for high-dimensional tables.
        budget = max_cells if max_cells is not None else max(16, self.n_rows)
        budget = min(budget, MAX_TOTAL_CELLS)
        self._cells_per_dim = _capped_cells_per_dim(cells_per_dim, n_dims, budget)
        self._shape: Tuple[int, ...] = tuple([self._cells_per_dim] * n_dims)
        self._boundaries: List[np.ndarray] = [
            uniform_boundaries(self._columns[dim], self._cells_per_dim)
            for dim in self._dimensions
        ]
        self._build_cells()

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_cells(self) -> None:
        n_cells = int(np.prod(self._shape)) if self._shape else 1
        if self.n_rows == 0:
            self._row_order = np.empty(0, dtype=np.int64)
            self._offsets = np.zeros(n_cells + 1, dtype=np.int64)
            return
        cell_coordinates = [
            self._cell_of(self._columns[dim], axis) for axis, dim in enumerate(self._dimensions)
        ]
        flat = np.ravel_multi_index(cell_coordinates, self._shape) if self._shape else np.zeros(
            self.n_rows, dtype=np.int64
        )
        order = np.argsort(flat, kind="stable").astype(np.int64)
        counts = np.bincount(flat, minlength=n_cells)
        self._row_order = order
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    def _cell_of(self, values: np.ndarray, axis: int) -> np.ndarray:
        boundaries = self._boundaries[axis]
        return np.clip(
            np.searchsorted(boundaries, values, side="right") - 1, 0, self._cells_per_dim - 1
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _cell_range(self, axis: int, low: float, high: float) -> Tuple[int, int]:
        """Inclusive range of cell indices along ``axis`` overlapping [low, high]."""
        boundaries = self._boundaries[axis]
        lo_cell = int(np.clip(np.searchsorted(boundaries, low, side="right") - 1, 0, self._cells_per_dim - 1))
        hi_cell = int(np.clip(np.searchsorted(boundaries, high, side="right") - 1, 0, self._cells_per_dim - 1))
        return lo_cell, hi_cell

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        axis_ranges: List[np.ndarray] = []
        for axis, dim in enumerate(self._dimensions):
            interval = query.interval(dim)
            lo_cell, hi_cell = self._cell_range(axis, interval.low, interval.high)
            axis_ranges.append(np.arange(lo_cell, hi_cell + 1))
        cells_visited = 0
        chunks: List[np.ndarray] = []
        for combo in itertools.product(*axis_ranges):
            flat = int(np.ravel_multi_index(combo, self._shape)) if self._shape else 0
            start, stop = self._offsets[flat], self._offsets[flat + 1]
            cells_visited += 1
            if stop > start:
                chunks.append(self._row_order[start:stop])
        candidates = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        matches = self._filter_candidates(candidates, query)
        self.stats.record(
            rows_examined=len(candidates),
            rows_matched=len(matches),
            cells_visited=cells_visited,
        )
        return matches

    # ------------------------------------------------------------------
    # Memory and layout introspection
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Cell address table plus axis boundaries (the exponential part)."""
        boundary_bytes = int(sum(b.nbytes for b in self._boundaries))
        return int(self._offsets.nbytes) + boundary_bytes

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._shape)) if self._shape else 1

    def cell_sizes(self) -> np.ndarray:
        """Number of records per cell (the "page length" histogram of Figure 4a)."""
        return np.diff(self._offsets)
