"""Uniform ("full") grid baseline.

Section 8.1.3: "Uniform grid: or equivalently the full grid, is a hash
structure that breaks down each attribute into uniformly sized grid cells
between their minimum and maximum values.  The address for each cell is
stored independently and no adjacent cells are shared/merged explicitly.
In memory, addresses for all cells are sorted using the original ordering
of attributes in the dataset.  Furthermore, each cell stores points in a
contiguous block of virtual memory in a row store format."

The implementation clusters the rows by cell (CSR layout: a permutation of
row positions plus per-cell offsets).  The permutation models the physical
clustering of records into cells and is therefore *not* counted as directory
overhead; the directory is the per-cell address table plus the axis
boundaries, which is what grows exponentially with the number of dimensions
and limits how many cells the full grid can afford (Section 8.2.2).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index
from repro.indexes.kernels import (
    SMALL_QUERY_CELLS,
    axis_filter_needed,
    enumerate_cells,
    gather_ranges,
    observed_axis_spans,
    row_major_strides,
)
from repro.stats.quantiles import uniform_boundaries

__all__ = ["UniformGridIndex"]

#: Hard cap on the total number of cells so a mis-tuned configuration cannot
#: exhaust memory; the paper applies the same kind of cap by refusing grids
#: whose directory exceeds the data size.
MAX_TOTAL_CELLS = 4_000_000


def _capped_cells_per_dim(requested: int, n_dims: int, budget_cells: int) -> int:
    """Largest per-dimension cell count not exceeding the total cell budget."""
    if n_dims <= 0:
        return max(1, int(requested))
    capped = int(requested)
    while capped > 1 and capped**n_dims > budget_cells:
        capped -= 1
    return max(1, capped)


@register_index
class UniformGridIndex(MultidimensionalIndex):
    """Equi-width grid over every indexed dimension."""

    name = "uniform_grid"

    def __init__(
        self,
        table: Table,
        *,
        cells_per_dim: int = 8,
        max_cells: Optional[int] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        if cells_per_dim < 1:
            raise IndexBuildError("cells_per_dim must be at least 1")
        n_dims = len(self._dimensions)
        # The paper limits every index to a directory no larger than the data
        # it covers (Section 8.2.1); by default the cell budget is therefore
        # one cell per indexed record, which caps the per-dimension cell
        # count for high-dimensional tables.
        budget = max_cells if max_cells is not None else max(16, self.n_rows)
        budget = min(budget, MAX_TOTAL_CELLS)
        self._cells_per_dim = _capped_cells_per_dim(cells_per_dim, n_dims, budget)
        self._shape: Tuple[int, ...] = tuple([self._cells_per_dim] * n_dims)
        self._cell_strides: Tuple[int, ...] = row_major_strides(self._shape)
        self._boundaries: List[np.ndarray] = [
            uniform_boundaries(self._columns[dim], self._cells_per_dim)
            for dim in self._dimensions
        ]
        # Observed [min, max] per axis: the edge cells are clipped
        # catch-alls, so filter pruning needs the real data span to prove a
        # query interval covers everything a visited edge cell can hold.
        self._axis_lows, self._axis_highs = observed_axis_spans(
            self._columns, self._dimensions
        )
        self._build_cells()

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_cells(self) -> None:
        n_cells = int(np.prod(self._shape)) if self._shape else 1
        if self.n_rows == 0:
            self._row_order = np.empty(0, dtype=np.int64)
            self._offsets = np.zeros(n_cells + 1, dtype=np.int64)
            return
        cell_coordinates = [
            self._cell_of(self._columns[dim], axis) for axis, dim in enumerate(self._dimensions)
        ]
        flat = np.ravel_multi_index(cell_coordinates, self._shape) if self._shape else np.zeros(
            self.n_rows, dtype=np.int64
        )
        order = np.argsort(flat, kind="stable").astype(np.int64)
        counts = np.bincount(flat, minlength=n_cells)
        self._row_order = order
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    def _cell_of(self, values: np.ndarray, axis: int) -> np.ndarray:
        boundaries = self._boundaries[axis]
        return np.clip(
            np.searchsorted(boundaries, values, side="right") - 1, 0, self._cells_per_dim - 1
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _cell_range(self, axis: int, low: float, high: float) -> Tuple[int, int]:
        """Inclusive range of cell indices along ``axis`` overlapping [low, high]."""
        boundaries = self._boundaries[axis]
        lo_cell = int(np.clip(np.searchsorted(boundaries, low, side="right") - 1, 0, self._cells_per_dim - 1))
        hi_cell = int(np.clip(np.searchsorted(boundaries, high, side="right") - 1, 0, self._cells_per_dim - 1))
        return lo_cell, hi_cell

    def _axis_filter_needed(self, axis: int, low: float, high: float, lo_cell: int, hi_cell: int) -> bool:
        """Scalar filter-pruning check for one axis
        (see :func:`repro.indexes.kernels.axis_filter_needed`)."""
        return axis_filter_needed(
            low,
            high,
            lo_cell,
            hi_cell,
            self._boundaries[axis],
            self._cells_per_dim,
            self._axis_lows[axis],
            self._axis_highs[axis],
        )

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        lo_cells: List[int] = []
        hi_cells: List[int] = []
        n_cells = 1
        for axis, dim in enumerate(self._dimensions):
            interval = query.interval(dim)
            lo_cell, hi_cell = self._cell_range(axis, interval.low, interval.high)
            lo_cells.append(lo_cell)
            hi_cells.append(hi_cell)
            n_cells *= hi_cell - lo_cell + 1
        prunable: List[str] = []
        if n_cells <= SMALL_QUERY_CELLS:
            # Scalar path: slice the few cell runs directly — lower constant
            # cost than the gather kernel for point-like queries, where the
            # pruning analysis would not pay for itself either.
            offsets = self._offsets
            chunks = []
            for combo in itertools.product(
                *(range(lo, hi + 1) for lo, hi in zip(lo_cells, hi_cells))
            ):
                flat = sum(index * stride for index, stride in zip(combo, self._cell_strides))
                start, stop = offsets[flat], offsets[flat + 1]
                if stop > start:
                    chunks.append(self._row_order[start:stop])
            candidates = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
        else:
            # Vectorized enumeration of the candidate cell hyper-rectangle
            # plus one gather of every cell's contiguous run — no per-cell
            # Python loop, however many cells the query overlaps.  Wide
            # queries are where filter pruning pays: skip the post-filter on
            # axes whose interval covers every visited cell.
            cells = enumerate_cells(lo_cells, hi_cells, self._shape)
            gathered, _ = gather_ranges(self._offsets[cells], self._offsets[cells + 1])
            candidates = self._row_order[gathered]
            for axis, dim in enumerate(self._dimensions):
                if not query.constrains(dim):
                    continue
                interval = query.interval(dim)
                if not self._axis_filter_needed(
                    axis, interval.low, interval.high, lo_cells[axis], hi_cells[axis]
                ):
                    prunable.append(dim)
        # The exact filter also drops tombstoned rows, so deletes stay
        # visible even when filter pruning proves every axis redundant.
        matches = self._filter_candidates(candidates, query, prunable)
        self.stats.record(
            rows_examined=len(candidates),
            rows_matched=len(matches),
            cells_visited=n_cells,
        )
        return matches

    # ------------------------------------------------------------------
    # Memory and layout introspection
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Cell address table plus axis boundaries (the exponential part)."""
        boundary_bytes = int(sum(b.nbytes for b in self._boundaries))
        return int(self._offsets.nbytes) + boundary_bytes

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._shape)) if self._shape else 1

    def cell_sizes(self) -> np.ndarray:
        """Number of records per cell (the "page length" histogram of Figure 4a)."""
        return np.diff(self._offsets)
