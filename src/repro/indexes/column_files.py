"""Column Files baseline (Section 8.1.3).

"Column files: Essentially a non uniform grid, uses the CDF of the data to
align/arrange its cell boundaries and sorts data within each cell based on
one of the attributes in the data, thus reducing the dimensionality of the
index by one. [...] Column files is similar to the approach [Flood] with
the difference that it does not assume that the query workload is known and
hence uses the data distribution to arrange and align the grid layout."

Structurally this is the same layout as :class:`SortedCellGridIndex` — a
quantile (CDF) aligned grid with one in-cell sorted attribute — applied to
*all* attributes of the dataset.  COAX differs from it by applying the same
layout only to the reduced set of predictor attributes of the inlier
records.  Keeping the baseline as its own registered class keeps benchmark
configurations explicit about which system they measure.

The vectorized read path is shared wholesale: single queries run through
the :mod:`repro.indexes.kernels` cell-scan kernels and ``batch_range_query``
executes a whole batch with one vectorized boundary bisection per axis,
one batched in-cell bisection and one gathered post-filter pass — see
:class:`SortedCellGridIndex`, from which both are inherited unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.table import Table
from repro.indexes.base import register_index
from repro.indexes.grid_file import SortedCellGridIndex

__all__ = ["ColumnFilesIndex"]


@register_index
class ColumnFilesIndex(SortedCellGridIndex):
    """CDF-aligned grid over all attributes with one in-cell sorted attribute."""

    name = "column_files"

    def __init__(
        self,
        table: Table,
        *,
        cells_per_dim: int = 8,
        max_cells: Optional[int] = None,
        sort_dimension: Optional[str] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        # Column Files always indexes the full schema unless the caller
        # explicitly restricts it; the sorted attribute defaults to the first
        # schema column (the paper tunes it per experiment).
        dims = tuple(dimensions) if dimensions else tuple(table.schema)
        sort_dim = sort_dimension or dims[0]
        super().__init__(
            table,
            cells_per_dim=cells_per_dim,
            max_cells=max_cells,
            sort_dimension=sort_dim,
            row_ids=row_ids,
            dimensions=dims,
        )
