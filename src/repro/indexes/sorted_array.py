"""Sorted-column index.

A one-dimensional clustered index: rows are kept sorted by one attribute and
a range query binary-searches the sorted attribute, then filters the scanned
run against the remaining constraints.  This is the degenerate (0 grid
dimensions) case of the paper's index layout — for a dataset where all
attributes but one are predicted, COAX's primary index reduces to exactly
this structure (Section 6: "for a dataset with n dimensions and m predicted
attributes, we only need an index with n - m - 1 dimensions").
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index

__all__ = ["SortedColumnIndex"]


@register_index
class SortedColumnIndex(MultidimensionalIndex):
    """Rows sorted by one attribute, scanned between two binary searches."""

    name = "sorted_column"

    def __init__(
        self,
        table: Table,
        *,
        sort_dimension: Optional[str] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        self._sort_dimension = sort_dimension or self._dimensions[0]
        if self._sort_dimension not in table.schema:
            raise IndexBuildError(f"sort dimension {self._sort_dimension!r} not in schema")
        order = np.argsort(self._columns[self._sort_dimension], kind="stable")
        self._order = order.astype(np.int64)
        self._sorted_keys = self._columns[self._sort_dimension][order]

    @property
    def sort_dimension(self) -> str:
        """Attribute the rows are sorted by."""
        return self._sort_dimension

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        interval = query.interval(self._sort_dimension)
        start = int(np.searchsorted(self._sorted_keys, interval.low, side="left"))
        stop = int(np.searchsorted(self._sorted_keys, interval.high, side="right"))
        candidates = self._order[start:stop]
        matches = self._filter_candidates(candidates, query)
        self.stats.record(rows_examined=stop - start, rows_matched=len(matches))
        return matches

    def directory_bytes(self) -> int:
        """A clustered sorted layout needs no directory at all.

        The permutation and the sorted-key copy stand for physically sorting
        the rows (the paper keeps records sorted inside contiguous pages), so
        they are data layout, not index directory overhead.
        """
        return 0
