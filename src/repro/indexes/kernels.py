"""Vectorized NumPy kernels of the grid-family read path.

Every grid-shaped index in the library (uniform grid, sorted-cell grid,
column files, and through them the COAX primary/outlier indexes) answers a
range query with the same three steps:

1. enumerate the hyper-rectangle of candidate cells overlapping the query;
2. narrow each cell's contiguous record run — either the whole cell, or the
   sub-run found by bisecting the in-cell sorted attribute;
3. gather the surviving run positions into one candidate array.

Before this module those steps ran as a Python hot loop: one
``itertools.product`` tuple per cell, two Python-dispatched
``np.searchsorted`` calls per cell and a slice/append/concatenate chain.
The kernels below replace them with whole-batch NumPy primitives so the
per-cell (and, through :mod:`repro.core.coax`'s batch path, the per-query)
interpreter overhead is paid once per *batch* instead of once per cell:

* :func:`enumerate_cells` — the meshgrid / ``ravel_multi_index``
  vectorization of the candidate cell hyper-rectangle, in the same
  row-major order ``itertools.product`` used so results stay bit-identical;
* :func:`segment_bisect` — a branch-free vectorized binary search over many
  independently sorted segments at once (each grid cell is one sorted
  segment of the global key array), replacing the two per-cell
  ``np.searchsorted`` calls with ``O(log max_segment_len)`` whole-array
  steps;
* :func:`gather_ranges` — the cumsum/repeat trick turning an array of
  ``[start, stop)`` ranges into the concatenated index array in one shot,
  replacing the per-cell slice/append/``np.concatenate`` chain;
* :func:`axis_cell_ranges` — batched boundary bisection: the inclusive
  cell-index range along one axis for *many* query intervals with one
  ``np.searchsorted`` pair per axis.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SMALL_QUERY_CELLS",
    "enumerate_cells",
    "enumerate_cells_batch",
    "segment_bisect",
    "gather_ranges",
    "axis_cell_ranges",
    "row_major_strides",
    "observed_axis_spans",
    "axis_filter_needed",
    "live_candidate_mask",
    "prefix_sums",
    "segment_sum",
    "segment_reduce",
]

#: Below this many candidate cells a single query takes the scalar per-cell
#: path: the batched kernels pay ~log(cell size) vectorized steps of fixed
#: NumPy dispatch overhead, which only amortises once enough cells share
#: them.  Shared by every grid-family index so the hybrid switch cannot
#: drift between layouts.
SMALL_QUERY_CELLS = 24


def row_major_strides(shape: Sequence[int]) -> Tuple[int, ...]:
    """Row-major strides of a grid shape, for scalar flat-id arithmetic."""
    strides: List[int] = []
    below = 1
    for length in reversed(tuple(shape)):
        strides.append(below)
        below *= length
    return tuple(reversed(strides))


def observed_axis_spans(
    columns: Mapping[str, np.ndarray], dims: Sequence[str]
) -> Tuple[List[float], List[float]]:
    """Observed ``[min, max]`` per grid dimension (``(+inf, -inf)`` if empty).

    The edge cells of a clipped grid are catch-alls (values below the first
    or above the last boundary land in them), so the boundaries alone do
    not bound the data; these spans close that gap for the filter-pruning
    check.  Callers keep them current when rows are absorbed.
    """
    lows: List[float] = []
    highs: List[float] = []
    for dim in dims:
        values = columns[dim]
        if len(values):
            lows.append(float(values.min()))
            highs.append(float(values.max()))
        else:
            lows.append(np.inf)
            highs.append(-np.inf)
    return lows, highs


def axis_filter_needed(
    low: float,
    high: float,
    lo_cell: int,
    hi_cell: int,
    boundaries: np.ndarray,
    n_cells: int,
    axis_low: float,
    axis_high: float,
) -> bool:
    """Can the exact post-filter on one grid axis reject any visited row?

    Rows in cells ``>= lo_cell`` carry values ``>= boundaries[lo_cell]``
    (for ``lo_cell > 0``; the first cell is a clipped catch-all bounded
    only by the observed axis minimum), and rows in cells ``<= hi_cell``
    carry values ``< boundaries[hi_cell + 1]`` (symmetrically for the last
    cell).  When the query interval covers those bounds on both sides,
    every visited row satisfies the interval and the post-filter on this
    axis would gather a column for nothing.  Comparisons are phrased so
    NaN (from NaN-polluted data) conservatively keeps the filter.
    """
    lower_covered = low <= (boundaries[lo_cell] if lo_cell > 0 else axis_low)
    if not lower_covered:
        return True
    upper_covered = high >= (
        boundaries[hi_cell + 1] if hi_cell < n_cells - 1 else axis_high
    )
    return not upper_covered


def live_candidate_mask(
    candidates: np.ndarray, tombstone: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """Mask of gathered candidate positions that are not tombstoned.

    The delete-side analogue of the post-filter kernels: ``tombstone`` is a
    per-position boolean bitmap (``True`` = deleted) or ``None`` when the
    index holds no deletes at all.  Returns ``None`` in the no-deletes case
    so callers skip the gather entirely — the read path pays nothing until
    the first delete — and otherwise one vectorised gather of the bitmap,
    which every read path (scalar post-filter, batch post-filter pass)
    folds into its existing candidate mask so deletes never add a pass.
    """
    if tombstone is None:
        return None
    return ~tombstone[candidates]


def enumerate_cells(
    lo_cells: Sequence[int],
    hi_cells: Sequence[int],
    shape: Tuple[int, ...],
) -> np.ndarray:
    """Flat ids of every cell in the inclusive hyper-rectangle of cell ranges.

    ``lo_cells``/``hi_cells`` give the inclusive per-axis cell range and
    ``shape`` the grid shape.  The ids come back in row-major (C) order —
    exactly the order ``itertools.product`` over per-axis ``range`` objects
    would produce — so callers that replaced a product loop with this kernel
    return candidates in the same order as before.
    """
    if not shape:
        return np.zeros(1, dtype=np.int64)
    axes = [
        np.arange(int(lo), int(hi) + 1, dtype=np.int64)
        for lo, hi in zip(lo_cells, hi_cells)
    ]
    if len(axes) == 1:
        return axes[0]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.ravel_multi_index([m.ravel() for m in mesh], shape).astype(np.int64)


def enumerate_cells_batch(
    lo_cells: np.ndarray,
    hi_cells: np.ndarray,
    shape: Tuple[int, ...],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat cell ids of many cell hyper-rectangles, concatenated in order.

    ``lo_cells``/``hi_cells`` are ``(n_axes, n_queries)`` inclusive range
    matrices.  Returns ``(cells, counts)`` where ``cells`` concatenates
    every query's row-major cell enumeration (so
    ``np.split(cells, np.cumsum(counts)[:-1])`` recovers the per-query
    lists, each identical to :func:`enumerate_cells` for that query) and
    ``counts`` is the per-query cell count.  A query whose range is empty on
    some axis (``hi < lo``) contributes zero cells.

    The whole batch is enumerated without a per-query Python step: one
    global arange is decomposed into per-query mixed-radix digits — one
    floor-divide/mod pair per axis — and re-composed into flat ids with the
    grid strides.
    """
    lo_cells = np.asarray(lo_cells, dtype=np.int64)
    hi_cells = np.asarray(hi_cells, dtype=np.int64)
    n_axes, n_queries = lo_cells.shape
    if not shape or n_axes == 0:
        counts = np.ones(n_queries, dtype=np.int64)
        return np.zeros(n_queries, dtype=np.int64), counts
    lengths = np.maximum(hi_cells - lo_cells + 1, 0)
    counts = lengths.prod(axis=0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    ends = np.cumsum(counts)
    # Rank of every output cell within its own query's enumeration.
    rank = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    qid = np.repeat(np.arange(n_queries, dtype=np.int64), counts)
    # Row-major decomposition: axis 0 varies slowest, so its digit is the
    # rank divided by the product of all later axis lengths.
    below = np.ones(n_queries, dtype=np.int64)
    strides_below = np.empty((n_axes, n_queries), dtype=np.int64)
    for axis in range(n_axes - 1, -1, -1):
        strides_below[axis] = below
        below = below * lengths[axis]
    cells = np.zeros(total, dtype=np.int64)
    for axis in range(n_axes):
        digit = (rank // strides_below[axis][qid]) % np.maximum(lengths[axis][qid], 1)
        cells = cells * shape[axis] + (lo_cells[axis][qid] + digit)
    return cells, counts


def segment_bisect(
    keys: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    values: np.ndarray,
    *,
    side: str = "left",
) -> np.ndarray:
    """Vectorized ``searchsorted`` over many sorted segments of one array.

    ``keys`` is a flat array whose slices ``keys[starts[i]:stops[i]]`` are
    each sorted ascending (the per-cell sorted runs of a grid index).  For
    every segment ``i`` the kernel returns the global insertion position of
    ``values[i]`` within its segment, i.e. the same result as
    ``starts[i] + np.searchsorted(keys[starts[i]:stops[i]], values[i], side)``
    — but computed for all segments simultaneously with a branch-free binary
    search: ``O(log max_segment_len)`` whole-array compare/where steps
    instead of one Python-dispatched ``searchsorted`` call per segment.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    lo = starts.copy()  # repro-lint: allow[materialize] per-segment search cursors, O(touched cells) not O(rows)
    hi = stops.copy()  # repro-lint: allow[materialize] per-segment search cursors, O(touched cells) not O(rows)
    if len(starts) == 0:
        return lo
    max_len = int(np.max(stops - starts, initial=0))
    if max_len <= 0:
        return lo
    # Invariant: the answer is always in [lo, hi].  Probing keys[mid] is safe
    # because lo < hi implies mid < stop <= len(keys).
    for _ in range(max_len.bit_length()):
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        probe = keys[np.minimum(mid, len(keys) - 1)]
        if side == "left":
            go_right = probe < values
        else:
            go_right = probe <= values
        go_right &= active
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    return lo


def gather_ranges(starts: np.ndarray, stops: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated indices of many ``[start, stop)`` ranges, in range order.

    Returns ``(indices, lengths)`` where ``indices`` is the one-array
    equivalent of ``np.concatenate([np.arange(a, b) for a, b in zip(...)])``
    and ``lengths`` the per-range contribution (``stop - start`` clipped to
    zero) so callers can attribute the gathered rows back to their source
    range (cell or query) without another pass.  Built from one ``cumsum``
    and one ``repeat`` — no Python-level loop over ranges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    lengths = np.maximum(stops - starts, 0)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    ends = np.cumsum(lengths)
    # Within each range the offset runs 0..length-1; shifting a global arange
    # by the repeated range starts yields all ranges at once.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    indices = np.repeat(starts, lengths) + offsets
    return indices, lengths


def prefix_sums(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums of a value array (length ``n + 1``).

    The one-time cache behind the SUM pushdown: with ``p = prefix_sums(v)``
    every contiguous run ``v[first:last]`` sums to ``p[last] - p[first]``
    in O(1), so an aggregate over covered candidate runs never gathers the
    values at all (see :func:`segment_sum`).  Computed in float64; run
    sums recovered by differencing re-associate the addition, so they can
    differ from a direct left-to-right sum in the last ulps — callers
    compare SUM/AVG results with a float tolerance, never bit-for-bit.
    """
    values = np.asarray(values, dtype=np.float64)
    out = np.empty(len(values) + 1, dtype=np.float64)
    out[0] = 0.0
    np.cumsum(values, out=out[1:])
    return out


def segment_sum(
    prefix: np.ndarray, starts: np.ndarray, stops: np.ndarray
) -> np.ndarray:
    """Per-run value sums of ``[start, stop)`` runs from a prefix-sum cache.

    The run-level sum fold: one gather pair and one subtraction for *all*
    runs, independent of run length.  Empty runs (``stop <= start``)
    yield exactly 0.0.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    return prefix[np.maximum(stops, starts)] - prefix[starts]


def segment_reduce(
    values: np.ndarray, lengths: np.ndarray, op: str
) -> np.ndarray:
    """Per-run reduction over back-to-back runs of a gathered value array.

    ``values`` concatenates the runs (run ``i`` occupies ``lengths[i]``
    consecutive slots, exactly the layout :func:`gather_ranges`
    produces); ``op`` is ``"sum"``, ``"min"`` or ``"max"``.  Empty runs
    reduce to the identity (0.0 / ``+inf`` / ``-inf``), so callers can
    fold the output straight into per-query accumulators.  One
    ``reduceat`` over the non-empty runs instead of a Python loop.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n_runs = len(lengths)
    identity = {"sum": 0.0, "min": np.inf, "max": -np.inf}[op]
    out = np.full(n_runs, identity, dtype=np.float64)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    ends = np.cumsum(lengths)
    run_starts = (ends - lengths)[nonempty]
    ufunc = {"sum": np.add, "min": np.minimum, "max": np.maximum}[op]
    out[nonempty] = ufunc.reduceat(np.asarray(values, dtype=np.float64), run_starts)
    return out


def axis_cell_ranges(
    boundaries: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    n_cells: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Inclusive cell ranges along one axis for a whole batch of intervals.

    Vectorized version of the per-query boundary bisection: one
    ``np.searchsorted`` call per side for *all* queries of a batch.  Returns
    ``(lo_cells, hi_cells)`` clipped into ``[0, n_cells - 1]``; an empty
    query interval (``low > high``) simply yields ``lo_cell > hi_cell`` and
    enumerates no cells.
    """
    boundaries = np.asarray(boundaries, dtype=np.float64)
    lows = np.asarray(lows, dtype=np.float64)
    highs = np.asarray(highs, dtype=np.float64)
    lo_cells = np.clip(
        np.searchsorted(boundaries, lows, side="right") - 1, 0, n_cells - 1
    ).astype(np.int64)
    hi_cells = np.clip(
        np.searchsorted(boundaries, highs, side="right") - 1, 0, n_cells - 1
    ).astype(np.int64)
    # Preserve emptiness: a query with low > high must visit no cells.
    empty = lows > highs
    if empty.any():
        hi_cells = np.where(empty, lo_cells - 1, hi_cells)
    return lo_cells, hi_cells
