"""R-Tree baseline.

"We compare our suggested method with the R-Tree, arguably the most broadly
used index for multidimensional data" (Section 8.1.3).  The paper tunes the
node capacity between 2 and 32 and reports that the best capacity lies
between 8 and 12; the capacity is a constructor parameter here so the
Figure 8 sweep can reproduce that tuning.

The tree is bulk-loaded with the Sort-Tile-Recursive (STR) algorithm, which
gives well-packed nodes for static data, and additionally supports
incremental insertion (least-enlargement descent with quadratic node
splits) so COAX's update path can reuse it for the outlier index.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index

__all__ = ["RTreeIndex", "RTreeNode"]


class RTreeNode:
    """One node of the R-Tree.

    Leaf nodes hold row positions; internal nodes hold child nodes.  Every
    node keeps the minimum bounding rectangle (MBR) of its subtree as two
    arrays (lows, highs) over the indexed dimensions.
    """

    __slots__ = ("is_leaf", "children", "positions", "lows", "highs")

    def __init__(self, is_leaf: bool, n_dims: int) -> None:
        self.is_leaf = is_leaf
        self.children: List["RTreeNode"] = []
        self.positions: List[int] = []
        self.lows = np.full(n_dims, np.inf)
        self.highs = np.full(n_dims, -np.inf)

    @property
    def n_entries(self) -> int:
        """Number of entries stored in the node."""
        return len(self.positions) if self.is_leaf else len(self.children)

    def recompute_mbr(self, points: np.ndarray) -> None:
        """Recompute the node MBR from its entries."""
        if self.is_leaf:
            if self.positions:
                block = points[np.asarray(self.positions, dtype=np.int64)]
                self.lows = block.min(axis=0)
                self.highs = block.max(axis=0)
            else:
                self.lows = np.full(points.shape[1], np.inf)
                self.highs = np.full(points.shape[1], -np.inf)
        else:
            if self.children:
                self.lows = np.min([child.lows for child in self.children], axis=0)
                self.highs = np.max([child.highs for child in self.children], axis=0)
            else:
                n_dims = len(self.lows)
                self.lows = np.full(n_dims, np.inf)
                self.highs = np.full(n_dims, -np.inf)

    def extend_mbr(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Grow the node MBR to cover the given box."""
        self.lows = np.minimum(self.lows, lows)
        self.highs = np.maximum(self.highs, highs)

    def intersects(self, lows: np.ndarray, highs: np.ndarray) -> bool:
        """True when the node MBR overlaps the query box."""
        return bool(np.all(self.lows <= highs) and np.all(self.highs >= lows))


def _enlargement(node: RTreeNode, lows: np.ndarray, highs: np.ndarray) -> float:
    """Volume increase needed for ``node`` to cover the box (choose-leaf metric)."""
    current = np.prod(np.maximum(node.highs - node.lows, 0.0))
    merged_lows = np.minimum(node.lows, lows)
    merged_highs = np.maximum(node.highs, highs)
    merged = np.prod(np.maximum(merged_highs - merged_lows, 0.0))
    return float(merged - current)


@register_index
class RTreeIndex(MultidimensionalIndex):
    """STR-bulk-loaded R-Tree with tunable node capacity."""

    name = "rtree"

    def __init__(
        self,
        table: Table,
        *,
        node_capacity: int = 10,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        if node_capacity < 2:
            raise IndexBuildError("node_capacity must be at least 2")
        self._capacity = int(node_capacity)
        self._points = np.column_stack(
            [self._columns[dim] for dim in self._dimensions]
        ) if self.n_rows else np.empty((0, len(self._dimensions)))
        self._root = self._bulk_load()

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------
    def _bulk_load(self) -> RTreeNode:
        n_dims = len(self._dimensions)
        if self.n_rows == 0:
            return RTreeNode(is_leaf=True, n_dims=n_dims)
        positions = np.arange(self.n_rows, dtype=np.int64)
        leaf_position_groups = self._str_partition(positions, axis=0)
        leaves: List[RTreeNode] = []
        for group in leaf_position_groups:
            leaf = RTreeNode(is_leaf=True, n_dims=n_dims)
            leaf.positions = [int(p) for p in group]
            leaf.recompute_mbr(self._points)
            leaves.append(leaf)
        return self._pack_upwards(leaves)

    def _str_partition(self, positions: np.ndarray, axis: int) -> List[np.ndarray]:
        """Recursive Sort-Tile-Recursive partition of positions into leaf groups."""
        n_dims = len(self._dimensions)
        n = len(positions)
        if n <= self._capacity:
            return [positions]
        n_leaves = int(np.ceil(n / self._capacity))
        remaining_dims = n_dims - axis
        if remaining_dims <= 1:
            ordered = positions[np.argsort(self._points[positions, axis], kind="stable")]
            return [ordered[i : i + self._capacity] for i in range(0, n, self._capacity)]
        # Number of slabs along this axis: ceil(n_leaves ** (1 / remaining_dims)).
        n_slabs = int(np.ceil(n_leaves ** (1.0 / remaining_dims)))
        slab_size = int(np.ceil(n / n_slabs))
        ordered = positions[np.argsort(self._points[positions, axis], kind="stable")]
        groups: List[np.ndarray] = []
        for start in range(0, n, slab_size):
            slab = ordered[start : start + slab_size]
            groups.extend(self._str_partition(slab, axis + 1))
        return groups

    def _pack_upwards(self, nodes: List[RTreeNode]) -> RTreeNode:
        """Group nodes into parents level by level until a single root remains."""
        n_dims = len(self._dimensions)
        while len(nodes) > 1:
            centres = np.array([(node.lows + node.highs) / 2.0 for node in nodes])
            order = np.lexsort(tuple(centres[:, axis] for axis in range(n_dims - 1, -1, -1)))
            parents: List[RTreeNode] = []
            for start in range(0, len(nodes), self._capacity):
                parent = RTreeNode(is_leaf=False, n_dims=n_dims)
                parent.children = [nodes[int(i)] for i in order[start : start + self._capacity]]
                parent.recompute_mbr(self._points)
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Incremental insertion
    # ------------------------------------------------------------------
    def insert_point(self, position: int) -> None:
        """Insert the record at local position ``position`` into the tree.

        Used by COAX's update path; ``position`` must index into the local
        subset (i.e. it is a positional id, not an original row id).
        """
        if position < 0 or position >= len(self._points):
            raise IndexError("position out of range for this index")
        point = self._points[position]
        split = self._insert_recursive(self._root, position, point)
        if split is not None:
            new_root = RTreeNode(is_leaf=False, n_dims=len(self._dimensions))
            new_root.children = [self._root, split]
            new_root.recompute_mbr(self._points)
            self._root = new_root

    def _insert_recursive(
        self, node: RTreeNode, position: int, point: np.ndarray
    ) -> Optional[RTreeNode]:
        node.extend_mbr(point, point)
        if node.is_leaf:
            node.positions.append(int(position))
            if node.n_entries > self._capacity:
                return self._split_leaf(node)
            return None
        best_child = min(node.children, key=lambda child: _enlargement(child, point, point))
        split = self._insert_recursive(best_child, position, point)
        if split is not None:
            node.children.append(split)
            if node.n_entries > self._capacity:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: RTreeNode) -> RTreeNode:
        """Quadratic-style split of an overflowing leaf along the widest axis."""
        positions = np.asarray(node.positions, dtype=np.int64)
        block = self._points[positions]
        spread = block.max(axis=0) - block.min(axis=0)
        axis = int(np.argmax(spread))
        order = np.argsort(block[:, axis], kind="stable")
        half = len(order) // 2
        keep, move = positions[order[:half]], positions[order[half:]]
        node.positions = [int(p) for p in keep]
        node.recompute_mbr(self._points)
        sibling = RTreeNode(is_leaf=True, n_dims=len(self._dimensions))
        sibling.positions = [int(p) for p in move]
        sibling.recompute_mbr(self._points)
        return sibling

    def _split_internal(self, node: RTreeNode) -> RTreeNode:
        """Split an overflowing internal node along the widest centre axis."""
        centres = np.array([(child.lows + child.highs) / 2.0 for child in node.children])
        spread = centres.max(axis=0) - centres.min(axis=0)
        axis = int(np.argmax(spread))
        order = np.argsort(centres[:, axis], kind="stable")
        half = len(order) // 2
        children = node.children
        node.children = [children[int(i)] for i in order[:half]]
        node.recompute_mbr(self._points)
        sibling = RTreeNode(is_leaf=False, n_dims=len(self._dimensions))
        sibling.children = [children[int(i)] for i in order[half:]]
        sibling.recompute_mbr(self._points)
        return sibling

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        lows = np.array([query.interval(dim).low for dim in self._dimensions])
        highs = np.array([query.interval(dim).high for dim in self._dimensions])
        candidates: List[int] = []
        nodes_visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes_visited += 1
            if not node.intersects(lows, highs):
                continue
            if node.is_leaf:
                candidates.extend(node.positions)
            else:
                stack.extend(node.children)
        candidate_array = np.asarray(candidates, dtype=np.int64)
        matches = self._filter_candidates(candidate_array, query)
        self.stats.record(
            rows_examined=len(candidate_array),
            rows_matched=len(matches),
            nodes_visited=nodes_visited,
        )
        return matches

    # ------------------------------------------------------------------
    # Memory and structure introspection
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Bytes of tree structure: per-entry boxes/pointers plus node MBRs.

        Each leaf entry costs a row pointer (8 bytes); each internal entry a
        child pointer (8 bytes); each node stores its MBR (2 * n_dims floats).
        This matches the accounting that makes the R-Tree the most
        memory-hungry competitor in Figure 8.
        """
        n_dims = len(self._dimensions)
        node_bytes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            node_bytes += 2 * n_dims * 8  # the node MBR
            node_bytes += node.n_entries * 8  # entry pointers / row ids
            if not node.is_leaf:
                stack.extend(node.children)
        return node_bytes

    @property
    def node_capacity(self) -> int:
        """Maximum entries per node."""
        return self._capacity

    def height(self) -> int:
        """Height of the tree (1 for a single leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        """Total number of nodes."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count
