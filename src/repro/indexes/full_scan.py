"""Full-scan baseline.

"Full scan: Every item in the dataset is checked against queries"
(Section 8.1.3).  It has zero directory overhead and serves as the
worst-case runtime reference in Figure 6.

It is also the *reference executor oracle*: :meth:`batch_aggregate_partial`,
:meth:`knn_partial` and :meth:`topk_partial` are re-implemented here from
first principles — a boolean match mask, plain NumPy reductions, one exact
``lexsort`` — sharing none of the fold kernels, prefix-sum caches or
``argpartition`` narrowing the optimised paths use.  The executor property
tests compare every index element-for-element (bit-for-bit for
COUNT/MIN/MAX) against this oracle, so a bug in the shared machinery cannot
cancel itself out.
"""

from __future__ import annotations

import numpy as np

from repro.data.executors import Aggregate, AggregatePartial, TopK
from repro.data.predicates import Rectangle
from repro.indexes.base import MultidimensionalIndex, register_index

__all__ = ["FullScanIndex"]


@register_index
class FullScanIndex(MultidimensionalIndex):
    """Scan every record for every query."""

    name = "full_scan"

    def _match_mask(self, query: Rectangle) -> np.ndarray:
        """Live-and-matching boolean mask over every covered position."""
        if self._tombstone is None:
            mask = np.ones(self.n_rows, dtype=bool)
        else:
            # Tombstoned rows are still scanned (they sit in the columns
            # until a rebuild) but can never match, which makes this the
            # delete-aware ground-truth oracle of the CRUD tests/benchmarks.
            mask = ~self._tombstone
        for name, interval in query.items():
            values = self._columns[name]
            mask &= (values >= interval.low) & (values <= interval.high)
        return mask

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        matches = np.flatnonzero(self._match_mask(query)).astype(np.int64)
        self.stats.record(rows_examined=self.n_rows, rows_matched=len(matches))
        return matches

    # ------------------------------------------------------------------
    # Reference executors (the oracle the property tests compare against)
    # ------------------------------------------------------------------
    def batch_aggregate_partial(self, queries, spec: Aggregate) -> AggregatePartial:
        """First-principles aggregate: mask, then one NumPy reduction each.

        COUNT/MIN/MAX use ``sum``/``min``/``max`` over the masked column
        directly — the exact values the optimised fold paths must
        reproduce bit-for-bit.
        """
        partial = AggregatePartial.identity(len(queries))
        values = self._columns[spec.column] if spec.column is not None else None
        for slot, query in enumerate(queries):
            if query.is_empty or self.n_rows == 0:
                self.stats.record()
                continue
            mask = self._match_mask(query)
            matched = int(np.count_nonzero(mask))
            self.stats.record(rows_examined=self.n_rows, rows_matched=matched)
            partial.count[slot] = matched
            if values is not None and matched:
                selected = values[mask]
                partial.total[slot] = float(np.sum(selected))
                partial.minimum[slot] = float(np.min(selected))
                partial.maximum[slot] = float(np.max(selected))
        self.stats.record_batch(0, aggregates=len(queries))
        return partial

    def knn_partial(self, point, k: int, *, metric: str = "l2"):
        """First-principles kNN: every live row's distance, one exact sort.

        No candidate narrowing at all — ``lexsort`` over ``(id, key)``
        realises the library-wide ``(distance, row_id)`` tie-break
        directly, so the optimised ring searches are held to it exactly.
        """
        if self.n_rows == 0:
            self.stats.record(knn_queries=1)
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        keys = np.zeros(self.n_rows, dtype=np.float64)
        for dim, target in point.items():
            diff = self._columns[dim] - float(target)
            if metric == "l2":
                keys += diff * diff
            else:
                np.maximum(keys, np.abs(diff), out=keys)
        ids = self._row_ids
        if self._tombstone is not None:
            live = ~self._tombstone
            keys = keys[live]
            ids = ids[live]
        self.stats.record(rows_examined=len(ids), knn_queries=1)
        order = np.lexsort((ids, keys))[:k]
        return keys[order], ids[order]

    def topk_partial(self, query: Rectangle, spec: TopK):
        """First-principles by-column top-k: mask, gather, one exact sort."""
        if query.is_empty or self.n_rows == 0:
            self.stats.record(knn_queries=1)
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        positions = self._range_query_positions(query)
        self.stats.record_batch(0, knn_queries=1)
        if len(positions) == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        keys = self._columns[spec.column][positions].astype(np.float64)
        ids = self._row_ids[positions]
        order = np.lexsort((ids, -keys if spec.largest else keys))[: spec.k]
        return keys[order], ids[order]

    def directory_bytes(self) -> int:
        """A full scan keeps no structure at all."""
        return 0
