"""Full-scan baseline.

"Full scan: Every item in the dataset is checked against queries"
(Section 8.1.3).  It has zero directory overhead and serves as the
worst-case runtime reference in Figure 6.
"""

from __future__ import annotations

import numpy as np

from repro.data.predicates import Rectangle
from repro.indexes.base import MultidimensionalIndex, register_index

__all__ = ["FullScanIndex"]


@register_index
class FullScanIndex(MultidimensionalIndex):
    """Scan every record for every query."""

    name = "full_scan"

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        if self._tombstone is None:
            mask = np.ones(self.n_rows, dtype=bool)
        else:
            # Tombstoned rows are still scanned (they sit in the columns
            # until a rebuild) but can never match, which makes this the
            # delete-aware ground-truth oracle of the CRUD tests/benchmarks.
            mask = ~self._tombstone
        for name, interval in query.items():
            values = self._columns[name]
            mask &= (values >= interval.low) & (values <= interval.high)
        matches = np.flatnonzero(mask).astype(np.int64)
        self.stats.record(rows_examined=self.n_rows, rows_matched=len(matches))
        return matches

    def directory_bytes(self) -> int:
        """A full scan keeps no structure at all."""
        return 0
