"""Memory accounting helpers.

Figure 8 of the paper plots query runtime against the *memory overhead* of
each index — the directory structure kept on top of the raw records.  This
module turns the per-index accounting exposed by
:meth:`~repro.indexes.base.MultidimensionalIndex.directory_bytes` into a
uniform report object used by the benchmark harness and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.indexes.base import MultidimensionalIndex

__all__ = ["MemoryReport", "memory_report", "format_bytes"]


@dataclass(frozen=True)
class MemoryReport:
    """Memory breakdown of one index instance."""

    name: str
    directory_bytes: int
    data_bytes: int
    n_rows: int

    @property
    def total_bytes(self) -> int:
        """Directory plus data."""
        return self.directory_bytes + self.data_bytes

    @property
    def overhead_ratio(self) -> float:
        """Directory bytes relative to data bytes (0 when there is no data)."""
        return self.directory_bytes / self.data_bytes if self.data_bytes else 0.0

    @property
    def bytes_per_row(self) -> float:
        """Directory bytes per indexed record."""
        return self.directory_bytes / self.n_rows if self.n_rows else 0.0


def memory_report(index: MultidimensionalIndex, name: str = "") -> MemoryReport:
    """Build a :class:`MemoryReport` for an index instance."""
    return MemoryReport(
        name=name or index.name,
        directory_bytes=index.directory_bytes(),
        data_bytes=index.data_bytes(),
        n_rows=index.n_rows,
    )


def format_bytes(n_bytes: float) -> str:
    """Human-readable byte count (e.g. ``"1.2 MB"``)."""
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TB"


def compare_reports(reports: Mapping[str, MemoryReport]) -> Dict[str, float]:
    """Directory sizes of every report relative to the smallest one."""
    if not reports:
        return {}
    smallest = min(max(report.directory_bytes, 1) for report in reports.values())
    return {
        name: max(report.directory_bytes, 1) / smallest for name, report in reports.items()
    }
