"""Multidimensional index structures.

Implements the paper's index substrate (a quantile-boundary grid file with a
sorted dimension inside every cell, Section 6) and every baseline of the
evaluation (Section 8.1.3): the R-Tree, the uniform "full" grid, Column
Files and the full scan.  All indexes share the same interface
(:class:`repro.indexes.base.MultidimensionalIndex`): they are built over a
:class:`~repro.data.table.Table` (optionally restricted to a subset of row
ids), answer rectangle queries with exact original row ids, and report their
directory memory overhead separately from the data they cover.
"""

from repro.indexes.base import IndexBuildError, MultidimensionalIndex, QueryStats, register_index, create_index, available_indexes
from repro.indexes.kernels import (
    axis_cell_ranges,
    enumerate_cells,
    enumerate_cells_batch,
    gather_ranges,
    segment_bisect,
)
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.sorted_array import SortedColumnIndex
from repro.indexes.uniform_grid import UniformGridIndex
from repro.indexes.grid_file import SortedCellGridIndex
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.memory import MemoryReport, memory_report

__all__ = [
    "IndexBuildError",
    "MultidimensionalIndex",
    "QueryStats",
    "register_index",
    "create_index",
    "available_indexes",
    "axis_cell_ranges",
    "enumerate_cells",
    "enumerate_cells_batch",
    "gather_ranges",
    "segment_bisect",
    "FullScanIndex",
    "SortedColumnIndex",
    "UniformGridIndex",
    "SortedCellGridIndex",
    "ColumnFilesIndex",
    "RTreeIndex",
    "MemoryReport",
    "memory_report",
]
