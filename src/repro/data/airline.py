"""Synthetic US-Airlines-like dataset.

The paper uses the US Airlines on-time performance dataset (2000-2009, 80M
records, 8 attributes).  That dataset is not redistributable here, so this
module generates a synthetic dataset that preserves the properties COAX
exploits (documented in DESIGN.md):

* 8 attributes;
* two correlated groups, (Distance, TimeElapsed, AirTime) and
  (DepTime, ArrTime, ScheduledArrTime), matching the groupings the paper
  reports using in its experiments (Section 8.1.2);
* a configurable fraction of records breaking the dependency, tuned so the
  default primary-index ratio is about 92% as in Table 1;
* realistic value ranges and a right-skewed distance distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.table import Table

__all__ = ["AirlineConfig", "AIRLINE_COLUMNS", "AIRLINE_FD_GROUPS", "generate_airline_dataset"]

#: Attribute names of the synthetic airline dataset, in schema order.
AIRLINE_COLUMNS: Tuple[str, ...] = (
    "Distance",
    "TimeElapsed",
    "AirTime",
    "DepTime",
    "ArrTime",
    "ScheduledArrTime",
    "DayOfWeek",
    "Carrier",
)

#: The correlated attribute groups the paper uses for this dataset.
AIRLINE_FD_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("Distance", "TimeElapsed", "AirTime"),
    ("DepTime", "ArrTime", "ScheduledArrTime"),
)


@dataclass(frozen=True)
class AirlineConfig:
    """Tuning knobs for the airline generator."""

    n_rows: int = 100_000
    seed: int = 7
    #: Fraction of records that do not follow the FD pattern (Table 1 reports
    #: a 92% primary-index ratio for Airline, i.e. ~8% outliers).
    outlier_fraction: float = 0.08
    #: Standard deviation of the in-margin noise, in minutes.
    time_noise_minutes: float = 6.0
    #: Year span encoded in the DepTime attribute (flights 2000-2009).
    year: int = 2008

    def __post_init__(self) -> None:
        if self.n_rows <= 0:
            raise ValueError("n_rows must be positive")
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")


def generate_airline_dataset(
    config: Optional[AirlineConfig] = None,
) -> Tuple[Table, Dict[str, np.ndarray]]:
    """Generate the synthetic airline table.

    Returns the table plus ground-truth metadata: ``{"outliers": mask}``
    where the mask marks records generated outside the FD pattern for at
    least one group.
    """
    config = config if config is not None else AirlineConfig()
    rng = np.random.default_rng(config.seed)
    n = config.n_rows

    # --- Group 1: Distance -> TimeElapsed, AirTime -----------------------
    # Flight distances (miles) follow a right-skewed distribution: many short
    # hops, a long tail of transcontinental flights.
    distance = rng.gamma(shape=2.2, scale=330.0, size=n) + 80.0
    distance = np.clip(distance, 80.0, 5000.0)

    # Elapsed time ~ taxi overhead + cruise at ~7.4 miles/minute.
    cruise_minutes = distance / 7.4
    time_elapsed = 32.0 + cruise_minutes + rng.normal(0.0, config.time_noise_minutes, size=n)
    air_time = 18.0 + cruise_minutes + rng.normal(0.0, config.time_noise_minutes * 0.8, size=n)

    # --- Group 2: DepTime -> ArrTime, ScheduledArrTime --------------------
    # Departure times in minutes-since-midnight, concentrated in day hours.
    dep_time = np.clip(rng.normal(13.0 * 60.0, 4.0 * 60.0, size=n), 0.0, 24.0 * 60.0 - 1.0)
    flight_minutes = np.clip(time_elapsed, 25.0, 600.0)
    arr_time = dep_time + flight_minutes + rng.normal(0.0, config.time_noise_minutes, size=n)
    scheduled_arr = dep_time + flight_minutes + rng.normal(0.0, config.time_noise_minutes * 0.5, size=n)

    # --- Outliers ---------------------------------------------------------
    # A record is an outlier when its dependent attributes are decoupled from
    # the predictors: diverted/cancelled flights, data-entry errors, red-eye
    # flights wrapping past midnight, etc.
    outliers = rng.random(n) < config.outlier_fraction
    n_out = int(outliers.sum())
    if n_out:
        time_elapsed = time_elapsed.copy()
        air_time = air_time.copy()
        arr_time = arr_time.copy()
        scheduled_arr = scheduled_arr.copy()
        time_elapsed[outliers] = rng.uniform(20.0, 900.0, size=n_out)
        air_time[outliers] = rng.uniform(10.0, 850.0, size=n_out)
        arr_time[outliers] = rng.uniform(0.0, 24.0 * 60.0, size=n_out)
        scheduled_arr[outliers] = rng.uniform(0.0, 24.0 * 60.0, size=n_out)

    # --- Independent attributes -------------------------------------------
    day_of_week = rng.integers(1, 8, size=n).astype(np.float64)
    carrier = rng.integers(0, 20, size=n).astype(np.float64)

    table = Table(
        {
            "Distance": distance,
            "TimeElapsed": time_elapsed,
            "AirTime": air_time,
            "DepTime": dep_time,
            "ArrTime": arr_time,
            "ScheduledArrTime": scheduled_arr,
            "DayOfWeek": day_of_week,
            "Carrier": carrier,
        }
    )
    return table, {"outliers": outliers}
