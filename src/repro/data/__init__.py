"""Data substrate for the COAX reproduction.

This package provides the columnar table abstraction every index in the
library is built on, the hyper-rectangle predicate model used to express
range and point queries, synthetic dataset generators that mirror the two
real-world datasets used in the paper (US Airlines and OpenStreetMap), and
query-workload generators that follow the paper's methodology (Section
8.1.2): queries are rectangles derived from the K nearest neighbours of a
randomly drawn record.
"""

from repro.data.executors import MATERIALIZE, Aggregate, MaterializeIds, TopK
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Schema, Table
from repro.data.synthetic import (
    CorrelatedGroupSpec,
    SyntheticDatasetSpec,
    generate_correlated_dataset,
)
from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.osm import OSMConfig, generate_osm_dataset
from repro.data.queries import (
    QueryWorkload,
    WorkloadConfig,
    generate_knn_queries,
    generate_point_queries,
    generate_selectivity_queries,
)

__all__ = [
    "MATERIALIZE",
    "Aggregate",
    "MaterializeIds",
    "TopK",
    "Interval",
    "Rectangle",
    "Schema",
    "Table",
    "CorrelatedGroupSpec",
    "SyntheticDatasetSpec",
    "generate_correlated_dataset",
    "AirlineConfig",
    "generate_airline_dataset",
    "OSMConfig",
    "generate_osm_dataset",
    "QueryWorkload",
    "WorkloadConfig",
    "generate_knn_queries",
    "generate_point_queries",
    "generate_selectivity_queries",
]
