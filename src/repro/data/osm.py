"""Synthetic OpenStreetMap-like dataset.

The paper uses 4 attributes of the OSM US-Northeast extract (105M records):
node Id, Timestamp, Latitude and Longitude.  Id and Timestamp are strongly
correlated (ids are assigned roughly in insertion order), and the spatial
coordinates cluster around dense urban areas.  This module generates a
synthetic table with the same structure and a configurable outlier rate
tuned so the default primary-index ratio is about 73% (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.synthetic import clustered_coordinates
from repro.data.table import Table

__all__ = ["OSMConfig", "OSM_COLUMNS", "OSM_FD_GROUPS", "generate_osm_dataset"]

#: Attribute names of the synthetic OSM dataset, in schema order.
OSM_COLUMNS: Tuple[str, ...] = ("Id", "Timestamp", "Latitude", "Longitude")

#: The correlated attribute group the paper uses for this dataset.
OSM_FD_GROUPS: Tuple[Tuple[str, ...], ...] = (("Id", "Timestamp"),)


@dataclass(frozen=True)
class OSMConfig:
    """Tuning knobs for the OSM generator."""

    n_rows: int = 100_000
    seed: int = 11
    #: Fraction of nodes whose timestamp is decoupled from their id, e.g.
    #: nodes re-imported or bulk-edited long after creation.  Table 1 reports
    #: a 73% primary-index ratio, i.e. ~27% outliers for the default margins.
    outlier_fraction: float = 0.25
    #: Relative noise (as a fraction of the timestamp span) for inliers.
    timestamp_noise: float = 0.004
    n_clusters: int = 12

    def __post_init__(self) -> None:
        if self.n_rows <= 0:
            raise ValueError("n_rows must be positive")
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")


def generate_osm_dataset(
    config: Optional[OSMConfig] = None,
) -> Tuple[Table, Dict[str, np.ndarray]]:
    """Generate the synthetic OSM table.

    Returns the table plus ground-truth metadata ``{"outliers": mask}``.
    """
    config = config if config is not None else OSMConfig()
    rng = np.random.default_rng(config.seed)
    n = config.n_rows

    # Node ids: dense, increasing, with small random gaps (deleted nodes).
    gaps = rng.integers(1, 6, size=n).astype(np.float64)
    node_id = np.cumsum(gaps)

    # Timestamps: roughly linear in id (nodes are created in id order) over a
    # ten-year span, with bounded noise for inliers.
    span_seconds = 10.0 * 365.0 * 24.0 * 3600.0
    base_epoch = 1.1e9
    slope = span_seconds / node_id[-1]
    noise = rng.normal(0.0, config.timestamp_noise * span_seconds, size=n)
    timestamp = base_epoch + slope * node_id + noise

    outliers = rng.random(n) < config.outlier_fraction
    n_out = int(outliers.sum())
    if n_out:
        timestamp = timestamp.copy()
        timestamp[outliers] = base_epoch + rng.uniform(0.0, span_seconds, size=n_out)

    latitude, longitude = clustered_coordinates(n, rng, n_clusters=config.n_clusters)

    table = Table(
        {
            "Id": node_id,
            "Timestamp": timestamp,
            "Latitude": latitude,
            "Longitude": longitude,
        }
    )
    return table, {"outliers": outliers}
