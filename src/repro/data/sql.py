"""A small WHERE-clause parser producing rectangle predicates.

The paper expresses queries as SQL range predicates::

    SELECT * FROM tbl WHERE q1_low < C1 AND C1 < q1_high
                        AND q2_low < C2 AND C2 < q2_high;

This module parses exactly that conjunctive fragment into a
:class:`~repro.data.predicates.Rectangle`, so examples, tests and downstream
users can write queries the way the paper does instead of constructing
interval dictionaries by hand.

Supported syntax (case-insensitive keywords, ``AND``-combined terms):

* comparisons: ``col < 5``, ``col <= 5``, ``col > 5``, ``col >= 5``,
  ``col = 5`` (and the mirrored forms ``5 < col`` etc.);
* chained comparisons: ``3 < col < 9``, ``3 <= col <= 9``;
* ranges: ``col BETWEEN 3 AND 9`` (inclusive on both sides).

Strict inequalities are widened to closed intervals by an epsilon of zero —
i.e. they are treated as inclusive.  That matches the paper's scan
semantics, where the separation between ``<`` and ``<=`` is immaterial for
continuous attributes; callers needing genuinely open bounds can post-filter.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.data.predicates import Interval, Rectangle

__all__ = ["parse_where", "WhereClauseError"]


class WhereClauseError(ValueError):
    """Raised when a WHERE clause cannot be parsed."""


_NUMBER = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?|[-+]?inf"
_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"

_BETWEEN = re.compile(
    rf"^\s*({_IDENT})\s+between\s+({_NUMBER})\s+and\s+({_NUMBER})\s*$", re.IGNORECASE
)
_CHAINED = re.compile(
    rf"^\s*({_NUMBER})\s*(<=|<)\s*({_IDENT})\s*(<=|<)\s*({_NUMBER})\s*$", re.IGNORECASE
)
_COMPARE_COL_LEFT = re.compile(
    rf"^\s*({_IDENT})\s*(<=|>=|=|==|<|>)\s*({_NUMBER})\s*$", re.IGNORECASE
)
_COMPARE_COL_RIGHT = re.compile(
    rf"^\s*({_NUMBER})\s*(<=|>=|=|==|<|>)\s*({_IDENT})\s*$", re.IGNORECASE
)
_AND_SPLIT = re.compile(r"\s+and\s+", re.IGNORECASE)


def _to_float(token: str) -> float:
    token = token.strip().lower()
    if token in ("inf", "+inf"):
        return float("inf")
    if token == "-inf":
        return float("-inf")
    return float(token)


def _term_to_interval(term: str) -> Dict[str, Interval]:
    """Parse one AND-term into a ``{column: interval}`` constraint."""
    match = _BETWEEN.match(term)
    if match:
        column, low, high = match.group(1), _to_float(match.group(2)), _to_float(match.group(3))
        return {column: Interval(low, high)}

    match = _CHAINED.match(term)
    if match:
        low = _to_float(match.group(1))
        column = match.group(3)
        high = _to_float(match.group(5))
        return {column: Interval(low, high)}

    match = _COMPARE_COL_LEFT.match(term)
    if match:
        column, operator, value = match.group(1), match.group(2), _to_float(match.group(3))
        return {column: _interval_for(operator, value, column_on_left=True)}

    match = _COMPARE_COL_RIGHT.match(term)
    if match:
        value, operator, column = _to_float(match.group(1)), match.group(2), match.group(3)
        return {column: _interval_for(operator, value, column_on_left=False)}

    raise WhereClauseError(f"cannot parse WHERE term: {term!r}")


def _interval_for(operator: str, value: float, *, column_on_left: bool) -> Interval:
    """Interval for ``col OP value`` (or ``value OP col`` when mirrored)."""
    if operator in ("=", "=="):
        return Interval.point(value)
    # Mirror "value < col" into "col > value" and so on.
    if not column_on_left:
        operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
    if operator in ("<", "<="):
        return Interval(float("-inf"), value)
    return Interval(value, float("inf"))


def parse_where(clause: str) -> Rectangle:
    """Parse a conjunctive WHERE clause into a rectangle predicate.

    >>> parse_where("500 < Distance AND Distance < 800 AND AirTime <= 120")
    Rectangle(AirTime=[-inf, 120], Distance=[500, 800])
    """
    if clause is None or not clause.strip():
        return Rectangle.unconstrained()
    text = clause.strip()
    if text.lower().startswith("where "):
        text = text[6:]
    constraints: Dict[str, Interval] = {}
    terms: List[str] = _AND_SPLIT.split(text)
    merged_terms = _merge_between_terms(terms)
    for term in merged_terms:
        for column, interval in _term_to_interval(term).items():
            if column in constraints:
                constraints[column] = constraints[column].intersect(interval)
            else:
                constraints[column] = interval
    return Rectangle(constraints)


def _merge_between_terms(terms: List[str]) -> List[str]:
    """Re-join ``X BETWEEN a`` / ``b`` pairs that the AND-split separated."""
    merged: List[str] = []
    skip_next = False
    for position, term in enumerate(terms):
        if skip_next:
            skip_next = False
            continue
        if re.search(r"\bbetween\b", term, re.IGNORECASE) and not _BETWEEN.match(term):
            if position + 1 >= len(terms):
                raise WhereClauseError(f"dangling BETWEEN in term {term!r}")
            merged.append(f"{term} AND {terms[position + 1]}")
            skip_next = True
        else:
            merged.append(term)
    return merged
