"""Query predicates: intervals and hyper-rectangles.

The paper defines a query as a hyper-rectangle characterised by a lower-left
and an upper-right corner (Section 4).  Unconstrained dimensions are
expressed with infinite bounds and point queries by setting the lower and
upper bounds equal.  The classes in this module encode exactly that model
and provide the vectorised containment and intersection operations the
indexes and the query translator need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

__all__ = ["Interval", "Rectangle", "batch_bounds"]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` on a single attribute.

    Both bounds are inclusive, matching the scan semantics of the paper's
    primary index (records exactly on the margin boundary belong to the
    primary index).  Unbounded sides use ``-inf`` / ``+inf``.
    """

    low: float = -math.inf
    high: float = math.inf

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval bounds must not be NaN")

    # ------------------------------------------------------------------
    # Basic predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when no value can satisfy the interval."""
        return self.low > self.high

    @property
    def is_unbounded(self) -> bool:
        """True when the interval places no constraint at all."""
        return math.isinf(self.low) and self.low < 0 and math.isinf(self.high) and self.high > 0

    @property
    def is_point(self) -> bool:
        """True when the interval admits exactly one value."""
        return self.low == self.high and not self.is_empty

    @property
    def width(self) -> float:
        """Length of the interval (0 for points, inf for unbounded sides)."""
        if self.is_empty:
            return 0.0
        return self.high - self.low

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def contains_value(self, value: float) -> bool:
        """Scalar containment check."""
        return self.low <= value <= self.high

    def contains(self, values: np.ndarray) -> np.ndarray:
        """Vectorised containment check returning a boolean mask."""
        values = np.asarray(values)
        return (values >= self.low) & (values <= self.high)

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection of two intervals (may be empty)."""
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def expand(self, below: float, above: float) -> "Interval":
        """Widen the interval by ``below`` on the left and ``above`` on the right."""
        if below < 0 or above < 0:
            raise ValueError("expansion amounts must be non-negative")
        return Interval(self.low - below, self.high + above)

    def clamp(self, low: float, high: float) -> "Interval":
        """Restrict the interval to ``[low, high]``."""
        return self.intersect(Interval(low, high))

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one value."""
        return not self.intersect(other).is_empty

    @classmethod
    def point(cls, value: float) -> "Interval":
        """Interval containing exactly one value."""
        return cls(value, value)

    @classmethod
    def unbounded(cls) -> "Interval":
        """Interval placing no constraint."""
        return cls(-math.inf, math.inf)

    @classmethod
    def empty(cls) -> "Interval":
        """Canonical empty interval."""
        return cls(math.inf, -math.inf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval({self.low!r}, {self.high!r})"


class Rectangle:
    """A hyper-rectangle predicate over named attributes.

    A rectangle maps attribute names to :class:`Interval` constraints.
    Attributes not present are unconstrained.  This is the query object
    consumed by every index in the library and produced by the workload
    generators.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Optional[Mapping[str, Interval]] = None) -> None:
        self._intervals: Dict[str, Interval] = {}
        if intervals:
            for name, interval in intervals.items():
                if not isinstance(interval, Interval):
                    raise TypeError(f"constraint for {name!r} must be an Interval")
                if not interval.is_unbounded:
                    self._intervals[name] = interval

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bounds(
        cls,
        lows: Mapping[str, float],
        highs: Mapping[str, float],
    ) -> "Rectangle":
        """Build a rectangle from parallel lower/upper bound mappings."""
        if set(lows) != set(highs):
            raise ValueError("lows and highs must cover the same attributes")
        return cls({name: Interval(lows[name], highs[name]) for name in lows})

    @classmethod
    def from_point(cls, point: Mapping[str, float]) -> "Rectangle":
        """Point query: every dimension constrained to a single value."""
        return cls({name: Interval.point(value) for name, value in point.items()})

    @classmethod
    def unconstrained(cls) -> "Rectangle":
        """Rectangle matching every record."""
        return cls({})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def constrained_dims(self) -> Tuple[str, ...]:
        """Names of the attributes that carry a real constraint."""
        return tuple(self._intervals)

    @property
    def is_empty(self) -> bool:
        """True when any constraint is unsatisfiable."""
        return any(interval.is_empty for interval in self._intervals.values())

    @property
    def is_point(self) -> bool:
        """True when every constrained dimension is a point constraint."""
        return bool(self._intervals) and all(
            interval.is_point for interval in self._intervals.values()
        )

    def interval(self, dim: str) -> Interval:
        """Constraint for ``dim`` (unbounded if the dimension is free)."""
        return self._intervals.get(dim, Interval.unbounded())

    def constrains(self, dim: str) -> bool:
        """True when ``dim`` carries a non-trivial constraint."""
        return dim in self._intervals

    def items(self) -> Iterator[Tuple[str, Interval]]:
        """Iterate over ``(dimension, interval)`` pairs with real constraints."""
        return iter(self._intervals.items())

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rectangle):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._intervals.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}=[{iv.low:g}, {iv.high:g}]" for name, iv in sorted(self._intervals.items())
        )
        return f"Rectangle({parts})"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean mask of rows satisfying every constraint.

        ``columns`` maps attribute names to equal-length arrays; attributes
        missing from ``columns`` but constrained by the rectangle raise a
        ``KeyError`` so schema mismatches never pass silently.
        """
        n_rows = 0
        for array in columns.values():
            n_rows = len(array)
            break
        mask = np.ones(n_rows, dtype=bool)
        for name, interval in self._intervals.items():
            # repro-lint: allow[materialize] zero-copy view for ndarray/memmap input; the coercion exists for list-valued oracle columns
            mask &= interval.contains(np.asarray(columns[name]))
        return mask

    def matches_row(self, row: Mapping[str, float]) -> bool:
        """Scalar version of :meth:`matches` for a single record."""
        return all(
            interval.contains_value(float(row[name]))
            for name, interval in self._intervals.items()
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Rectangle") -> "Rectangle":
        """Conjunction of two rectangles."""
        merged: Dict[str, Interval] = dict(self._intervals)
        for name, interval in other._intervals.items():
            if name in merged:
                merged[name] = merged[name].intersect(interval)
            else:
                merged[name] = interval
        return Rectangle(merged)

    def with_interval(self, dim: str, interval: Interval) -> "Rectangle":
        """Copy of the rectangle with the constraint on ``dim`` replaced."""
        merged = dict(self._intervals)
        if interval.is_unbounded:
            merged.pop(dim, None)
        else:
            merged[dim] = interval
        return Rectangle(merged)

    def without_dims(self, dims: Iterable[str]) -> "Rectangle":
        """Copy of the rectangle with constraints on ``dims`` dropped."""
        drop = set(dims)
        return Rectangle({n: iv for n, iv in self._intervals.items() if n not in drop})

    def project(self, dims: Iterable[str]) -> "Rectangle":
        """Copy keeping only constraints on ``dims``."""
        keep = set(dims)
        return Rectangle({n: iv for n, iv in self._intervals.items() if n in keep})

    def overlaps_box(self, lows: Mapping[str, float], highs: Mapping[str, float]) -> bool:
        """True when the rectangle intersects the axis-aligned box given by bounds."""
        for name, interval in self._intervals.items():
            if name not in lows:
                continue
            if interval.high < lows[name] or interval.low > highs[name]:
                return False
        return True


def batch_bounds(
    queries: "Iterable[Rectangle]",
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Per-attribute ``(lows, highs)`` bound matrices of a query batch.

    The columnar form of a list of rectangles: for every attribute
    constrained by at least one query, parallel arrays hold each query's
    bounds (unconstrained slots stay at ``-inf``/``+inf``, so vectorised
    containment checks treat them as always-true).  This is the
    representation the batch execution paths (grid kernels, batch query
    translation, batch planning) operate on — built with a single pass over
    the rectangles instead of one ``interval()`` dispatch per (query,
    attribute) pair.
    """
    queries = list(queries)
    n_queries = len(queries)
    bounds: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for i, query in enumerate(queries):
        for name, interval in query.items():
            if name not in bounds:
                bounds[name] = (
                    np.full(n_queries, -np.inf),
                    np.full(n_queries, np.inf),
                )
            bounds[name][0][i] = interval.low
            bounds[name][1][i] = interval.high
    return bounds


@dataclass
class PredicateStats:
    """Bookkeeping for predicate evaluation, used by benchmark reporting."""

    rows_examined: int = 0
    rows_matched: int = 0
    cells_visited: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "PredicateStats") -> "PredicateStats":
        """Accumulate another stats object into this one and return self."""
        self.rows_examined += other.rows_examined
        self.rows_matched += other.rows_matched
        self.cells_visited += other.cells_visited
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self
