"""Generic synthetic dataset generator with correlated attribute groups.

The paper evaluates COAX on datasets whose defining property is that several
attributes form soft-functional-dependency groups: within a group, every
attribute is (approximately) a linear function of one predictor attribute,
up to bounded noise, with a minority of outlier records that do not follow
the dependency at all.  This module provides a configurable generator for
such datasets; the Airline and OSM generators are thin wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.data.table import Table

__all__ = [
    "CorrelatedGroupSpec",
    "SyntheticDatasetSpec",
    "generate_correlated_dataset",
    "generate_drifting_batches",
    "clustered_coordinates",
]


@dataclass(frozen=True)
class CorrelatedGroupSpec:
    """Specification of one group of correlated attributes.

    The first attribute in ``attributes`` is the *base* attribute of the
    group; every other attribute ``a_i`` is generated as
    ``slope_i * base + intercept_i + noise`` for inlier records, while
    outlier records draw the dependent value uniformly over the attribute
    range, breaking the dependency exactly the way the paper's outlier
    index is meant to absorb.
    """

    attributes: Tuple[str, ...]
    slopes: Tuple[float, ...] = ()
    intercepts: Tuple[float, ...] = ()
    noise_scale: float = 1.0
    outlier_fraction: float = 0.08
    base_low: float = 0.0
    base_high: float = 1000.0
    base_distribution: str = "uniform"  # "uniform" | "lognormal" | "clustered"

    def __post_init__(self) -> None:
        if len(self.attributes) < 1:
            raise ValueError("a group needs at least one attribute")
        n_dependent = len(self.attributes) - 1
        slopes = self.slopes if self.slopes else tuple([1.0] * n_dependent)
        intercepts = self.intercepts if self.intercepts else tuple([0.0] * n_dependent)
        if len(slopes) != n_dependent or len(intercepts) != n_dependent:
            raise ValueError("slopes/intercepts must match the number of dependent attributes")
        object.__setattr__(self, "slopes", slopes)
        object.__setattr__(self, "intercepts", intercepts)
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")
        if self.base_high <= self.base_low:
            raise ValueError("base_high must exceed base_low")

    @property
    def base_attribute(self) -> str:
        """Name of the predictor attribute of the group."""
        return self.attributes[0]

    @property
    def dependent_attributes(self) -> Tuple[str, ...]:
        """Names of the attributes predicted from the base attribute."""
        return self.attributes[1:]


@dataclass(frozen=True)
class SyntheticDatasetSpec:
    """Full description of a synthetic dataset.

    ``independent_attributes`` are uncorrelated with everything else and are
    drawn from per-attribute ``(low, high)`` uniform ranges.
    """

    n_rows: int
    groups: Tuple[CorrelatedGroupSpec, ...] = ()
    independent_attributes: Tuple[Tuple[str, float, float], ...] = ()
    seed: int = 0

    def attribute_names(self) -> List[str]:
        """All attribute names in generation order."""
        names: List[str] = []
        for group in self.groups:
            names.extend(group.attributes)
        names.extend(name for name, _, _ in self.independent_attributes)
        return names

    def __post_init__(self) -> None:
        names = self.attribute_names()
        if len(set(names)) != len(names):
            raise ValueError("attribute names must be unique across groups")
        if self.n_rows <= 0:
            raise ValueError("n_rows must be positive")


def _draw_base(
    spec: CorrelatedGroupSpec, n_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw the base attribute values for one correlated group."""
    span = spec.base_high - spec.base_low
    if spec.base_distribution == "uniform":
        return rng.uniform(spec.base_low, spec.base_high, size=n_rows)
    if spec.base_distribution == "lognormal":
        raw = rng.lognormal(mean=0.0, sigma=0.75, size=n_rows)
        raw = raw / raw.max() if raw.max() > 0 else raw
        return spec.base_low + raw * span
    if spec.base_distribution == "clustered":
        centres = rng.uniform(spec.base_low, spec.base_high, size=max(3, n_rows // 2000 + 3))
        assignment = rng.integers(0, len(centres), size=n_rows)
        jitter = rng.normal(0.0, span * 0.02, size=n_rows)
        values = centres[assignment] + jitter
        return np.clip(values, spec.base_low, spec.base_high)
    raise ValueError(f"unknown base distribution {spec.base_distribution!r}")


def _generate_group(
    spec: CorrelatedGroupSpec, n_rows: int, rng: np.random.Generator
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Generate one correlated group; returns (columns, outlier mask)."""
    base = _draw_base(spec, n_rows, rng)
    columns: Dict[str, np.ndarray] = {spec.base_attribute: base}
    outlier_mask = rng.random(n_rows) < spec.outlier_fraction
    for attr, slope, intercept in zip(spec.dependent_attributes, spec.slopes, spec.intercepts):
        noise = rng.normal(0.0, spec.noise_scale, size=n_rows)
        values = slope * base + intercept + noise
        if outlier_mask.any():
            low = values.min() if len(values) else 0.0
            high = values.max() if len(values) else 1.0
            if high <= low:
                high = low + 1.0
            values = values.copy()
            values[outlier_mask] = rng.uniform(low, high, size=int(outlier_mask.sum()))
        columns[attr] = values
    return columns, outlier_mask


def generate_correlated_dataset(spec: SyntheticDatasetSpec) -> Tuple[Table, Dict[str, np.ndarray]]:
    """Generate a synthetic dataset according to ``spec``.

    Returns the table and a metadata dict containing, per correlated group,
    the boolean mask of records generated as outliers (keyed by the group's
    base attribute name).  The metadata is ground truth used by tests to
    check that COAX's learned partition approximates the generating one.
    """
    rng = np.random.default_rng(spec.seed)
    columns: Dict[str, np.ndarray] = {}
    metadata: Dict[str, np.ndarray] = {}
    for group in spec.groups:
        group_columns, outlier_mask = _generate_group(group, spec.n_rows, rng)
        columns.update(group_columns)
        metadata[group.base_attribute] = outlier_mask
    for name, low, high in spec.independent_attributes:
        columns[name] = rng.uniform(low, high, size=spec.n_rows)
    return Table(columns), metadata


def generate_drifting_batches(
    spec: SyntheticDatasetSpec,
    *,
    n_batches: int,
    rows_per_batch: int,
    intercept_drift: float,
    slope_drift: float = 0.0,
    hold_fraction: float = 0.0,
    seed: int | None = None,
) -> List[Dict[str, np.ndarray]]:
    """An insert stream whose correlated groups drift over the batches.

    The workload model for adaptive-maintenance experiments: batch ``j``
    is generated from ``spec`` with every dependent attribute's intercept
    shifted by ``ramp(j) * intercept_drift`` (and its slope by
    ``ramp(j) * slope_drift``), where ``ramp`` rises linearly from
    ``1/n_batches`` to 1 over the first ``(1 - hold_fraction)`` share of
    the stream and then *holds* at the final shift — the
    ramp-then-stabilise shape of a regime change.  Independent attributes
    and the outlier mechanism are untouched, so only the location of the
    dependency moves, exactly what stale frozen margins cannot follow.

    Returns one schema-complete column mapping per batch (ready for
    ``insert_batch``); drift is constant within a batch and steps between
    batches.  ``seed`` defaults to ``spec.seed + 1`` so the stream never
    replays the build table.
    """
    if n_batches < 1:
        raise ValueError("n_batches must be at least 1")
    if rows_per_batch < 1:
        raise ValueError("rows_per_batch must be at least 1")
    if not 0.0 <= hold_fraction < 1.0:
        raise ValueError("hold_fraction must be in [0, 1)")
    rng = np.random.default_rng(spec.seed + 1 if seed is None else seed)
    ramp_batches = max(int(round(n_batches * (1.0 - hold_fraction))), 1)
    batches: List[Dict[str, np.ndarray]] = []
    for j in range(n_batches):
        ramp = min(j + 1, ramp_batches) / ramp_batches
        columns: Dict[str, np.ndarray] = {}
        for group in spec.groups:
            drifted = CorrelatedGroupSpec(
                attributes=group.attributes,
                slopes=tuple(
                    slope + ramp * slope_drift for slope in group.slopes
                ),
                intercepts=tuple(
                    intercept + ramp * intercept_drift
                    for intercept in group.intercepts
                ),
                noise_scale=group.noise_scale,
                outlier_fraction=group.outlier_fraction,
                base_low=group.base_low,
                base_high=group.base_high,
                base_distribution=group.base_distribution,
            )
            group_columns, _ = _generate_group(drifted, rows_per_batch, rng)
            columns.update(group_columns)
        for name, low, high in spec.independent_attributes:
            columns[name] = rng.uniform(low, high, size=rows_per_batch)
        batches.append(columns)
    return batches


def clustered_coordinates(
    n_rows: int,
    rng: np.random.Generator,
    *,
    n_clusters: int = 12,
    lat_range: Tuple[float, float] = (40.0, 47.5),
    lon_range: Tuple[float, float] = (-80.0, -66.9),
    cluster_std: float = 0.15,
    background_fraction: float = 0.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Latitude/longitude pairs with multiple dense areas.

    Mirrors the structure the paper reports for the OSM US-Northeast
    extract: coordinates concentrate around a handful of dense urban areas
    with a thin uniform background.
    """
    lat_centres = rng.uniform(lat_range[0], lat_range[1], size=n_clusters)
    lon_centres = rng.uniform(lon_range[0], lon_range[1], size=n_clusters)
    weights = rng.dirichlet(np.ones(n_clusters) * 1.5)
    assignment = rng.choice(n_clusters, size=n_rows, p=weights)
    lat = lat_centres[assignment] + rng.normal(0.0, cluster_std, size=n_rows)
    lon = lon_centres[assignment] + rng.normal(0.0, cluster_std, size=n_rows)
    background = rng.random(n_rows) < background_fraction
    n_background = int(background.sum())
    if n_background:
        lat[background] = rng.uniform(lat_range[0], lat_range[1], size=n_background)
        lon[background] = rng.uniform(lon_range[0], lon_range[1], size=n_background)
    lat = np.clip(lat, lat_range[0], lat_range[1])
    lon = np.clip(lon, lon_range[0], lon_range[1])
    return lat, lon
