"""Pluggable query executors: what a query *does* with its matching rows.

Every read path of the library used to hard-code one result shape — a
rectangle in, a materialized row-id array out.  The executor abstraction
splits "which rows match" from "what the query consumes":

* :class:`MaterializeIds` — the classic behaviour and the default: the
  result is the array of matching original row ids.
* :class:`Aggregate` — COUNT/SUM/MIN/MAX/AVG over a value column.  The
  index layers fold candidate runs into an :class:`AggregatePartial`
  (per-query count/sum/min/max accumulators) *without* materializing the
  matching row ids; compound indexes and the sharded engine merge
  partials component-wise, so an aggregate moves O(queries) accumulator
  data through the scatter-gather machinery instead of O(rows) ids.
* :class:`TopK` — either k-nearest-neighbour by L2/L∞ distance around a
  point (answered by expanding-ring search over the grid directory), or
  the k smallest/largest rows by a column within a rectangle.  Partial
  results are small ``(key, row_id)`` candidate sets merged with
  :func:`merge_topk`; ties always break toward the smaller row id.

The specs are declarative and layer-agnostic (NumPy only), which is why
they live next to :mod:`repro.data.predicates` rather than in
:mod:`repro.core`: both the index substrate and the engine/serve layers
import them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "AGGREGATE_OPS",
    "METRIC_CHOICES",
    "MaterializeIds",
    "MATERIALIZE",
    "Aggregate",
    "TopK",
    "Executor",
    "executor_key",
    "AggregatePartial",
    "select_topk",
    "merge_topk",
    "point_distances",
]

#: Aggregate operations the :class:`Aggregate` executor supports.
AGGREGATE_OPS: Tuple[str, ...] = ("count", "sum", "min", "max", "avg")

#: Distance metrics the kNN mode of :class:`TopK` supports.
METRIC_CHOICES: Tuple[str, ...] = ("l2", "linf")


@dataclass(frozen=True)
class MaterializeIds:
    """Classic executor: the result is the matching row-id array itself."""

    kind = "materialize"


#: Shared default instance (the spec carries no state).
MATERIALIZE = MaterializeIds()


@dataclass(frozen=True)
class Aggregate:
    """Fold the matching rows of a rectangle into one scalar per query.

    ``op`` is one of :data:`AGGREGATE_OPS`.  ``column`` names the value
    column folded by SUM/MIN/MAX/AVG; COUNT needs no column.  Semantics
    over an empty match set: COUNT is 0, SUM is 0.0, MIN/MAX/AVG are NaN.
    """

    op: str
    column: Optional[str] = None

    kind = "aggregate"

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise ValueError(f"op must be one of {AGGREGATE_OPS}, got {self.op!r}")
        if self.op != "count" and self.column is None:
            raise ValueError(f"aggregate op {self.op!r} needs a value column")


@dataclass(frozen=True)
class TopK:
    """Top-k executor: kNN around a point, or k extremes by a column.

    Exactly one of ``point`` (kNN mode: the k nearest live rows by
    ``metric`` distance over the point's attributes) and ``column``
    (rectangle mode: the k smallest — or, with ``largest``, k biggest —
    matching rows by the column) must be given.  Result row ids are
    ordered by ``(key, row_id)``, so ties always break toward the
    smaller row id, which is what makes results reproducible across
    shardings and against the full-scan oracle.
    """

    k: int
    point: Optional[Mapping[str, float]] = field(default=None, hash=False)
    metric: str = "l2"
    column: Optional[str] = None
    largest: bool = False

    kind = "topk"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if (self.point is None) == (self.column is None):
            raise ValueError("exactly one of point (kNN) and column must be given")
        if self.metric not in METRIC_CHOICES:
            raise ValueError(
                f"metric must be one of {METRIC_CHOICES}, got {self.metric!r}"
            )

    @property
    def is_knn(self) -> bool:
        """True in kNN (point) mode, False in by-column rectangle mode."""
        return self.point is not None


#: Anything a query can carry as its consumer.
Executor = Union[MaterializeIds, Aggregate, TopK]


def executor_key(executor: Executor) -> Tuple:
    """Batch-compatibility key: queries with equal keys may share a batch.

    The coalescer groups queued queries by this key so one dispatched
    micro-batch runs a single executor kind end to end (the engine batch
    kernels take one spec per batch).  kNN points intentionally do not
    participate: a batch of kNN queries with different centers is still
    dispatched together and looped inside the engine.
    """
    kind = getattr(executor, "kind", "materialize")
    if kind == "aggregate":
        return ("aggregate", executor.op, executor.column)
    if kind == "topk":
        return ("topk", executor.k, executor.metric, executor.column, executor.largest)
    return ("materialize",)


class AggregatePartial:
    """Per-query aggregate accumulators — the unit the layers merge.

    Holds four parallel arrays over ``n`` queries: ``count`` (int64),
    ``total`` (float64 running sum), ``minimum``/``maximum`` (float64,
    identity ``+inf``/``-inf``).  Every partial covers a *disjoint* row
    subset (primary vs outlier vs delta, or per shard), so the merge is
    component-wise: counts and totals add, minima/maxima fold.

    COUNT/MIN/MAX merge exactly (integer addition respectively exact
    float min/max), which is why those ops are bit-identical across
    shardings and against the full-scan oracle.  SUM/AVG merge by float
    addition, so re-association across partials can differ from a single
    left-to-right sum in the last ulps — callers compare them with a
    float tolerance, never bit-for-bit.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(
        self,
        count: np.ndarray,
        total: np.ndarray,
        minimum: np.ndarray,
        maximum: np.ndarray,
    ) -> None:
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    @classmethod
    def identity(cls, n_queries: int) -> "AggregatePartial":
        """The empty accumulator over ``n_queries`` slots."""
        return cls(
            count=np.zeros(n_queries, dtype=np.int64),
            total=np.zeros(n_queries, dtype=np.float64),
            minimum=np.full(n_queries, np.inf, dtype=np.float64),
            maximum=np.full(n_queries, -np.inf, dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self.count)

    def fold_values(self, qids: np.ndarray, values: Optional[np.ndarray]) -> None:
        """Fold one batch of matching rows, attributed to queries by ``qids``.

        ``values`` is the gathered value column of those rows (``None``
        for a column-less COUNT).  Count always accumulates; the value
        accumulators only when values are given.
        """
        if len(qids) == 0:
            return
        n = len(self.count)
        self.count += np.bincount(qids, minlength=n).astype(np.int64)
        if values is None:
            return
        self.total += np.bincount(qids, weights=values, minlength=n)
        np.minimum.at(self.minimum, qids, values)
        np.maximum.at(self.maximum, qids, values)

    def add_run_counts(self, qids: np.ndarray, lengths: np.ndarray) -> None:
        """Fold covered candidate runs by length alone — the COUNT pushdown."""
        if len(qids) == 0:
            return
        self.count += np.bincount(
            qids, weights=lengths, minlength=len(self.count)
        ).astype(np.int64)

    def add_run_totals(self, qids: np.ndarray, totals: np.ndarray) -> None:
        """Fold per-run sums (from a prefix-sum cache) — the SUM pushdown."""
        if len(qids) == 0:
            return
        self.total += np.bincount(qids, weights=totals, minlength=len(self.count))

    def merge(self, other: "AggregatePartial") -> "AggregatePartial":
        """Component-wise merge of an equal-length partial; returns ``self``."""
        self.count += other.count
        self.total += other.total
        np.minimum(self.minimum, other.minimum, out=self.minimum)
        np.maximum(self.maximum, other.maximum, out=self.maximum)
        return self

    def merge_at(self, slots: np.ndarray, other: "AggregatePartial") -> None:
        """Merge a partial covering the query subset ``slots`` into ``self``.

        The scatter-gather form: a shard that executed queries
        ``slots[i]`` hands back a dense partial of ``len(slots)`` rows;
        slots are unique per shard, so plain fancy-indexed accumulation
        is exact.
        """
        if len(slots) == 0:
            return
        self.count[slots] += other.count
        self.total[slots] += other.total
        np.minimum.at(self.minimum, slots, other.minimum)
        np.maximum.at(self.maximum, slots, other.maximum)

    def take(self, slots: np.ndarray) -> "AggregatePartial":
        """Dense copy of the accumulator rows for the query subset ``slots``."""
        return AggregatePartial(
            count=self.count[slots],
            total=self.total[slots],
            minimum=self.minimum[slots],
            maximum=self.maximum[slots],
        )

    def state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Plain-array form for process-executor transport."""
        return self.count, self.total, self.minimum, self.maximum

    @classmethod
    def from_state(
        cls, state: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> "AggregatePartial":
        """Rebuild from :meth:`state` output (inverse of transport)."""
        count, total, minimum, maximum = state
        return cls(
            count=np.asarray(count, dtype=np.int64),
            total=np.asarray(total, dtype=np.float64),
            minimum=np.asarray(minimum, dtype=np.float64),
            maximum=np.asarray(maximum, dtype=np.float64),
        )

    def finalize(self, spec: Aggregate) -> np.ndarray:
        """Per-query results of ``spec`` (int64 for COUNT, float64 otherwise).

        Empty-match semantics: COUNT 0, SUM 0.0, MIN/MAX/AVG NaN.
        """
        if spec.op == "count":
            return self.count.astype(np.int64)
        empty = self.count == 0
        if spec.op == "sum":
            return np.where(empty, 0.0, self.total)
        if spec.op == "min":
            return np.where(empty, np.nan, self.minimum)
        if spec.op == "max":
            return np.where(empty, np.nan, self.maximum)
        return np.where(empty, np.nan, self.total / np.maximum(self.count, 1))


def select_topk(
    keys: np.ndarray, ids: np.ndarray, k: int, *, largest: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """The k best ``(key, id)`` pairs, ordered by ``(key, id)``.

    "Best" means smallest keys (or biggest with ``largest``); equal keys
    order by ascending row id, the library-wide tie-break.  Large
    candidate sets are pre-narrowed with ``argpartition`` so the exact
    ``lexsort`` only touches ~k survivors.
    """
    keys = np.asarray(keys, dtype=np.float64)
    ids = np.asarray(ids, dtype=np.int64)
    sort_keys = -keys if largest else keys
    if len(keys) > 4 * k:
        # argpartition gives an unordered k-prefix by key alone; widening
        # the cut to every candidate tied with the kth key keeps the
        # id tie-break exact before the final sort truncates to k.
        cut = np.argpartition(sort_keys, k - 1)
        threshold = sort_keys[cut[k - 1]]
        keep = np.flatnonzero(sort_keys <= threshold)
        sort_keys = sort_keys[keep]
        ids = ids[keep]
        keys = keys[keep]
    order = np.lexsort((ids, sort_keys))[:k]
    return keys[order], ids[order]


def merge_topk(
    parts: Sequence[Tuple[np.ndarray, np.ndarray]], k: int, *, largest: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-sub-index/per-shard top-k candidate sets into one top-k.

    Each part is a ``(keys, ids)`` pair over a disjoint row subset;
    concatenating and re-selecting is exact because every global top-k
    row is necessarily in its own part's top-k.
    """
    parts = [part for part in parts if part is not None and len(part[1])]
    if not parts:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    keys = np.concatenate([part[0] for part in parts])
    ids = np.concatenate([part[1] for part in parts])
    return select_topk(keys, ids, k, largest=largest)


def point_distances(
    columns: Mapping[str, np.ndarray],
    positions: Optional[np.ndarray],
    point: Mapping[str, float],
    metric: str,
) -> np.ndarray:
    """Distance keys from ``point`` to the rows at ``positions``.

    ``None`` positions means every row.  Keys are *monotone* in the true
    distance — squared distance for L2, max absolute difference for L∞ —
    which is all ordering and tie-breaking need; callers comparing a key
    against a geometric gap must square the gap first for L2
    (:class:`TopK` never exposes the keys themselves).
    """
    keys: Optional[np.ndarray] = None
    for dim, target in point.items():
        column = columns[dim]
        values = column if positions is None else column[positions]
        diff = values - float(target)
        if metric == "l2":
            contribution = diff * diff
        else:
            contribution = np.abs(diff)
        if keys is None:
            keys = contribution
        elif metric == "l2":
            keys = keys + contribution
        else:
            np.maximum(keys, contribution, out=keys)
    if keys is None:
        n = len(next(iter(columns.values()))) if positions is None else len(positions)
        return np.zeros(n, dtype=np.float64)
    return keys.astype(np.float64, copy=False)
