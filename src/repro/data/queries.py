"""Query workload generators.

The paper's methodology (Section 8.1.2): "We generate the queries by picking
a random record from the data.  Then, we find the K nearest records and take
the minimum and maximum values corresponding to each dimension.  Our range
queries are rectangles and target all attributes in the index."  Point
queries are range queries where the lower and upper bound coincide
(Section 8.2.1).  Figure 7 additionally sweeps the query selectivity
(average number of matching points), which we reproduce with
:func:`generate_selectivity_queries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table

__all__ = [
    "WorkloadConfig",
    "QueryWorkload",
    "generate_knn_queries",
    "generate_point_queries",
    "generate_selectivity_queries",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a query workload."""

    n_queries: int = 100
    #: K used for the KNN-derived rectangles (the paper's query generator).
    k_neighbours: int = 100
    #: Attributes the queries constrain; ``None`` means every attribute.
    dimensions: Optional[Tuple[str, ...]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_queries <= 0:
            raise ValueError("n_queries must be positive")
        if self.k_neighbours <= 0:
            raise ValueError("k_neighbours must be positive")


@dataclass
class QueryWorkload:
    """A list of rectangle queries plus bookkeeping used by benchmarks."""

    queries: List[Rectangle]
    kind: str = "range"
    #: Ground-truth cardinalities (filled lazily by :meth:`cardinalities`).
    _cardinalities: Optional[np.ndarray] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, item: int) -> Rectangle:
        return self.queries[item]

    def cardinalities(self, table: Table) -> np.ndarray:
        """Exact result sizes of every query against ``table`` (cached)."""
        if self._cardinalities is None or len(self._cardinalities) != len(self.queries):
            self._cardinalities = np.array(
                [len(table.select(query)) for query in self.queries], dtype=np.int64
            )
        return self._cardinalities

    def mean_selectivity(self, table: Table) -> float:
        """Average matching-row count across the workload."""
        cards = self.cardinalities(table)
        return float(cards.mean()) if len(cards) else 0.0


def _standardised_matrix(table: Table, dims: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Column-standardised matrix over ``dims`` plus the per-column scales."""
    matrix = table.to_matrix(dims)
    scales = matrix.std(axis=0)
    scales[scales == 0.0] = 1.0
    return matrix / scales, scales


def _knn_rectangle(
    matrix: np.ndarray,
    raw: np.ndarray,
    dims: Sequence[str],
    anchor: int,
    k: int,
) -> Rectangle:
    """Rectangle spanning the K nearest neighbours of row ``anchor``.

    Distances are computed in standardised space so no single wide-range
    attribute dominates the neighbourhood, then bounds are reported in the
    original attribute units.
    """
    deltas = matrix - matrix[anchor]
    distances = np.einsum("ij,ij->i", deltas, deltas)
    k = min(k, len(matrix))
    neighbour_ids = np.argpartition(distances, k - 1)[:k]
    block = raw[neighbour_ids]
    lows = block.min(axis=0)
    highs = block.max(axis=0)
    return Rectangle(
        {dim: Interval(float(lows[i]), float(highs[i])) for i, dim in enumerate(dims)}
    )


def generate_knn_queries(
    table: Table,
    config: Optional[WorkloadConfig] = None,
) -> QueryWorkload:
    """Range queries built from K nearest neighbours of random records."""
    config = config if config is not None else WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    dims = list(config.dimensions) if config.dimensions else list(table.schema)
    matrix, _ = _standardised_matrix(table, dims)
    raw = table.to_matrix(dims)
    anchors = rng.integers(0, table.n_rows, size=config.n_queries)
    queries = [
        _knn_rectangle(matrix, raw, dims, int(anchor), config.k_neighbours)
        for anchor in anchors
    ]
    return QueryWorkload(queries=queries, kind="range")


def generate_point_queries(
    table: Table,
    config: Optional[WorkloadConfig] = None,
) -> QueryWorkload:
    """Point queries: existing records with lower bound == upper bound."""
    config = config if config is not None else WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    dims = list(config.dimensions) if config.dimensions else list(table.schema)
    anchors = rng.integers(0, table.n_rows, size=config.n_queries)
    queries = []
    for anchor in anchors:
        row = table.row(int(anchor))
        queries.append(Rectangle.from_point({dim: row[dim] for dim in dims}))
    return QueryWorkload(queries=queries, kind="point")


def generate_selectivity_queries(
    table: Table,
    target_selectivity: int,
    config: Optional[WorkloadConfig] = None,
    *,
    tolerance: float = 0.5,
    max_refinements: int = 12,
) -> QueryWorkload:
    """Range queries whose average result size approximates ``target_selectivity``.

    Reproduces the Figure 7 workload: queries are still KNN-derived
    rectangles, but K is searched so the measured cardinality lands within
    ``tolerance`` (relative) of the requested selectivity.  The refinement is
    a simple multiplicative search on K, which converges quickly because the
    cardinality of a KNN rectangle grows monotonically with K.
    """
    if target_selectivity <= 0:
        raise ValueError("target_selectivity must be positive")
    config = config if config is not None else WorkloadConfig()
    target = min(int(target_selectivity), table.n_rows)
    k = max(2, min(target, table.n_rows))
    probe_config = WorkloadConfig(
        n_queries=min(10, config.n_queries),
        k_neighbours=k,
        dimensions=config.dimensions,
        seed=config.seed,
    )
    for _ in range(max_refinements):
        probe = generate_knn_queries(table, probe_config)
        measured = probe.mean_selectivity(table)
        if measured <= 0:
            break
        ratio = target / measured
        if abs(1.0 - ratio) <= tolerance:
            break
        k = int(np.clip(k * ratio, 2, table.n_rows))
        probe_config = WorkloadConfig(
            n_queries=probe_config.n_queries,
            k_neighbours=k,
            dimensions=config.dimensions,
            seed=config.seed,
        )
    final_config = WorkloadConfig(
        n_queries=config.n_queries,
        k_neighbours=k,
        dimensions=config.dimensions,
        seed=config.seed,
    )
    workload = generate_knn_queries(table, final_config)
    workload.kind = f"selectivity~{target}"
    return workload
