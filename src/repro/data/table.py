"""Columnar table substrate.

All indexes in the library are built over :class:`Table`, a light columnar
container holding one NumPy ``float64`` array per attribute.  The paper's
experiments use single-precision floats in C; we keep double precision in
Python (the default NumPy dtype) since the comparative results do not depend
on it, but the dtype is configurable per column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle

__all__ = ["Schema", "Table"]


@dataclass(frozen=True)
class Schema:
    """Ordered list of attribute names of a table.

    The order matters: the paper sorts grid-cell addresses "using the
    original ordering of attributes in the dataset" (Section 6), so indexes
    rely on a stable attribute order.
    """

    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("schema contains duplicate column names")
        if not self.columns:
            raise ValueError("schema must contain at least one column")

    @classmethod
    def of(cls, *columns: str) -> "Schema":
        """Convenience constructor: ``Schema.of("a", "b")``."""
        return cls(tuple(columns))

    @property
    def n_dims(self) -> int:
        """Number of attributes."""
        return len(self.columns)

    def index_of(self, column: str) -> int:
        """Position of ``column`` in the schema order."""
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise KeyError(f"unknown column {column!r}") from exc

    def __contains__(self, column: str) -> bool:
        return column in self.columns

    def __iter__(self) -> Iterator[str]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)


class Table:
    """An immutable columnar table of float attributes.

    Rows are addressed by integer row ids (0 .. n_rows - 1).  Query results
    throughout the library are arrays of row ids into the original table,
    which makes result merging between the primary and the outlier index a
    simple set union.
    """

    def __init__(self, columns: Mapping[str, np.ndarray], *, copy: bool = False) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        names: List[str] = list(columns)
        arrays: Dict[str, np.ndarray] = {}
        n_rows: Optional[int] = None
        for name in names:
            array = np.asarray(columns[name], dtype=np.float64)
            if array.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if copy:
                array = array.copy()
            if n_rows is None:
                n_rows = len(array)
            elif len(array) != n_rows:
                raise ValueError(
                    f"column {name!r} has {len(array)} rows, expected {n_rows}"
                )
            arrays[name] = array
        self._schema = Schema(tuple(names))
        self._columns = arrays
        self._n_rows = int(n_rows or 0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: np.ndarray, columns: Sequence[str]) -> "Table":
        """Build a table from a 2-D array whose columns follow ``columns``."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        if matrix.shape[1] != len(columns):
            raise ValueError("column name count does not match matrix width")
        return cls({name: matrix[:, i] for i, name in enumerate(columns)})

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """Table with the given schema and zero rows."""
        return cls({name: np.empty(0, dtype=np.float64) for name in schema})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """Ordered schema of the table."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of records."""
        return self._n_rows

    @property
    def n_dims(self) -> int:
        """Number of attributes."""
        return self._schema.n_dims

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """The array backing attribute ``name`` (not a copy)."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise KeyError(f"unknown column {name!r}") from exc

    def columns(self) -> Dict[str, np.ndarray]:
        """Mapping of every column name to its backing array."""
        return dict(self._columns)

    def row(self, row_id: int) -> Dict[str, float]:
        """Materialise a single record as a plain dict."""
        if row_id < 0 or row_id >= self._n_rows:
            raise IndexError(f"row id {row_id} out of range")
        return {name: float(array[row_id]) for name, array in self._columns.items()}

    def to_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Dense 2-D view of (a subset of) the table, one column per attribute."""
        names = list(columns) if columns is not None else list(self._schema)
        return np.column_stack([self.column(name) for name in names]) if names else np.empty((self._n_rows, 0))

    def nbytes(self) -> int:
        """Total bytes occupied by the column data."""
        return int(sum(array.nbytes for array in self._columns.values()))

    def min(self, name: str) -> float:
        """Minimum of a column (0.0 for an empty table)."""
        array = self.column(name)
        return float(array.min()) if len(array) else 0.0

    def max(self, name: str) -> float:
        """Maximum of a column (0.0 for an empty table)."""
        array = self.column(name)
        return float(array.max()) if len(array) else 0.0

    def bounds(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Per-column (mins, maxs) of the table."""
        lows = {name: self.min(name) for name in self._schema}
        highs = {name: self.max(name) for name in self._schema}
        return lows, highs

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------
    def take(self, row_ids: np.ndarray) -> "Table":
        """New table restricted to ``row_ids`` (in the given order)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        return Table({name: array[row_ids] for name, array in self._columns.items()})

    def select(self, predicate: Rectangle) -> np.ndarray:
        """Row ids matching ``predicate`` by brute force (the Full Scan baseline)."""
        mask = predicate.matches(self._columns)
        return np.flatnonzero(mask).astype(np.int64)

    def mask(self, predicate: Rectangle) -> np.ndarray:
        """Boolean mask of rows matching ``predicate``."""
        return predicate.matches(self._columns)

    def sample_rows(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Row ids of a uniform sample without replacement (capped at n_rows)."""
        n = min(int(n), self._n_rows)
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return rng.choice(self._n_rows, size=n, replace=False).astype(np.int64)

    def sample(self, n: int, rng: np.random.Generator) -> "Table":
        """Uniform sample of the table as a new table."""
        return self.take(self.sample_rows(n, rng))

    def concat(self, other: "Table") -> "Table":
        """Concatenate two tables with identical schemas."""
        if other.schema.columns != self._schema.columns:
            raise ValueError("cannot concatenate tables with different schemas")
        return Table(
            {
                name: np.concatenate([self._columns[name], other.column(name)])
                for name in self._schema
            }
        )

    def with_column(self, name: str, values: np.ndarray) -> "Table":
        """Copy of the table with an extra (or replaced) column appended."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self._n_rows:
            raise ValueError("new column length does not match table")
        merged = dict(self._columns)
        merged[name] = values
        return Table(merged)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Copy of the table with columns renamed according to ``mapping``."""
        return Table({mapping.get(name, name): array for name, array in self._columns.items()})

    def iter_rows(self) -> Iterator[Dict[str, float]]:
        """Iterate over records as dicts (slow; intended for tests and examples)."""
        for row_id in range(self._n_rows):
            yield self.row(row_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(n_rows={self._n_rows}, columns={list(self._schema)})"


def concat_tables(tables: Iterable[Table]) -> Table:
    """Concatenate an iterable of tables sharing one schema."""
    tables = list(tables)
    if not tables:
        raise ValueError("need at least one table to concatenate")
    result = tables[0]
    for table in tables[1:]:
        result = result.concat(table)
    return result
