"""Pass ``materialize``: the mmap no-materialize policy, call-graph-aware.

Format v6 stores columns as copy-on-write ``np.memmap`` views; the batch
read path is fast *because* it slices those views lazily and never pulls
a whole column into anonymous memory.  One stray ``np.ascontiguousarray``
or ``.copy()`` on a column silently turns an O(touched-pages) query into
an O(column-bytes) materialization — correct output, ruined perf, and no
test fails.

Earlier this was guarded by a token grep over a hand-listed function set
(the retired ``tests/test_read_path_policy.py``), which rotted whenever a
function was renamed or a new helper joined the read path.  This pass
instead walks the project call graph from the configured entry points
(``AnalysisConfig.materialize_entry_points``) and checks **every
reachable function** — the list of roots is small and stable, and a root
that no longer resolves is itself a finding, so a rename cannot silently
shrink coverage.

In reachable functions the pass bans:

* ``ascontiguousarray(...)`` — always (it exists to materialize);
* ``.copy()`` / ``.tolist()`` — always;
* ``asarray(...)`` / ``np.array(...)`` — only when the argument's text
  mentions a column-source marker (``_columns``, ``memmap``, …); small
  id-array coercions are routine and stay legal.

Write-side maintenance reachable from the read roots only through
over-approximate call edges (compaction rebuilds, save-path snapshots)
materializes *by design* and is excluded via
``AnalysisConfig.materialize_stop_functions`` — the walk neither checks
nor descends into those.  Legitimate small-derived-array cases on the
read path itself carry the inline waiver::

    out = block.copy()  # repro-lint: allow[materialize] per-query result rows, not a column
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import iter_with_nested
from repro.analysis.core import Finding, Project

__all__ = ["MaterializePass"]

PASS_ID = "materialize"

_ALWAYS_BANNED_CALLS = ("ascontiguousarray",)
_ALWAYS_BANNED_METHODS = ("copy", "tolist")
_COLUMN_GUARDED_CALLS = ("asarray", "array")


class MaterializePass:
    id = PASS_ID
    description = (
        "batch read path (call-graph walk from its entry points) never "
        "materializes mmap-backed columns"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph
        config = project.config
        roots = list(config.materialize_entry_points)
        for root in roots:
            if graph.resolve(root) is None:
                module_name = root.split(":", 1)[0]
                yield Finding(
                    pass_id=PASS_ID,
                    file=module_name,
                    line=1,
                    symbol=root,
                    message=(
                        f"materialize entry point {root!r} does not resolve — "
                        "update AnalysisConfig.materialize_entry_points after "
                        "the rename so read-path coverage cannot rot"
                    ),
                )
        reachable = graph.reachable_from(
            roots, stop=config.materialize_stop_functions
        )
        for key in sorted(reachable):
            info = graph.resolve(key)
            yield from self._check_function(info, config)

    def _check_function(self, info, config) -> Iterator[Finding]:
        for node in iter_with_nested(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = self._call_name(node.func)
            is_method = isinstance(node.func, ast.Attribute)
            message = ""
            if name in _ALWAYS_BANNED_CALLS:
                message = (
                    f"{name}() materializes its input into anonymous memory"
                )
            elif name in _ALWAYS_BANNED_METHODS and is_method and not node.args:
                message = (
                    f".{name}() copies the underlying buffer — on an mmap "
                    "column that is an O(column-bytes) materialization"
                )
            elif name in _COLUMN_GUARDED_CALLS and self._touches_column(
                node, config.column_source_markers
            ):
                message = (
                    f"{name}() on column-sourced data forces the whole mmap "
                    "view resident"
                )
            if message:
                yield Finding(
                    pass_id=PASS_ID,
                    file=info.module.name,
                    line=node.lineno,
                    symbol=info.qualname,
                    message=(
                        f"on the batch read path ({info.qualname}): {message}; "
                        "slice the memmap view lazily, or waive with "
                        "'# repro-lint: allow[materialize] <reason>' if the "
                        "array is a small per-query derivative"
                    ),
                )

    @staticmethod
    def _call_name(func: ast.expr) -> str:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    @staticmethod
    def _touches_column(call: ast.Call, markers) -> bool:
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            text = ast.unparse(arg)
            if any(marker in text for marker in markers):
                return True
        return False
