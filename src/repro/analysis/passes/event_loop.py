"""Pass ``event-loop``: no blocking work on the asyncio loop.

The serve layer (``repro.serve``) runs its protocol on a single asyncio
event loop; one blocking call stalls every connected client.  The
engine's entry points are seconds-scale NumPy work and the storage layer
does real file I/O, so the serve code hands all of it to worker threads
via ``loop.run_in_executor`` / ``asyncio.to_thread``.

Inside every ``async def`` body of the configured module prefixes this
pass flags direct calls to:

* engine entry points (``AnalysisConfig.engine_entry_points``) — batch
  queries, mutations, compaction;
* ``time.sleep`` (the blocking one; ``asyncio.sleep`` is fine);
* blocking file I/O — ``open``, ``Path.read_*``/``write_*``;
* synchronous lock ``.acquire()`` — an *awaited* ``acquire()`` is an
  asyncio primitive and is fine.

Anything passed *into* ``run_in_executor``/``to_thread`` is exempt: that
is precisely the sanctioned way to run blocking work.  Nested ``def``
bodies are skipped — defining a sync helper inside an ``async def`` does
not run it on the loop.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.callgraph import iter_own_statements
from repro.analysis.core import Finding, Project, SourceModule

__all__ = ["EventLoopPass"]

PASS_ID = "event-loop"

_EXECUTOR_HANDOFFS = ("run_in_executor", "to_thread")
_BLOCKING_PATH_IO = (
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "unlink",
    "mkdir",
    "rename",
    "replace",
)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class EventLoopPass:
    id = PASS_ID
    description = (
        "async def bodies in the serve layer never call blocking work "
        "directly (engine entry points, time.sleep, file I/O, sync acquire)"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        prefixes = project.config.async_module_prefixes
        for module in project.modules:
            if not module.name.startswith(prefixes):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async_def(module, node, project)

    def _check_async_def(
        self, module: SourceModule, func: ast.AsyncFunctionDef, project: Project
    ) -> Iterator[Finding]:
        exempt: Set[int] = set()
        awaited: Set[int] = set()
        for node in iter_own_statements(func):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) in _EXECUTOR_HANDOFFS
            ):
                for arg in [*node.args, *node.keywords]:
                    value = arg.value if isinstance(arg, ast.keyword) else arg
                    for sub in ast.walk(value):
                        exempt.add(id(sub))

        config = project.config
        for node in iter_own_statements(func):
            if not isinstance(node, ast.Call) or id(node) in exempt:
                continue
            name = _call_name(node.func)
            flagged = ""
            if (
                name in config.engine_entry_points
                and isinstance(node.func, ast.Attribute)
                and id(node) not in awaited
            ):
                flagged = (
                    f"engine entry point .{name}() is blocking NumPy work — hand "
                    "it to loop.run_in_executor/asyncio.to_thread"
                )
            elif name == "sleep" and self._is_time_sleep(node.func):
                flagged = "time.sleep blocks the event loop — use asyncio.sleep"
            elif name == "open" and isinstance(node.func, ast.Name):
                flagged = (
                    "open() is blocking file I/O — run it in an executor thread"
                )
            elif (
                name in _BLOCKING_PATH_IO
                and isinstance(node.func, ast.Attribute)
                and id(node) not in awaited
            ):
                flagged = (
                    f".{name}() is blocking file I/O — run it in an executor thread"
                )
            elif (
                name == "acquire"
                and isinstance(node.func, ast.Attribute)
                and id(node) not in awaited
            ):
                flagged = (
                    "synchronous .acquire() can block the loop — await an "
                    "asyncio lock or run the critical section in an executor"
                )
            if flagged:
                yield Finding(
                    pass_id=PASS_ID,
                    file=module.name,
                    line=node.lineno,
                    symbol=func.name,
                    message=f"in async def {func.name}: {flagged}",
                )

    @staticmethod
    def _is_time_sleep(func: ast.expr) -> bool:
        """True for ``time.sleep`` / bare ``sleep`` imported from time."""
        if isinstance(func, ast.Attribute):
            return isinstance(func.value, ast.Name) and func.value.id == "time"
        return isinstance(func, ast.Name)
