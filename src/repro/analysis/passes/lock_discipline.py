"""Pass ``lock-discipline``: the single-writer contract, statically.

Two rules, both from the concurrency contract documented in
:mod:`repro.indexes.base` and :mod:`repro.core.engine`:

1. **Entry points lock first.**  Every public mutation method of the
   configured classes (``AnalysisConfig.mutation_methods``) must acquire
   the write lock as its first effectful statement — ``with
   self._write_lock:`` wrapping the body — or delegate to another
   mutation entry point / a ``*_locked`` helper in that first statement.
   Docstrings, ``del`` of ignored parameters and ``assert`` statements
   are not effectful and may precede the acquisition.

2. **Lock order is engine → shard → stats.**  Lock acquisitions nest
   only downward: the engine write lock (level 0) may be held while
   taking a shard's write lock (level 1), which may be held while taking
   a stats/spill leaf lock (level 2) — never the other way around, and
   never two *different* same-level locks nested (a second shard's lock
   inside the first is an ordering deadlock between concurrent
   mutators).  Re-entering the same lock expression is legal: the write
   locks are reentrant by design.  Functions named ``*_locked`` are
   analyzed as if the engine lock were already held, which is exactly
   their calling convention.  Additionally, a call to another mutation
   entry point (or ``*_locked`` helper) while holding a leaf lock is
   flagged: the callee will try to take a write lock above the held
   leaf.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, Project, SourceModule

__all__ = ["LockDisciplinePass"]

PASS_ID = "lock-discipline"

#: Ordering levels: engine write lock < shard write lock < leaf locks.
ENGINE, SHARD, LEAF = 0, 1, 2


def _is_effectless(statement: ast.stmt) -> bool:
    """Statements allowed before the lock acquisition."""
    if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
        return True  # docstring
    return isinstance(statement, (ast.Delete, ast.Assert, ast.Pass))


def _lock_level(
    expr: ast.expr, class_name: str, engine_classes: Tuple[str, ...]
) -> Optional[Tuple[int, str]]:
    """(level, canonical text) when ``expr`` is a lock acquisition."""
    text = ast.unparse(expr)
    if "stats_lock" in text or "spill_lock" in text:
        return LEAF, text
    if "_maintenance_guard" in text:
        # The engine's read guard: the engine write lock (or a no-op).
        return ENGINE, "self._write_lock"
    if "write_lock" in text:
        on_self = text.startswith("self.")
        if on_self and class_name in engine_classes:
            return ENGINE, text
        if on_self:
            return SHARD, text
        return SHARD, text
    return None


class LockDisciplinePass:
    id = PASS_ID
    description = (
        "mutation entry points take the write lock first; lock nesting "
        "respects engine -> shard -> stats order"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module, project)

    # ------------------------------------------------------------------
    # Rule 1: entry points lock first
    # ------------------------------------------------------------------
    def _check_module(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        config = project.config
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            expected = config.mutation_methods.get(node.name)
            class_methods = {
                member.name: member
                for member in node.body
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if expected:
                for method_name in expected:
                    method = class_methods.get(method_name)
                    if method is None:
                        continue  # inherited: checked on the defining class
                    yield from self._check_entry_point(
                        module, node.name, method, expected
                    )
            for member in class_methods.values():
                yield from self._check_ordering(module, node.name, member, config)

    def _check_entry_point(
        self,
        module: SourceModule,
        class_name: str,
        method: ast.FunctionDef,
        mutation_set: Tuple[str, ...],
    ) -> Iterator[Finding]:
        first = next(
            (stmt for stmt in method.body if not _is_effectless(stmt)), None
        )
        qualname = f"{class_name}.{method.name}"
        if first is None:
            return
        if isinstance(first, ast.With) and any(
            "write_lock" in ast.unparse(item.context_expr) for item in first.items
        ):
            return
        if self._delegates(first, mutation_set):
            return
        yield Finding(
            pass_id=PASS_ID,
            file=module.name,
            line=first.lineno,
            symbol=qualname,
            message=(
                f"mutation entry point {qualname} must acquire the write lock "
                "as its first effectful statement (with self._write_lock:) or "
                "delegate to another entry point / a *_locked helper"
            ),
        )

    @staticmethod
    def _delegates(statement: ast.stmt, mutation_set: Tuple[str, ...]) -> bool:
        """Does the statement call ``self.<entry point>`` / ``self.*_locked``?"""
        for node in ast.walk(statement):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            receiver = node.func.value
            if not (isinstance(receiver, ast.Name) and receiver.id == "self"):
                continue
            if node.func.attr in mutation_set or node.func.attr.endswith("_locked"):
                return True
        return False

    # ------------------------------------------------------------------
    # Rule 2: nesting order
    # ------------------------------------------------------------------
    def _check_ordering(
        self,
        module: SourceModule,
        class_name: str,
        method: ast.FunctionDef,
        config,
    ) -> Iterator[Finding]:
        held: List[Tuple[int, str]] = []
        if method.name.endswith("_locked"):
            held.append((ENGINE, "self._write_lock"))
        qualname = f"{class_name}.{method.name}"
        mutation_set = config.mutation_methods.get(class_name, ())

        def visit(statements, held: List[Tuple[int, str]]) -> Iterator[Finding]:
            for statement in statements:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Nested defs run at call time under the *caller's*
                    # locks; analyze their bodies with the current stack —
                    # in this codebase they are shard-scatter closures
                    # invoked inside the method itself.
                    yield from visit(statement.body, list(held))
                    continue
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    inner = list(held)
                    for item in statement.items:
                        level = _lock_level(
                            item.context_expr, class_name, config.engine_classes
                        )
                        if level is None:
                            continue
                        yield from self._check_acquire(
                            module, qualname, statement.lineno, level, inner
                        )
                        inner.append(level)
                    yield from visit(statement.body, inner)
                    continue
                if held and held[-1][0] == LEAF:
                    for node in ast.walk(statement):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id == "self"
                            and (
                                node.func.attr in mutation_set
                                or node.func.attr.endswith("_locked")
                            )
                        ):
                            yield Finding(
                                pass_id=PASS_ID,
                                file=module.name,
                                line=node.lineno,
                                symbol=qualname,
                                message=(
                                    f"self.{node.func.attr}() acquires a write lock "
                                    "but is called while a stats/spill leaf lock is "
                                    "held — lock order is engine -> shard -> stats"
                                ),
                            )
                children = []
                for field_name, value in ast.iter_fields(statement):
                    del field_name
                    if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                        children.append(value)
                for block in children:
                    yield from visit(block, list(held))

        yield from visit(method.body, held)

    @staticmethod
    def _check_acquire(
        module: SourceModule,
        qualname: str,
        line: int,
        acquired: Tuple[int, str],
        held: List[Tuple[int, str]],
    ) -> Iterator[Finding]:
        level, text = acquired
        for held_level, held_text in held:
            if held_text == text:
                continue  # reentrant re-acquisition of the same lock
            if level < held_level or (level == held_level and level != ENGINE):
                yield Finding(
                    pass_id=PASS_ID,
                    file=module.name,
                    line=line,
                    symbol=qualname,
                    message=(
                        f"lock order inversion: acquiring {text!r} while holding "
                        f"{held_text!r} — the required order is engine write_lock "
                        "-> shard write_lock -> stats/spill locks"
                    ),
                )
