"""Pass ``typed-errors``: the error-contract rules.

Three rules:

1. **No bare ``except:``** — anywhere.  It swallows ``KeyboardInterrupt``
   and ``SystemExit`` and hides every programming error.
2. **No swallow-style ``except Exception``** — a handler catching
   ``Exception``/``BaseException`` must re-raise (contain a ``raise``);
   one that logs-and-continues turns every future bug into silence.  The
   two protocol-boundary sites that *translate* rather than swallow carry
   waivers with reasons.
3. **Public entry points raise typed errors** — in the configured module
   prefixes (serve layer, engine), public functions raise only the
   project's typed error hierarchy (classes defined in the analyzed tree)
   plus the small allow-list of builtins that are documented API
   semantics (``ValueError`` for bad arguments, ``KeyError`` for missing
   names, …).  A ``raise RuntimeError("not started")`` forces callers
   into blanket handlers; give the condition a name instead.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Set

from repro.analysis.core import Finding, Project, SourceModule

__all__ = ["TypedErrorsPass"]

PASS_ID = "typed-errors"

_BROAD_NAMES = ("Exception", "BaseException")

#: Builtin names that are exception classes; anything else raised is
#: assumed to be a project-defined (typed) error.
_BUILTIN_EXCEPTIONS: Set[str] = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}


def _exception_names(handler_type) -> Iterator[str]:
    """Names mentioned in an ``except <type>:`` clause (tuples unpacked)."""
    if handler_type is None:
        return
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


class TypedErrorsPass:
    id = PASS_ID
    description = (
        "no bare/swallowed broad excepts; public serve/engine entry points "
        "raise only the typed repro error hierarchy"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        project_errors = self._project_error_classes(project)
        for module in project.modules:
            yield from self._check_excepts(module)
            if module.name.startswith(project.config.raise_policy_prefixes):
                yield from self._check_raises(module, project, project_errors)

    # ------------------------------------------------------------------
    # Rules 1 + 2: except hygiene
    # ------------------------------------------------------------------
    def _check_excepts(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    pass_id=PASS_ID,
                    file=module.name,
                    line=node.lineno,
                    message=(
                        "bare 'except:' swallows SystemExit/KeyboardInterrupt "
                        "— catch the typed error you expect"
                    ),
                )
                continue
            broad = [
                name for name in _exception_names(node.type) if name in _BROAD_NAMES
            ]
            if broad and not self._reraises(node):
                yield Finding(
                    pass_id=PASS_ID,
                    file=module.name,
                    line=node.lineno,
                    message=(
                        f"'except {broad[0]}' without re-raise swallows every "
                        "future bug — catch the typed errors you expect, or "
                        "waive at a protocol boundary that translates the "
                        "exception onto the wire"
                    ),
                )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise)
            for statement in handler.body
            for node in ast.walk(statement)
        )

    # ------------------------------------------------------------------
    # Rule 3: typed raises at public entry points
    # ------------------------------------------------------------------
    @staticmethod
    def _project_error_classes(project: Project) -> Set[str]:
        names: Set[str] = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    names.add(node.name)
        return names

    def _check_raises(
        self, module: SourceModule, project: Project, project_errors: Set[str]
    ) -> Iterator[Finding]:
        config = project.config
        for owner, func in self._public_functions(module):
            for node in ast.walk(func):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                name = self._raised_name(node.exc)
                if not name:
                    continue  # 'raise exc' re-raise of a bound variable
                if name in config.allowed_builtin_raises:
                    continue
                if name in project_errors and name not in _BUILTIN_EXCEPTIONS:
                    continue  # project-defined typed error
                if name in _BUILTIN_EXCEPTIONS or name in _BROAD_NAMES:
                    qualname = f"{owner}.{func.name}" if owner else func.name
                    yield Finding(
                        pass_id=PASS_ID,
                        file=module.name,
                        line=node.lineno,
                        symbol=qualname,
                        message=(
                            f"public entry point {qualname} raises builtin "
                            f"{name} — raise a typed repro error so callers "
                            "can handle the condition by name"
                        ),
                    )

    @staticmethod
    def _public_functions(module: SourceModule):
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield "", node
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and not member.name.startswith("_"):
                        yield node.name, member

    @staticmethod
    def _raised_name(exc: ast.expr) -> str:
        node = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""
