"""Pass ``generation-bump``: spill-generation coherence for the executor.

The process-backed scatter executor keeps per-worker mmap replicas of
spilled shards, keyed by the engine's spill generation.  Any engine
mutation that touches shard contents must therefore bump the generation
(``ShardedCOAX._note_shard_mutation``) *before the write lock is
released* — otherwise a worker can serve a replica of the pre-mutation
shard bytes and the executor silently returns stale rows.

This pass runs a small abstract interpreter over every method of the
configured engine classes.  The abstract state is one bit: *pending* —
"a shard has been mutated and the generation not yet bumped".

* A call (or first-class reference, e.g. an ``executor.submit`` argument)
  to a shard mutator (``AnalysisConfig.shard_mutators``) on a receiver
  other than ``self`` sets *pending*.
* A call to the bump (``AnalysisConfig.generation_bump``) clears it.
* *pending* must be clear at every ``return`` and at the fall-through
  exit of every ``with self._write_lock:`` block — those are the points
  where the lock is (about to be) released.

Branches join pessimistically: if either arm of an ``if`` leaves a
mutation unbumped, the join is *pending* — the pass over-approximates,
and provably-unreachable arms take a waiver with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.core import Finding, Project, SourceModule

__all__ = ["GenerationBumpPass"]

PASS_ID = "generation-bump"


def _is_write_lock_with(statement: ast.stmt) -> bool:
    """True for ``with self._write_lock:`` — the *engine* lock only.

    A nested ``with shard.write_lock:`` is not a release point of the
    engine lock; mutations inside it stay pending until the engine-level
    bump.
    """
    return isinstance(statement, (ast.With, ast.AsyncWith)) and any(
        ast.unparse(item.context_expr) == "self._write_lock"
        for item in statement.items
    )


class GenerationBumpPass:
    id = PASS_ID
    description = (
        "engine mutation paths bump the spill generation before releasing "
        "the write lock (process-executor replica cache coherence)"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        config = project.config
        for module in project.modules:
            for node in module.tree.body:
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name in config.engine_classes
                ):
                    for member in node.body:
                        if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            yield from self._check_method(
                                module, node.name, member, config
                            )

    def _check_method(
        self,
        module: SourceModule,
        class_name: str,
        method: ast.FunctionDef,
        config,
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        qualname = f"{class_name}.{method.name}"

        def report(line: int, where: str) -> None:
            findings.append(
                Finding(
                    pass_id=PASS_ID,
                    file=module.name,
                    line=line,
                    symbol=qualname,
                    message=(
                        f"shard mutation reaches {where} without bumping the "
                        f"spill generation (self.{config.generation_bump}(...)) — "
                        "executor replica caches would serve stale shard bytes"
                    ),
                )
            )

        def effect(statement: ast.stmt, pending: bool) -> bool:
            """Apply one simple statement's mutator/bump effects."""
            mutates = False
            bumps = False
            for node in ast.walk(statement):
                if isinstance(node, ast.Attribute):
                    receiver_is_self = (
                        isinstance(node.value, ast.Name) and node.value.id == "self"
                    )
                    if node.attr in config.shard_mutators and not receiver_is_self:
                        mutates = True
                    if node.attr == config.generation_bump:
                        bumps = True
            if mutates:
                pending = True
            if bumps:
                pending = False
            return pending

        def interpret(statements: List[ast.stmt], pending: bool) -> bool:
            for statement in statements:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs: their calls surface where invoked
                if _is_write_lock_with(statement):
                    inner = interpret(statement.body, pending)
                    if inner:
                        last = statement.body[-1] if statement.body else statement
                        report(last.lineno, "the end of the write-lock block")
                    pending = False
                    continue
                if isinstance(statement, ast.Return):
                    pending = effect(statement, pending)
                    if pending:
                        report(statement.lineno, "a return")
                        pending = False
                    continue
                if isinstance(statement, ast.If):
                    test_pending = effect_expr(statement.test, pending)
                    then_pending = interpret(statement.body, test_pending)
                    else_pending = interpret(statement.orelse, test_pending)
                    pending = then_pending or else_pending
                    continue
                if isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
                    body_pending = interpret(statement.body, pending)
                    else_pending = interpret(statement.orelse, body_pending)
                    pending = pending or body_pending or else_pending
                    continue
                if isinstance(statement, ast.Try):
                    body_pending = interpret(statement.body, pending)
                    handler_pending = body_pending
                    for handler in statement.handlers:
                        handler_pending = (
                            interpret(handler.body, body_pending) or handler_pending
                        )
                    else_pending = interpret(statement.orelse, body_pending)
                    pending = interpret(
                        statement.finalbody, handler_pending or else_pending
                    )
                    continue
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    for item in statement.items:
                        pending = effect_expr(item.context_expr, pending)
                    pending = interpret(statement.body, pending)
                    continue
                pending = effect(statement, pending)
            return pending

        def effect_expr(expr: ast.expr, pending: bool) -> bool:
            wrapper = ast.Expr(value=expr)
            return effect(wrapper, pending)

        final = interpret(method.body, False)
        if final:
            last = method.body[-1] if method.body else method
            report(last.lineno, "the end of the method")
        yield from findings
