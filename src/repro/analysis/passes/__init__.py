"""The repro-lint pass registry.

Each pass is a plain object with ``id``, ``description`` and
``run(project) -> Iterator[Finding]``; registering it here is all it
takes to put it on the CLI and CI gate (see DESIGN.md §12 for the
recipe).
"""

from repro.analysis.passes.event_loop import EventLoopPass
from repro.analysis.passes.generation_bump import GenerationBumpPass
from repro.analysis.passes.lock_discipline import LockDisciplinePass
from repro.analysis.passes.materialize import MaterializePass
from repro.analysis.passes.typed_errors import TypedErrorsPass

__all__ = [
    "ALL_PASSES",
    "EventLoopPass",
    "GenerationBumpPass",
    "LockDisciplinePass",
    "MaterializePass",
    "TypedErrorsPass",
]

ALL_PASSES = (
    LockDisciplinePass(),
    GenerationBumpPass(),
    EventLoopPass(),
    MaterializePass(),
    TypedErrorsPass(),
)
