"""repro-lint: AST-based checkers for the repo's load-bearing invariants.

``python -m repro.cli lint`` runs every registered pass over ``src/repro``
and exits non-zero on any unwaived finding; see DESIGN.md §12 for the
contracts, the waiver syntax, and how to add a pass.
"""

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import (
    AnalysisConfig,
    AnalysisError,
    Finding,
    Project,
    SourceModule,
    Waiver,
    findings_report,
    write_report,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "Finding",
    "Project",
    "SourceModule",
    "Waiver",
    "findings_report",
    "run_lint",
    "write_report",
]


def run_lint(
    root: Optional[Path] = None,
    *,
    export: Optional[Path] = None,
    config: Optional[AnalysisConfig] = None,
) -> Tuple[List[Finding], Dict[str, object]]:
    """Run every registered pass over ``root`` (default: this package's tree).

    Returns ``(findings, report)``; when ``export`` is given the JSON
    report is also written there.  The CLI turns a non-empty unwaived
    subset into exit status 1.
    """
    from repro.analysis.passes import ALL_PASSES

    if root is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
    project = Project.load(Path(root), package="repro", config=config)
    findings = project.run(ALL_PASSES)
    report = findings_report(findings, ALL_PASSES)
    if export is not None:
        write_report(report, Path(export))
    return findings, report
