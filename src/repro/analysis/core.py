"""Core of the repro-lint static analysis framework.

The codebase carries several load-bearing invariants that exist only as
prose — the single-writer lock discipline of :mod:`repro.indexes.base`,
the engine lock ordering of :mod:`repro.core.engine`, the spill-generation
bump that keeps process-executor replica caches coherent, the serve
layer's "never block the event loop" rule, and the mmap no-materialize
policy of the batch read path.  This package turns each contract into an
AST pass that runs over the source tree (``python -m repro.cli lint``)
and fails CI on any unwaived violation, so the contracts are enforced at
review time instead of discovered as flaky benchmarks.

Building blocks
---------------

* :class:`SourceModule` — one parsed file: path, dotted module name, AST,
  source lines and the waiver comments found in it.
* :class:`Project` — every module of one source tree plus the shared
  :class:`~repro.analysis.callgraph.CallGraph` (built lazily; only the
  materialize pass needs it).
* :class:`AnalysisConfig` — the repo-specific knobs of the passes (which
  classes are mutation entry points, which modules are event-loop code,
  where the batch read path starts, …).  Tests point the same passes at
  fixture trees by overriding these fields.
* :class:`Finding` — one structured violation: pass id, file, line,
  message, plus whether an inline waiver suppressed it.

Waivers
-------

A violation is suppressed by an inline comment on the flagged line or on
the line directly above it::

    data = np.asarray(chunk)  # repro-lint: allow[materialize] per-cell bounds, O(cells) not O(rows)

The pass id in brackets must match (several may be given, comma
separated) and the reason is **mandatory** — a waiver without a reason
does not suppress anything and is itself reported, so every exception to
a contract is documented where it happens.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "Finding",
    "Project",
    "SourceModule",
    "Waiver",
    "findings_report",
]


class AnalysisError(RuntimeError):
    """Raised when the analyzer itself cannot run (bad root, bad config).

    Deliberately distinct from findings: a misconfigured pass must fail
    the lint run loudly instead of passing vacuously.
    """


#: ``# repro-lint: allow[pass-id, other-id] reason`` anywhere in a line.
_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    line: int
    pass_ids: Tuple[str, ...]
    reason: str

    @property
    def valid(self) -> bool:
        """Waivers must carry a reason; bare permission is not documentation."""
        return bool(self.reason)

    def covers(self, pass_id: str) -> bool:
        return self.valid and pass_id in self.pass_ids


@dataclass(frozen=True)
class Finding:
    """One structured violation reported by a pass."""

    pass_id: str
    file: str
    line: int
    message: str
    symbol: str = ""
    waived: bool = False
    waiver_reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_id,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }

    def render(self) -> str:
        tag = f"[{self.pass_id}]"
        suffix = f"  (waived: {self.waiver_reason})" if self.waived else ""
        where = f"{self.file}:{self.line}"
        sym = f" ({self.symbol})" if self.symbol else ""
        return f"{where}: {tag} {self.message}{sym}{suffix}"


class SourceModule:
    """One parsed source file of the analyzed tree."""

    def __init__(self, path: Path, name: str, source: str) -> None:
        self.path = path
        self.name = name
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        self.waivers: Dict[int, Waiver] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _WAIVER_RE.search(text)
            if match is None:
                continue
            ids = tuple(
                part.strip() for part in match.group("ids").split(",") if part.strip()
            )
            self.waivers[lineno] = Waiver(
                line=lineno, pass_ids=ids, reason=match.group("reason").strip()
            )

    def waiver_for(self, pass_id: str, line: int) -> Optional[Waiver]:
        """The waiver covering ``pass_id`` at ``line``, if any.

        A waiver applies to its own line (trailing comment) and to the
        line directly below it (standalone comment above the statement).
        """
        for candidate_line in (line, line - 1):
            waiver = self.waivers.get(candidate_line)
            if waiver is not None and waiver.covers(pass_id):
                return waiver
        return None

    def invalid_waivers(self) -> List[Waiver]:
        """Waivers missing their mandatory reason."""
        return [waiver for waiver in self.waivers.values() if not waiver.valid]


@dataclass(frozen=True)
class AnalysisConfig:
    """Repo-specific knobs of the five passes.

    The defaults describe *this* repository; the fixture tests override
    individual fields to point the same pass implementations at seeded
    violation trees.  When a future PR introduces a new invariant, extend
    the matching field (or add a pass) — see DESIGN.md §12.
    """

    #: Public mutation entry points per class: each must take the write
    #: lock first or delegate to another entry point / ``*_locked`` helper.
    mutation_methods: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "MultidimensionalIndex": ("delete_rows",),
            "COAXIndex": (
                "insert",
                "insert_batch",
                "delete",
                "delete_batch",
                "delete_rows",
                "delete_where",
                "update_batch",
                "compact",
                "apply_refresh",
            ),
            "ShardedCOAX": (
                "insert",
                "insert_batch",
                "delete",
                "delete_batch",
                "delete_rows",
                "delete_where",
                "update_batch",
                "compact",
                "shutdown",
            ),
            "LayoutMonitor": (
                "observe",
                "note_adopted",
                "reset",
                "load_state",
            ),
        }
    )
    #: Classes whose ``self._write_lock`` is the *engine* (outermost) lock.
    engine_classes: Tuple[str, ...] = ("ShardedCOAX",)
    #: Method names that mutate a *shard* when called on a non-``self``
    #: receiver — every such call must be followed by a spill-generation
    #: bump before the engine lock is released.
    shard_mutators: Tuple[str, ...] = (
        "insert_batch",
        "delete_batch",
        "update_batch",
        "compact",
        "delete_rows",
        "delete_where",
        "apply_refresh",
        "_swap_reclaimed",
        # Adopting a layout proposal replaces every shard's contents, so
        # the spill generations must be bumped before the lock releases.
        "note_adopted",
    )
    #: The generation-bump call every engine mutation path must make.
    generation_bump: str = "_note_shard_mutation"
    #: Module prefixes whose ``async def`` bodies must never block.
    async_module_prefixes: Tuple[str, ...] = ("repro.serve",)
    #: Engine entry points that are blocking NumPy work — banned on the
    #: event loop unless handed to ``run_in_executor``/``to_thread``.
    engine_entry_points: Tuple[str, ...] = (
        "range_query",
        "batch_range_query",
        "batch_range_query_attributed",
        "batch_range_query_flat",
        "batch_scatter_flat",
        "point_query",
        "query",
        "count",
        "insert",
        "insert_batch",
        "delete",
        "delete_batch",
        "delete_where",
        "delete_rows",
        "update_batch",
        "compact",
    )
    #: Where the mmap-sensitive batch read path starts: the call-graph
    #: walk of the materialize pass begins at these ``module:qualname``
    #: roots.  A root that no longer resolves is itself a finding, so the
    #: list can never silently rot on a rename.
    materialize_entry_points: Tuple[str, ...] = (
        "repro.core.coax:COAXIndex.batch_range_query",
        "repro.core.coax:COAXIndex.batch_scatter_flat",
        "repro.core.coax:COAXIndex.batch_scatter_aggregate",
        "repro.core.delta:DeltaStore.fold_aggregate_batch",
        "repro.core.engine:ShardedCOAX.batch_range_query",
        "repro.core.engine:ShardedCOAX.batch_range_query_attributed",
        "repro.core.engine:ShardedCOAX.batch_aggregate_partial",
        "repro.core.engine:ShardedCOAX.batch_aggregate_attributed",
        "repro.core.engine:_scatter_worker",
        "repro.core.engine:_aggregate_worker",
        "repro.indexes.base:MultidimensionalIndex.batch_aggregate_partial",
        "repro.indexes.grid_file:SortedCellGridIndex.batch_range_query_flat",
        "repro.indexes.grid_file:SortedCellGridIndex.batch_aggregate_from_bounds",
        "repro.io.persistence:_read_columnar",
        "repro.io.persistence:_restore_grid",
        "repro.io.persistence:_restore_structured_index",
    )
    #: Write-side functions the read-path walk must not enter: compaction
    #: rebuilds and save-path snapshots materialize *by design*, and
    #: holding them to the read path's no-materialize rule would be a
    #: category error.  The walk neither checks nor descends into these.
    materialize_stop_functions: Tuple[str, ...] = (
        "repro.core.coax:COAXIndex.compact",
        "repro.core.coax:COAXIndex._build_reclaimed",
        "repro.core.delta:DeltaStore.state",
        "repro.io.persistence:_index_payload",
    )
    #: ``np.asarray`` is flagged only when its argument mentions one of
    #: these column-source markers (whole-column dataflow); bare id-array
    #: coercions are routine and stay legal.
    column_source_markers: Tuple[str, ...] = (
        "_columns",
        "column",
        "columns",
        "memmap",
        "arrays",
    )
    #: Module prefixes whose *public* entry points may raise only the
    #: typed repro error hierarchy (plus the allowed builtins below).
    raise_policy_prefixes: Tuple[str, ...] = ("repro.serve", "repro.core.engine")
    #: Builtin exception types that are documented API semantics.
    allowed_builtin_raises: Tuple[str, ...] = (
        "ValueError",
        "KeyError",
        "TypeError",
        "NotImplementedError",
        "ConnectionError",
        "StopAsyncIteration",
    )

    def with_overrides(self, **overrides) -> "AnalysisConfig":
        """A copy with the given fields replaced (fixture-test helper)."""
        return replace(self, **overrides)


class Project:
    """Every parsed module of one source tree plus shared analyses."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.modules = list(modules)
        self.config = config if config is not None else AnalysisConfig()
        self.by_name: Dict[str, SourceModule] = {
            module.name: module for module in self.modules
        }
        self._call_graph = None

    @classmethod
    def load(
        cls,
        root: Path,
        *,
        package: Optional[str] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> "Project":
        """Parse every ``*.py`` under ``root`` (a package directory).

        Module names are dotted paths rooted at ``package`` (default: the
        directory's own name), so ``<root>/core/engine.py`` becomes
        ``repro.core.engine`` when ``root`` ends in ``repro``.
        """
        root = Path(root)
        if not root.is_dir():
            raise AnalysisError(f"analysis root {root} is not a directory")
        package = package if package is not None else root.name
        modules = []
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root).with_suffix("")
            parts = [package, *relative.parts]
            if parts[-1] == "__init__":
                parts = parts[:-1]
            modules.append(
                SourceModule(path, ".".join(parts), path.read_text(encoding="utf-8"))
            )
        if not modules:
            raise AnalysisError(f"no python modules under {root}")
        return cls(modules, config=config)

    @property
    def call_graph(self):
        """The lazily built project call graph (see :mod:`.callgraph`)."""
        if self._call_graph is None:
            from repro.analysis.callgraph import CallGraph

            self._call_graph = CallGraph.build(self)
        return self._call_graph

    def run(self, passes: Optional[Sequence] = None) -> List[Finding]:
        """Run the given passes (default: all registered) over the tree.

        Waiver resolution happens here, centrally: passes yield raw
        findings and the project marks each waived/unwaived against the
        module's inline comments.  Waivers missing their mandatory reason
        are reported as findings of the ``waiver`` pseudo-pass.
        """
        if passes is None:
            from repro.analysis.passes import ALL_PASSES

            passes = ALL_PASSES
        findings: List[Finding] = []
        for lint_pass in passes:
            for finding in lint_pass.run(self):
                module = self.by_name.get(finding.file)
                if module is None:
                    findings.append(finding)
                    continue
                waiver = module.waiver_for(finding.pass_id, finding.line)
                findings.append(
                    replace(
                        finding,
                        file=str(module.path),
                        waived=waiver is not None,
                        waiver_reason=waiver.reason if waiver else "",
                    )
                )
        for module in self.modules:
            for waiver in module.invalid_waivers():
                findings.append(
                    Finding(
                        pass_id="waiver",
                        file=str(module.path),
                        line=waiver.line,
                        message=(
                            "waiver without a reason suppresses nothing: write "
                            "'# repro-lint: allow[<pass-id>] <reason>'"
                        ),
                    )
                )
        return sorted(findings, key=lambda f: (f.file, f.line, f.pass_id))


def findings_report(findings: Iterable[Finding], passes: Sequence) -> Dict[str, object]:
    """The structured JSON report the CI gate uploads as an artifact."""
    findings = list(findings)
    unwaived = [finding for finding in findings if not finding.waived]
    return {
        "tool": "repro-lint",
        "passes": [
            {"id": lint_pass.id, "description": lint_pass.description}
            for lint_pass in passes
        ],
        "counts": {
            "findings": len(findings),
            "unwaived": len(unwaived),
            "waived": len(findings) - len(unwaived),
        },
        "findings": [finding.to_dict() for finding in findings],
    }


def write_report(report: Dict[str, object], path: Path) -> Path:
    """Write the JSON report; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path
