"""Project-wide call graph for the call-graph-aware passes.

The graph is deliberately an *over-approximation*: Python has no static
types here, so an attribute call ``x.scan_batch(...)`` resolves to every
function named ``scan_batch`` anywhere in the analyzed tree, and a bare
``helper(...)`` resolves through the module's imports and falls back to a
unique global name match.  Over-approximating keeps the reachability walk
sound for the policy passes — a function that *might* run on the batch
read path is held to the read path's rules; the waiver syntax absorbs the
occasional function that is provably off-path.

Two resolutions are intentionally skipped:

* calls through an imported *external* module alias (``np.concatenate``,
  ``shutil.rmtree``) — the walk never leaves the analyzed tree;
* dunder/builtin method names (``append``, ``get``, ``items``, …) that
  do not name any function in the tree resolve to nothing.

Nested functions and lambdas are folded into their enclosing function:
``run_shard`` defined inside ``_batch_range_query_locked`` executes as
part of that batch call, so its call edges (and its banned tokens, for
the materialize pass) belong to the parent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Project, SourceModule

__all__ = ["CallGraph", "FunctionInfo"]


@dataclass
class FunctionInfo:
    """One top-level function or method of the analyzed tree."""

    module: SourceModule
    #: ``Class.method`` or plain ``function`` within the module.
    qualname: str
    node: ast.AST
    #: Simple (unqualified) name, the key attribute calls resolve by.
    name: str = ""
    #: Resolved callees, filled in by :meth:`CallGraph.build`.
    callees: Set[str] = field(default_factory=set)

    @property
    def key(self) -> str:
        """Graph-wide id: ``module:qualname``."""
        return f"{self.module.name}:{self.qualname}"


def _imported_bindings(tree: ast.Module) -> Tuple[Dict[str, str], Set[str]]:
    """(name -> defining module) for ``from X import name``; module aliases.

    The alias set holds names bound to whole modules (``import numpy as
    np`` binds ``np``); attribute calls through them are external and the
    resolver skips them.
    """
    from_imports: Dict[str, str] = {}
    module_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = node.module
    return from_imports, module_aliases


def iter_own_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body *without* descending into nested defs.

    Nested function/lambda bodies still belong to the enclosing function
    for call-graph purposes, so callers that want them use
    :func:`iter_with_nested` instead; the event-loop pass uses this
    variant because a nested def does not run on the loop by virtue of
    being defined there.
    """
    body = node.body if isinstance(node.body, list) else [node.body]
    stack = list(body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def iter_with_nested(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body including nested defs and lambdas."""
    body = node.body if isinstance(node.body, list) else [node.body]
    for statement in body:
        yield from ast.walk(statement)


class CallGraph:
    """Name-resolved call edges over every function of a project."""

    def __init__(self, functions: Dict[str, FunctionInfo]) -> None:
        self.functions = functions
        self.by_simple_name: Dict[str, List[FunctionInfo]] = {}
        for info in functions.values():
            self.by_simple_name.setdefault(info.name, []).append(info)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        functions: Dict[str, FunctionInfo] = {}
        for module in project.modules:
            for info in cls._collect_functions(module):
                functions[info.key] = info
        graph = cls(functions)
        for info in functions.values():
            from_imports, module_aliases = _imported_bindings(info.module.tree)
            for call in (
                node
                for node in iter_with_nested(info.node)
                if isinstance(node, ast.Call)
            ):
                graph._resolve_call(info, call, from_imports, module_aliases)
        return graph

    @staticmethod
    def _collect_functions(module: SourceModule) -> Iterator[FunctionInfo]:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield FunctionInfo(module, node.name, node, name=node.name)
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield FunctionInfo(
                            module,
                            f"{node.name}.{member.name}",
                            member,
                            name=member.name,
                        )

    def _resolve_call(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        from_imports: Dict[str, str],
        module_aliases: Set[str],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            target = self._resolve_name(caller.module, func.id, from_imports)
            if target is not None:
                caller.callees.add(target.key)
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in module_aliases:
                return  # external module call (np.*, shutil.*, ...)
            for target in self.by_simple_name.get(func.attr, ()):
                caller.callees.add(target.key)

    def _resolve_name(
        self, module: SourceModule, name: str, from_imports: Dict[str, str]
    ) -> Optional[FunctionInfo]:
        local = self.functions.get(f"{module.name}:{name}")
        if local is not None:
            return local
        source = from_imports.get(name)
        if source is not None:
            imported = self.functions.get(f"{source}:{name}")
            if imported is not None:
                return imported
        # Unique global match (lazy imports inside function bodies bind
        # names the import scan above attributes to the defining module).
        candidates = [
            info for info in self.by_simple_name.get(name, ()) if "." not in info.qualname
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve(self, key: str) -> Optional[FunctionInfo]:
        """Function info for a ``module:qualname`` key."""
        return self.functions.get(key)

    def reachable_from(
        self, roots: Sequence[str], *, stop: Sequence[str] = ()
    ) -> Set[str]:
        """Keys of every function reachable from the given root keys.

        ``stop`` functions are neither visited nor descended into — the
        materialize pass uses this to keep write-side maintenance (which
        materializes by design) out of the read-path walk.
        """
        stop_set = set(stop)
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions and root not in stop_set]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.functions[key].callees - seen - stop_set)
        return seen
