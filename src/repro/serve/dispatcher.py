"""Batch dispatcher: hands micro-batches to the engine off the event loop.

The engine's batch kernels are milliseconds of NumPy work — far too long
to run on the event loop thread that is concurrently accepting
connections and parsing frames.  The dispatcher owns a small worker
thread pool (one thread by default: the engine serialises its own batch
entry points anyway, and one in-flight batch keeps tail latency
predictable), runs ``batch_range_query_attributed`` there, and slices the
per-query results and stats back onto the per-client futures on the event
loop.

Failure semantics: an :class:`~repro.core.engine.EngineClosedError` (the
engine is being torn down under the server) resolves every future of the
batch with that typed error so connection handlers can answer
``shutting_down``; any other exception resolves them with the raw error
(answered as ``internal``).  Futures abandoned between flush and
completion (client disconnected mid-batch) are skipped — the batch result
of everyone else is unaffected.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Sequence, Tuple

import numpy as np

from repro.indexes.base import QueryStats
from repro.serve.coalescer import PendingQuery

__all__ = ["EngineDispatcher"]


class EngineDispatcher:
    """Runs coalesced batches on an engine in a worker thread.

    ``engine`` is anything with the
    ``batch_range_query_attributed(queries) -> (results, stats)`` surface
    — :class:`~repro.core.engine.ShardedCOAX` natively; a flat
    ``COAXIndex`` can be wrapped via ``ShardedCOAX.from_index``.
    """

    def __init__(self, engine, *, max_workers: int = 1) -> None:
        self._engine = engine
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serve-dispatch"
        )
        self.batches = 0
        self.queries = 0
        self.inflight = 0

    @property
    def engine(self):
        """The engine batches are executed against."""
        return self._engine

    @property
    def busy(self) -> bool:
        """True while at least one batch is executing (or pool-queued).

        The coalescer uses this as the group-commit signal: a query that
        arrives while a batch is in flight cannot start any sooner by
        being dispatched alone, so queueing it is free — it rides in the
        batch flushed the instant the in-flight one completes.
        """
        return self.inflight > 0

    def close(self) -> None:
        """Shut the worker pool down, waiting for the in-flight batch."""
        self._executor.shutdown(wait=True)

    def _run(
        self, queries: Sequence
    ) -> Tuple[List[np.ndarray], List[QueryStats]]:
        return self._engine.batch_range_query_attributed(queries)

    async def dispatch(self, batch: List[PendingQuery]) -> None:
        """Execute one micro-batch and resolve its per-client futures.

        The engine call runs in the worker pool; the loop thread only
        does the slicing.  Every live future is resolved exactly once —
        with ``(row_ids, stats, n_batched)`` on success or with the
        engine's exception on failure.
        """
        if not batch:
            return
        loop = asyncio.get_running_loop()
        queries = [entry.query for entry in batch]
        started = time.monotonic()
        self.inflight += 1
        try:
            results, stats = await loop.run_in_executor(
                self._executor, self._run, queries
            )
        # repro-lint: allow[typed-errors] thread-pool boundary: the engine's exception is re-homed onto every waiter's future, then typed at the protocol layer
        except Exception as exc:  # noqa: BLE001 - typed at the protocol layer
            for entry in batch:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        finally:
            self.inflight -= 1
        self.batches += 1
        self.queries += len(batch)
        n_batched = len(batch)
        for entry, row_ids, query_stats in zip(batch, results, stats):
            if not entry.future.done():
                meta = {
                    "batched": n_batched,
                    "wait_us": round(max(started - entry.offered_at, 0.0) * 1e6)
                    if entry.offered_at
                    else 0,
                }
                entry.future.set_result((row_ids, query_stats, meta))

    async def dispatch_one(self, entry: PendingQuery) -> None:
        """Pass-through for the naive path: a batch of exactly one query."""
        await self.dispatch([entry])

    def run_direct(self, queries: Sequence) -> List[np.ndarray]:
        """Synchronous oracle helper: the same engine, no serving layer.

        Benchmarks verify every served result element-for-element against
        this direct call.
        """
        results, _ = self._engine.batch_range_query_attributed(list(queries))
        return results
